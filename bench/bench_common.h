#pragma once

// Shared infrastructure for the figure-reproduction benches.
//
// Defaults follow the paper's methodology (§3): the *emulated* substrate
// (plain-access HTM), constant workloads, thread sweep 1..20, and abort
// ratios measured from a TL2 run of the same configuration injected into
// every hardware-mode series. Every knob can be overridden:
//
//   --seconds=<double>      per measurement point            (default 0.08)
//   --threads=<a,b,c>       thread counts                    (default 1,2,4,...,20)
//   --substrate=emul|sim    HTM substrate                    (default emul)
//   --full                  paper-scale sizes + longer runs
//
// Output is a whitespace-separated table per figure: column 1 = threads,
// one column per series, values = total operations completed (the paper's
// y-axis). Comment lines (#) carry context: injected ratios, substrate.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/rhtm.h"
#include "workloads/driver.h"

namespace rhtm::bench {

/// Keeps a computed value alive past the optimiser (read sinks).
template <class T>
inline void do_not_optimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

struct Options {
  double seconds = 0.08;
  double calib_seconds = 0.06;
  std::vector<unsigned> threads = {1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20};
  bool use_sim = false;
  bool full = false;

  static Options parse(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--seconds=", 0) == 0) {
        opt.seconds = std::atof(arg.c_str() + 10);
        opt.calib_seconds = opt.seconds;
      } else if (arg.rfind("--threads=", 0) == 0) {
        opt.threads.clear();
        const char* p = arg.c_str() + 10;
        while (*p != '\0') {
          opt.threads.push_back(static_cast<unsigned>(std::strtoul(p, nullptr, 10)));
          while (*p != '\0' && *p != ',') ++p;
          if (*p == ',') ++p;
        }
      } else if (arg == "--substrate=sim") {
        opt.use_sim = true;
      } else if (arg == "--substrate=emul") {
        opt.use_sim = false;
      } else if (arg == "--full") {
        opt.full = true;
        opt.seconds = 1.0;
        opt.calib_seconds = 0.5;
      } else if (arg == "--help") {
        std::printf("usage: %s [--seconds=S] [--threads=a,b,c] [--substrate=emul|sim] [--full]\n",
                    argv[0]);
        std::exit(0);
      }
    }
    return opt;
  }

  [[nodiscard]] const char* substrate_name() const { return use_sim ? "sim" : "emul"; }
};

/// One measured point of one series.
struct Point {
  std::uint64_t total_ops = 0;
  double abort_ratio = 0;
};

/// Collected series, printed paper-style.
class Table {
 public:
  Table(std::string title, std::vector<unsigned> threads)
      : title_(std::move(title)), threads_(std::move(threads)) {}

  void add_series(std::string series_name) { names_.push_back(std::move(series_name)); }

  void add_point(std::size_t series, Point p) {
    if (points_.size() <= series) points_.resize(series + 1);
    points_[series].push_back(p);
  }

  void print() const {
    std::printf("# %s\n", title_.c_str());
    std::printf("%-8s", "threads");
    for (const auto& name : names_) std::printf(" %14s", name.c_str());
    std::printf("\n");
    for (std::size_t row = 0; row < threads_.size(); ++row) {
      std::printf("%-8u", threads_[row]);
      for (const auto& series : points_) {
        if (row < series.size()) std::printf(" %14llu",
                                             static_cast<unsigned long long>(series[row].total_ops));
      }
      std::printf("\n");
    }
    std::printf("# abort ratios:\n");
    for (std::size_t s = 0; s < names_.size(); ++s) {
      std::printf("#   %-14s", names_[s].c_str());
      if (s < points_.size()) {
        for (const auto& p : points_[s]) std::printf(" %5.2f", p.abort_ratio);
      }
      std::printf("\n");
    }
  }

 private:
  std::string title_;
  std::vector<unsigned> threads_;
  std::vector<std::string> names_;
  std::vector<std::vector<Point>> points_;
};

/// The protocol series of the paper's figures.
enum class Series {
  kHtm,        ///< "HTM": uninstrumented hardware upper bound
  kStdHytm,    ///< "Standard HyTM": instrumented reads+writes, hardware-only
  kTl2,        ///< "TL2": the software baseline (also the calibration run)
  kRh1Fast,    ///< "RH1 Fast": RH1 fast path only, hardware retries
  kRh1Mix10,   ///< "RH1 Mixed 10": 10% of aborts retried on the slow path
  kRh1Mix100,  ///< "RH1 Mixed 100": every abort retried on the slow path
};

[[nodiscard]] inline const char* to_string(Series s) {
  switch (s) {
    case Series::kHtm: return "HTM";
    case Series::kStdHytm: return "StandardHyTM";
    case Series::kTl2: return "TL2";
    case Series::kRh1Fast: return "RH1-Fast";
    case Series::kRh1Mix10: return "RH1-Mix10";
    case Series::kRh1Mix100: return "RH1-Mix100";
  }
  return "?";
}

/// Runs one series point: constructs the protocol over `universe` with the
/// paper's configuration for that series and drives `op` on `threads`
/// threads for `seconds`. `inject_bp` is the TL2-calibrated abort ratio.
///
/// `op(tm, ctx, rng, tid)` must execute exactly one transaction.
template <class H, class OpFactory>
Point run_series_point(TmUniverse<H>& universe, Series series, unsigned threads, double seconds,
                       std::uint32_t inject_bp, OpFactory&& op) {
  ThroughputResult result;
  switch (series) {
    case Series::kHtm: {
      typename HtmOnly<H>::Config cfg;
      cfg.inject_abort_bp = inject_bp;
      HtmOnly<H> tm(universe, cfg);
      result = run_throughput(tm, threads, seconds, op);
      break;
    }
    case Series::kStdHytm: {
      typename StandardHytm<H>::Config cfg;
      cfg.hardware_only = true;  // the paper's best-case Standard HyTM
      cfg.inject_abort_bp = inject_bp;
      StandardHytm<H> tm(universe, cfg);
      result = run_throughput(tm, threads, seconds, op);
      break;
    }
    case Series::kTl2: {
      Tl2<H> tm(universe);
      result = run_throughput(tm, threads, seconds, op);
      break;
    }
    case Series::kRh1Fast:
    case Series::kRh1Mix10:
    case Series::kRh1Mix100: {
      typename HybridTm<H>::Config cfg;
      cfg.inject_abort_bp = inject_bp;
      cfg.slow_retry_percent =
          series == Series::kRh1Fast ? 0 : (series == Series::kRh1Mix10 ? 10 : 100);
      HybridTm<H> tm(universe, cfg);
      result = run_throughput(tm, threads, seconds, op);
      break;
    }
  }
  return {result.total_ops, result.abort_ratio()};
}

/// Paper §3.1 calibration: TL2 abort ratio for this workload at this thread
/// count, converted to injection basis points.
template <class H, class OpFactory>
[[nodiscard]] std::pair<std::uint32_t, Point> calibrate_tl2(TmUniverse<H>& universe,
                                                            unsigned threads, double seconds,
                                                            OpFactory&& op) {
  Tl2<H> tl2(universe);
  const ThroughputResult r = run_throughput(tl2, threads, seconds, op);
  const double ratio = r.abort_ratio();
  return {AbortInjector::from_ratio(ratio).rate_bp(), Point{r.total_ops, ratio}};
}

/// Standard figure loop: for each thread count, calibrate on TL2 once, then
/// run every series with the calibrated injection. The TL2 point itself is
/// reused from the calibration run (it *is* the TL2 series).
template <class H, class OpFactory>
void run_figure(TmUniverse<H>& universe, Table& table, const std::vector<Series>& series_list,
                const Options& opt, OpFactory&& op) {
  for (const Series s : series_list) table.add_series(to_string(s));
  for (const unsigned threads : opt.threads) {
    const auto [inject_bp, tl2_point] = calibrate_tl2(universe, threads, opt.calib_seconds, op);
    for (std::size_t i = 0; i < series_list.size(); ++i) {
      if (series_list[i] == Series::kTl2) {
        table.add_point(i, tl2_point);
        continue;
      }
      table.add_point(i, run_series_point(universe, series_list[i], threads, opt.seconds,
                                          inject_bp, op));
    }
  }
}

}  // namespace rhtm::bench
