#pragma once

// Shared infrastructure for the scenario registry (bench/registry.h).
//
// Defaults follow the paper's methodology (§3): the *emulated* substrate
// (plain-access HTM), constant workloads, thread sweep 1..20, and abort
// ratios measured from a TL2 run of the same configuration injected into
// every hardware-mode series. Every knob can be overridden; unknown flags
// are rejected with a usage message (never silently ignored):
//
//   --seconds=<double>      per measurement point            (default 0.08)
//   --threads=<a,b,c>       thread counts                    (default 1,2,4,...,20)
//   --substrate=emul|sim|rtm  HTM substrate                  (default emul)
//   --pin=none|compact|scatter  worker-thread affinity       (default none)
//   --full                  paper-scale sizes + longer runs
//   --list                  enumerate registered scenarios and exit
//   --scenario=<a,b>        run only scenarios whose name contains a token
//   --json-dir=<dir>        where BENCH_<scenario>.json reports go (default .)
//   --no-json               print tables only, skip the JSON reports
//
// Every scenario emits its results twice: the paper-style table on stdout
// and a machine-readable BENCH_<scenario>.json (core/report.h) built from
// the same stored points.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "core/report.h"
#include "core/rhtm.h"
#include "workloads/driver.h"

namespace rhtm::bench {

/// Keeps a computed value alive past the optimiser (read sinks).
template <class T>
inline void do_not_optimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

struct Options {
  double seconds = 0.08;
  double calib_seconds = 0.06;
  std::vector<unsigned> threads = {1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20};
  SubstrateKind substrate = SubstrateKind::kEmul;
  PinMode pin = PinMode::kNone;
  CmPolicy cm = CmPolicy::kFixed;
  NumaMode numa = NumaMode::kOff;
  bool full = false;

  // Registry-driver flags (bench/run_all.cpp).
  bool list = false;
  bool write_json = true;
  std::string json_dir = ".";
  std::vector<std::string> scenario_filter;

  // Observability flags (core/trace.h, core/timeseries.h).
  std::string trace_path;              ///< --trace=<file>[:cap]; empty = off
  std::size_t trace_cap = 1 << 14;     ///< per-thread ring capacity (events)
  double timeline_interval = 0;        ///< --timeline=<ms> sampler period; 0 = off
  /// The run-owned tracer, installed by run_all after parsing; scenarios
  /// receive it through universe_config(opt). Non-owning.
  trace::Tracer* tracer = nullptr;

  static void usage(const char* argv0, std::FILE* out) {
    std::fprintf(out,
                 "usage: %s [--seconds=S] [--threads=a,b,c] [--substrate=emul|sim|rtm]\n"
                 "          [--pin=none|compact|scatter] [--cm=fixed|adaptive|aggressive]\n"
                 "          [--numa=off|shard|shard+clock]\n"
                 "          [--full] [--list] [--scenario=a,b] [--json-dir=DIR] [--no-json]\n"
                 "          [--trace=FILE[:CAP]] [--timeline=MS]\n"
                 "\n"
                 "  --seconds=S          measurement time per (series, thread-count) point\n"
                 "  --threads=a,b,c      thread counts to sweep\n"
                 "  --substrate=emul|sim|rtm\n"
                 "                       HTM substrate (plain-access emulation | simulator |\n"
                 "                       real Intel RTM; rtm needs an -mrtm build + TSX host)\n"
                 "  --pin=none|compact|scatter\n"
                 "                       worker-thread affinity (compact fills adjacent CPUs,\n"
                 "                       scatter alternates across the CPU id halves)\n"
                 "  --cm=fixed|adaptive|aggressive\n"
                 "                       contention-management policy (core/contention.h;\n"
                 "                       fixed = the paper's coins/budgets, the baseline)\n"
                 "  --numa=off|shard|shard+clock\n"
                 "                       NUMA geometry (core/topology.h): socket-sharded\n"
                 "                       stripe tables, +clock adds per-socket clock caches\n"
                 "  --full               paper-scale sizes and 1 s points\n"
                 "  --list               list registered scenarios and exit\n"
                 "  --scenario=a,b       run only scenarios whose name contains a token\n"
                 "  --json-dir=DIR       directory for BENCH_<scenario>.json (default .)\n"
                 "  --no-json            skip writing the JSON reports\n"
                 "  --trace=FILE[:CAP]   record per-thread transaction event traces and\n"
                 "                       write Chrome/Perfetto trace JSON to FILE; CAP =\n"
                 "                       per-thread ring capacity in events (default 16384)\n"
                 "  --timeline=MS        sample throughput/abort/tier metrics every MS ms\n"
                 "                       into a `timeline` array in BENCH_<scenario>.json\n",
                 argv0);
  }

  /// Strict parser: any flag it does not recognise (or a recognised flag
  /// with a malformed value) prints the usage message and exits nonzero.
  static Options parse(int argc, char** argv) {
    Options opt;
    const auto die = [&](const char* what, const std::string& arg) {
      std::fprintf(stderr, "%s: %s '%s'\n", argv[0], what, arg.c_str());
      usage(argv[0], stderr);
      std::exit(2);
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--seconds=", 0) == 0) {
        char* end = nullptr;
        opt.seconds = std::strtod(arg.c_str() + 10, &end);
        if (end == arg.c_str() + 10 || *end != '\0' || !(opt.seconds > 0)) {
          die("bad value for --seconds in", arg);
        }
        opt.calib_seconds = opt.seconds;
      } else if (arg.rfind("--threads=", 0) == 0) {
        opt.threads.clear();
        const char* p = arg.c_str() + 10;
        while (*p != '\0') {
          char* end = nullptr;
          const unsigned long v = std::strtoul(p, &end, 10);
          if (end == p || v == 0 || (*end != '\0' && *end != ',')) {
            die("bad thread list in", arg);
          }
          opt.threads.push_back(static_cast<unsigned>(v));
          p = *end == ',' ? end + 1 : end;
        }
        if (opt.threads.empty()) die("empty thread list in", arg);
      } else if (arg.rfind("--substrate=", 0) == 0) {
        if (!parse_substrate_kind(arg.c_str() + 12, &opt.substrate)) {
          die("unknown substrate in", arg);
        }
        if (!substrate_compiled(opt.substrate)) {
          std::fprintf(stderr,
                       "%s: --substrate=%s requires a build with RTM intrinsics; "
                       "reconfigure with -DRHTM_ENABLE_RTM=ON (adds -mrtm)\n",
                       argv[0], to_string(opt.substrate));
          std::exit(2);
        }
      } else if (arg.rfind("--pin=", 0) == 0) {
        if (!parse_pin_mode(arg.c_str() + 6, &opt.pin)) {
          die("unknown pin mode in", arg);
        }
      } else if (arg.rfind("--cm=", 0) == 0) {
        if (!parse_cm_policy(arg.c_str() + 5, &opt.cm)) {
          die("unknown contention policy in", arg);
        }
      } else if (arg.rfind("--numa=", 0) == 0) {
        if (!parse_numa_mode(arg.c_str() + 7, &opt.numa)) {
          die("unknown numa mode in", arg);
        }
      } else if (arg == "--full") {
        opt.full = true;
        opt.seconds = 1.0;
        opt.calib_seconds = 0.5;
      } else if (arg == "--list") {
        opt.list = true;
      } else if (arg.rfind("--scenario=", 0) == 0) {
        const char* p = arg.c_str() + 11;
        while (*p != '\0') {
          const char* comma = std::strchr(p, ',');
          const std::string token = comma != nullptr ? std::string(p, comma) : std::string(p);
          if (!token.empty()) opt.scenario_filter.push_back(token);
          p = comma != nullptr ? comma + 1 : p + token.size();
        }
        if (opt.scenario_filter.empty()) die("empty scenario filter in", arg);
      } else if (arg.rfind("--json-dir=", 0) == 0) {
        opt.json_dir = arg.substr(11);
        if (opt.json_dir.empty()) die("empty directory in", arg);
      } else if (arg == "--no-json") {
        opt.write_json = false;
      } else if (arg.rfind("--trace=", 0) == 0) {
        std::string spec = arg.substr(8);
        // FILE[:CAP] — only the LAST ':' can start a capacity suffix, and
        // only when what follows is a pure number (so paths with ':' work).
        const std::size_t colon = spec.rfind(':');
        if (colon != std::string::npos && colon + 1 < spec.size()) {
          char* end = nullptr;
          const unsigned long cap = std::strtoul(spec.c_str() + colon + 1, &end, 10);
          if (*end == '\0') {
            if (cap == 0) die("bad ring capacity in", arg);
            opt.trace_cap = static_cast<std::size_t>(cap);
            spec.resize(colon);
          }
        }
        if (spec.empty()) die("empty file in", arg);
        opt.trace_path = spec;
      } else if (arg.rfind("--timeline=", 0) == 0) {
        char* end = nullptr;
        const double ms = std::strtod(arg.c_str() + 11, &end);
        if (end == arg.c_str() + 11 || *end != '\0' || !(ms > 0)) {
          die("bad value for --timeline in", arg);
        }
        opt.timeline_interval = ms / 1000.0;
      } else if (arg == "--help") {
        usage(argv[0], stdout);
        std::exit(0);
      } else {
        die("unknown flag", arg);
      }
    }
    return opt;
  }

  [[nodiscard]] const char* substrate_name() const { return to_string(substrate); }
  [[nodiscard]] const char* cm_name() const { return to_string(cm); }
  [[nodiscard]] const char* numa_name() const { return to_string(numa); }
};

/// UniverseConfig seeded from the global bench options (the contention-
/// management policy and the run's tracer). Scenarios override further
/// fields on the returned config before constructing their universe.
[[nodiscard]] inline UniverseConfig universe_config(const Options& opt) {
  UniverseConfig cfg;
  cfg.cm.policy = opt.cm;
  cfg.tracer = opt.tracer;
  cfg.numa = opt.numa;
  return cfg;
}

// ---------------------------------------------------------- provenance --
// Stamped into every BENCH_*.json meta so check_regression.py artifact
// diffs can report WHAT changed between two runs (compiler, flags, commit,
// host, substrate availability), not just the throughput ratio.

#ifndef RHTM_GIT_SHA
#define RHTM_GIT_SHA "unknown"  // CMake injects the configure-time HEAD SHA
#endif
#ifndef RHTM_BUILD_FLAGS
#define RHTM_BUILD_FLAGS "unknown"  // CMake injects build type + CXX flags
#endif

/// Compiler id + version, from the predefined macros of the active compiler.
[[nodiscard]] inline std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

/// Which substrates this binary+host can actually run: emul and sim always;
/// rtm reported as compiled-out, cpu-unsupported, non-viable or viable.
[[nodiscard]] inline std::string substrate_availability() {
  std::string s = "emul,sim";
  if (!substrate_compiled(SubstrateKind::kRtm)) {
    s += ",rtm:not-compiled";
  } else if (!HtmRtm::available()) {
    s += ",rtm:no-cpu-support";
  } else if (!HtmRtm::hardware_viable()) {
    s += ",rtm:not-viable";
  } else {
    s += ",rtm:viable";
  }
  return s;
}

/// Stamps the provenance meta block into a report (run_all applies it to
/// every scenario's report before printing/writing).
inline void stamp_provenance(report::BenchReport& rep) {
  rep.set_meta("git_sha", RHTM_GIT_SHA);
  rep.set_meta("compiler", compiler_id());
  rep.set_meta("build_flags", RHTM_BUILD_FLAGS);
#if !defined(_WIN32)
  char host[256] = {};
  if (gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    rep.set_meta("hostname", host);
  }
#endif
  rep.set_meta("substrates", substrate_availability());
  const Topology& topo = Topology::system();
  rep.set_meta("sockets", std::to_string(topo.socket_count()) +
                              (topo.discovered() ? "" : " (fallback)"));
}

/// Carries the substrate type through the generic dispatch lambda:
/// `dispatch_substrate(opt, [&]<class H>(SubstrateTag<H>) { ... })`.
template <class H>
struct SubstrateTag {
  using type = H;
};

/// Exits with a diagnostic when the chosen substrate cannot run on this
/// host. The only runtime-gated substrate is rtm: the flag parser already
/// rejected it in builds without RTM intrinsics, so reaching this with an
/// unavailable rtm means the *CPU* lacks (or hides) TSX. Never SIGILLs:
/// _xbegin is not executed unless CPUID advertises RTM.
inline void require_substrate_available(const Options& opt) {
  if (opt.substrate != SubstrateKind::kRtm) return;
  if (!HtmRtm::available()) {
    std::fprintf(stderr,
                 "--substrate=rtm: CPUID reports no RTM support on this host; "
                 "use --substrate=emul or --substrate=sim\n");
    std::exit(2);
  }
  if (!HtmRtm::hardware_viable()) {
    static bool warned = false;  // per-scenario dispatch: warn once per process
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "warning: CPUID advertises RTM but no probe transaction committed "
                   "(TSX likely disabled by microcode); hardware paths will run on "
                   "their software fallbacks\n");
    }
  }
}

/// THE substrate dispatch: maps the runtime --substrate choice onto a
/// compile-time substrate type and invokes `fn(SubstrateTag<H>{})`. Scenario
/// TUs contain no substrate names beyond their one templated body; adding a
/// substrate means extending this switch (and the core traits), nothing
/// else.
template <class Fn>
decltype(auto) dispatch_substrate(const Options& opt, Fn&& fn) {
  require_substrate_available(opt);
  switch (opt.substrate) {
    case SubstrateKind::kSim: return std::forward<Fn>(fn)(SubstrateTag<HtmSim>{});
    case SubstrateKind::kRtm: return std::forward<Fn>(fn)(SubstrateTag<HtmRtm>{});
    case SubstrateKind::kEmul: break;
  }
  return std::forward<Fn>(fn)(SubstrateTag<HtmEmul>{});
}

/// Applies `fn(SubstrateTag<H>{})` to every substrate this binary can run:
/// emul and sim always, rtm when the hardware is actually usable. For
/// scenarios (micro_htm) and tests that sweep the substrate axis itself.
template <class Fn>
void for_each_available_substrate(Fn&& fn) {
  fn(SubstrateTag<HtmEmul>{});
  fn(SubstrateTag<HtmSim>{});
  if (HtmRtm::hardware_viable()) fn(SubstrateTag<HtmRtm>{});
}

/// Fraction (percent) of hardware speculation thrown away: hardware-cause
/// aborts per completed transaction, wasted_pct = 100 * hw_aborts /
/// (hw_aborts + commits). Every hardware abort is a full speculative body
/// discarded, so this tracks wasted work across protocols regardless of
/// which path finally committed. 0 for pure-software series.
[[nodiscard]] inline double wasted_speculation_pct(const TxStats& s) {
  std::uint64_t hw_aborts = 0;
  for (const AbortCause c : {AbortCause::kHtmConflict, AbortCause::kHtmCapacity,
                             AbortCause::kHtmExplicit, AbortCause::kInjected}) {
    hw_aborts += s.aborts_by_cause[static_cast<std::size_t>(c)];
  }
  const double denom = static_cast<double>(hw_aborts + s.commits);
  return denom > 0 ? 100.0 * static_cast<double>(hw_aborts) / denom : 0.0;
}

/// PMU plumbing for the rtm substrate: snapshot before a run, delta after.
/// Compiles to nothing on emul/sim (no hardware counters to read).
template <class H>
[[nodiscard]] inline pmu::RtmTotalsSnapshot pmu_snapshot(TmUniverse<H>& universe) {
  if constexpr (SubstrateTraits<H>::kKind == SubstrateKind::kRtm) {
    return universe.htm().pmu_totals();
  } else {
    (void)universe;
    return {};
  }
}

/// Adds the hardware-measured RTM counters for one run (the delta from
/// `before`) to a report point. Emits nothing when the PMU was unavailable
/// — absent keys, not zeros-as-measurements (run_all stamps the reason in
/// the report meta).
template <class H>
inline void add_pmu_metrics(report::Point& p, TmUniverse<H>& universe,
                            const pmu::RtmTotalsSnapshot& before) {
  if constexpr (SubstrateTraits<H>::kKind == SubstrateKind::kRtm) {
    const pmu::RtmTotalsSnapshot now = universe.htm().pmu_totals();
    if (now.threads_sampled > before.threads_sampled) {
      p.set("pmu_tx_starts", static_cast<double>(now.tx_starts - before.tx_starts));
      p.set("pmu_tx_commits", static_cast<double>(now.tx_commits - before.tx_commits));
      if (now.threads_with_cycles > before.threads_with_cycles) {
        p.set("pmu_aborted_cycles",
              static_cast<double>(now.aborted_cycles() - before.aborted_cycles()));
      }
    }
  } else {
    (void)p;
    (void)universe;
    (void)before;
  }
}

/// Copies one throughput run into a report point: the headline metrics plus
/// every non-zero per-path / per-cause counter.
inline void fill_point(report::Point& p, const ThroughputResult& r) {
  p.set("total_ops", static_cast<double>(r.total_ops));
  p.set("ops_per_sec",
        r.seconds > 0 ? static_cast<double>(r.total_ops) / r.seconds : 0.0);
  p.set("abort_ratio", r.abort_ratio());
  p.set("wasted_speculation_pct", wasted_speculation_pct(r.stats));
  p.set("commits", static_cast<double>(r.stats.commits));
  p.set("aborts", static_cast<double>(r.stats.aborts));
  p.set("wall_seconds", r.seconds);
  for (std::size_t i = 0; i < static_cast<std::size_t>(ExecPath::kCount); ++i) {
    const auto path = static_cast<ExecPath>(i);
    if (r.stats.commits_by_path[i] != 0) {
      p.set(std::string("commits_") + to_string(path),
            static_cast<double>(r.stats.commits_by_path[i]));
    }
    if (r.stats.attempts_by_path[i] != 0) {
      p.set(std::string("attempts_") + to_string(path),
            static_cast<double>(r.stats.attempts_by_path[i]));
    }
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(AbortCause::kCount); ++i) {
    if (r.stats.aborts_by_cause[i] != 0) {
      p.set(std::string("aborts_") + to_string(static_cast<AbortCause>(i)),
            static_cast<double>(r.stats.aborts_by_cause[i]));
    }
  }
}

/// The protocol series of the paper's figures plus the two extension
/// hybrids, so every workload can sweep every protocol uniformly.
enum class Series {
  kHtm,          ///< "HTM": uninstrumented hardware upper bound
  kStdHytm,      ///< "Standard HyTM": instrumented reads+writes, hardware-only
  kTl2,          ///< "TL2": the software baseline (also the calibration run)
  kRh1Fast,      ///< "RH1 Fast": RH1 fast path only, hardware retries
  kRh1Mix10,     ///< "RH1 Mixed 10": 10% of aborts retried on the slow path
  kRh1Mix100,    ///< "RH1 Mixed 100": every abort retried on the slow path
  kHybridNorec,  ///< Hybrid NOrec: global-seqlock hybrid (coarse conflicts)
  kPhasedTm,     ///< Phased TM: global hardware/software phase switch
  kTatas,        ///< TATAS lock elision: global test-and-test-and-set lock,
                 ///< hardware-elided (the contention scenario's calibration floor)
};

[[nodiscard]] inline const char* to_string(Series s) {
  switch (s) {
    case Series::kHtm: return "HTM";
    case Series::kStdHytm: return "StandardHyTM";
    case Series::kTl2: return "TL2";
    case Series::kRh1Fast: return "RH1-Fast";
    case Series::kRh1Mix10: return "RH1-Mix10";
    case Series::kRh1Mix100: return "RH1-Mix100";
    case Series::kHybridNorec: return "HybridNOrec";
    case Series::kPhasedTm: return "PhasedTM";
    case Series::kTatas: return "TATAS-Elide";
  }
  return "?";
}

/// Every protocol series — for scenarios that sweep the whole matrix (the
/// dynamic workloads run every protocol by design).
[[nodiscard]] inline std::vector<Series> all_series() {
  return {Series::kHtm,      Series::kStdHytm,    Series::kTl2,
          Series::kRh1Fast,  Series::kRh1Mix10,   Series::kRh1Mix100,
          Series::kHybridNorec, Series::kPhasedTm};
}

/// Constructs the protocol instance a series names — over `universe`, with
/// the paper's configuration for that series and `inject_bp` injection —
/// and invokes `fn(tm)` on it. The single source of series -> protocol
/// wiring, shared by the throughput driver below and by scenarios that
/// drive a series through a different loop (scenario_phased's run_phased).
template <class H, class Fn>
decltype(auto) with_series_tm(TmUniverse<H>& universe, Series series,
                              std::uint32_t inject_bp, Fn&& fn) {
  switch (series) {
    case Series::kHtm: {
      typename HtmOnly<H>::Config cfg;
      cfg.inject_abort_bp = inject_bp;
      HtmOnly<H> tm(universe, cfg);
      return fn(tm);
    }
    case Series::kStdHytm: {
      typename StandardHytm<H>::Config cfg;
      cfg.hardware_only = true;  // the paper's best-case Standard HyTM
      cfg.inject_abort_bp = inject_bp;
      StandardHytm<H> tm(universe, cfg);
      return fn(tm);
    }
    case Series::kRh1Fast:
    case Series::kRh1Mix10:
    case Series::kRh1Mix100: {
      typename HybridTm<H>::Config cfg;
      cfg.inject_abort_bp = inject_bp;
      cfg.slow_retry_percent =
          series == Series::kRh1Fast ? 0 : (series == Series::kRh1Mix10 ? 10 : 100);
      HybridTm<H> tm(universe, cfg);
      return fn(tm);
    }
    case Series::kHybridNorec: {
      typename HybridNorec<H>::Config cfg;
      cfg.inject_abort_bp = inject_bp;
      HybridNorec<H> tm(universe, cfg);
      return fn(tm);
    }
    case Series::kPhasedTm: {
      typename PhasedTm<H>::Config cfg;
      cfg.inject_abort_bp = inject_bp;
      PhasedTm<H> tm(universe, cfg);
      return fn(tm);
    }
    case Series::kTatas: {
      typename TatasElision<H>::Config cfg;
      cfg.inject_abort_bp = inject_bp;
      TatasElision<H> tm(universe, cfg);
      return fn(tm);
    }
    case Series::kTl2: break;
  }
  Tl2<H> tm(universe);
  return fn(tm);
}

/// Runs one series point: constructs the protocol over `universe` with the
/// paper's configuration for that series and drives `op` on `threads`
/// threads for `seconds`. `inject_bp` is the TL2-calibrated abort ratio.
///
/// `op(tm, ctx, rng, tid)` must execute exactly one transaction.
template <class H, class OpFactory>
ThroughputResult run_series_point(TmUniverse<H>& universe, Series series, unsigned threads,
                                  double seconds, std::uint32_t inject_bp, OpFactory&& op,
                                  PinMode pin = PinMode::kNone) {
  return with_series_tm(universe, series, inject_bp, [&](auto& tm) {
    return run_throughput(tm, threads, seconds, op, pin);
  });
}

/// Paper §3.1 calibration: TL2 abort ratio for this workload at this thread
/// count, converted to injection basis points.
template <class H, class OpFactory>
[[nodiscard]] std::pair<std::uint32_t, ThroughputResult> calibrate_tl2(TmUniverse<H>& universe,
                                                                       unsigned threads,
                                                                       double seconds,
                                                                       OpFactory&& op,
                                                                       PinMode pin = PinMode::kNone) {
  Tl2<H> tl2(universe);
  ThroughputResult r = run_throughput(tl2, threads, seconds, op, pin);
  return {AbortInjector::from_ratio(r.abort_ratio()).rate_bp(), std::move(r)};
}

/// Standard figure loop: for each thread count, calibrate on TL2 once, then
/// run every series with the calibrated injection, filling `table` (one
/// series per protocol, one point per thread count). The TL2 point itself
/// is reused from the calibration run (it *is* the TL2 series).
/// `inject = false` keeps the TL2 run as that series' point but passes zero
/// injection to the hardware-mode series — for scenarios whose design is
/// explicitly "no software pressure" (ext_hybrids table a).
/// `series_suffix` is appended to every series name, so a scenario can run
/// the same protocol sweep over two structures into one table
/// (scenario_mutating_tree's constant-vs-mutating headline comparison).
template <class H, class OpFactory>
void run_figure(TmUniverse<H>& universe, report::TableData& table,
                const std::vector<Series>& series_list, const Options& opt, OpFactory&& op,
                bool inject = true, const char* series_suffix = "") {
  const std::size_t first = table.series.size();
  for (const Series s : series_list) {
    table.add_series(std::string(to_string(s)) + series_suffix);
  }
  for (const unsigned threads : opt.threads) {
    const auto [calibrated_bp, tl2_result] =
        calibrate_tl2(universe, threads, opt.calib_seconds, op, opt.pin);
    const std::uint32_t inject_bp = inject ? calibrated_bp : 0;
    for (std::size_t i = 0; i < series_list.size(); ++i) {
      report::Point& p = table.series[first + i].add_point(threads);
      if (series_list[i] == Series::kTl2) {
        fill_point(p, tl2_result);
        continue;
      }
      const pmu::RtmTotalsSnapshot pmu0 = pmu_snapshot(universe);
      fill_point(p, run_series_point(universe, series_list[i], threads, opt.seconds,
                                     inject_bp, op, opt.pin));
      add_pmu_metrics(p, universe, pmu0);
    }
  }
}

/// Deadline-driven timing loop for the micro scenarios: runs `f` in batches
/// until `seconds` elapse and returns the mean nanoseconds per call.
template <class F>
[[nodiscard]] double ns_per_op(double seconds, F&& f) {
  using clock = std::chrono::steady_clock;
  f();  // warm-up (first-touch, lazy init)
  const auto t0 = clock::now();
  const auto deadline = t0 + std::chrono::duration<double>(seconds);
  std::uint64_t iters = 0;
  auto now = t0;
  do {
    for (int i = 0; i < 32; ++i) f();
    iters += 32;
    now = clock::now();
  } while (now < deadline);
  return std::chrono::duration<double, std::nano>(now - t0).count() /
         static_cast<double>(iters);
}

}  // namespace rhtm::bench
