// Dynamic-workload scenario — transactional MPMC producer/consumer queue,
// every protocol. Unlike the search structures, the queue's transactions
// are tiny (3 TVars) but inherently serializing: every enqueuer conflicts
// on the tail cursor, every dequeuer on the head cursor. Two tables:
//
//  1. Thread sweep at a 1:1 producer:consumer split (the first half of
//     the tids produce, the rest consume).
//  2. Producer-share sweep (25% / 50% / 75% producers) at the largest
//     requested thread count — the configurable-ratio axis: a 75% share
//     keeps the queue near full (enqueues degrade to committed no-ops), a
//     25% share keeps it near empty.

#include <algorithm>

#include "registry.h"
#include "workloads/txn_queue.h"

namespace rhtm::bench {
namespace {

/// `producers` of the `threads` workers enqueue, the rest dequeue. A
/// single-threaded run alternates roles by coin flip (an MPMC queue needs
/// both sides to make progress).
auto queue_op(const TxnQueue& queue, unsigned threads, unsigned producers) {
  return [&queue, threads, producers](auto& tm, auto& ctx, Xoshiro256& rng, unsigned tid) {
    const bool produce = threads == 1 ? rng.percent_chance(50) : tid < producers;
    if (produce) {
      const TmWord v = rng.next_u64();
      tm.atomically(ctx, [&](auto& tx) { (void)queue.enqueue(tx, v); });
    } else {
      TmWord sink = 0;
      tm.atomically(ctx, [&](auto& tx) { (void)queue.dequeue(tx, &sink); });
      do_not_optimize(sink);
    }
  };
}

[[nodiscard]] unsigned producer_count(unsigned threads, unsigned share_percent) {
  if (threads <= 1) return 1;
  const unsigned p = threads * share_percent / 100;
  return std::clamp(p, 1u, threads - 1);  // both sides always represented
}

template <class H>
void run_queue(const Options& opt, report::BenchReport& rep, std::size_t capacity) {
  TxnQueue queue(capacity);
  TmUniverse<H> universe(universe_config(opt));

  // One measurement point shared by both tables' loops: every series (the
  // TL2 calibration run included) starts from a half-full queue — no
  // series inherits the occupancy the previous one drained or pegged —
  // and each row's `queue_size_after` is the occupancy that series' own
  // run ended with.
  const auto add_point = [&](report::TableData& table, double x, unsigned threads,
                             unsigned share) {
    auto op = queue_op(queue, threads, producer_count(threads, share));
    queue.unsafe_reset(capacity / 2);
    const auto [inject_bp, tl2_result] =
        calibrate_tl2(universe, threads, opt.calib_seconds, op, opt.pin);
    const auto tl2_size = static_cast<double>(queue.unsafe_size());
    std::size_t i = 0;
    for (const Series s : all_series()) {
      report::Point& p = table.series[i++].add_point(x);
      if (s == Series::kTl2) {
        fill_point(p, tl2_result);
        p.set("queue_size_after", tl2_size);
        continue;
      }
      queue.unsafe_reset(capacity / 2);
      fill_point(p,
                 run_series_point(universe, s, threads, opt.seconds, inject_bp, op, opt.pin));
      p.set("queue_size_after", static_cast<double>(queue.unsafe_size()));
    }
  };

  {
    report::TableData& table = rep.add_table(
        "MPMC transactional queue, capacity " + std::to_string(capacity) +
        ", 1:1 producers:consumers, all protocols (substrate=" +
        std::string(opt.substrate_name()) + ")");
    for (const Series s : all_series()) table.add_series(to_string(s));
    for (const unsigned threads : opt.threads) add_point(table, threads, threads, 50);
  }
  {
    const unsigned threads = *std::max_element(opt.threads.begin(), opt.threads.end());
    report::TableData& table = rep.add_table(
        "MPMC queue producer share sweep at " + std::to_string(threads) +
        " threads (x = % of workers producing)",
        report::TableStyle::kSweep, "producer_percent");
    for (const Series s : all_series()) table.add_series(to_string(s));
    for (const unsigned share : {25u, 50u, 75u}) add_point(table, share, threads, share);
  }
}

}  // namespace

RHTM_SCENARIO(queue, "extension",
              "Transactional MPMC producer/consumer queue, every protocol, "
              "1:1 + producer-share sweeps") {
  report::BenchReport rep;
  rep.substrate = opt.substrate_name();
  const std::size_t capacity = opt.full ? 65536 : 4096;
  rep.set_meta("workload", "txn_queue/capacity=" + std::to_string(capacity));
  rep.set_meta("producer_shares", "25,50,75");
  dispatch_substrate(opt, [&]<class H>(SubstrateTag<H>) { run_queue<H>(opt, rep, capacity); });
  return rep;
}

}  // namespace rhtm::bench
