// Figure 2 (top) — 100K-node Constant Red-Black Tree at 20% and 80%
// mutations, adding the mixed-mode RH1 variants: RH1 Mixed 10 / Mixed 100
// retry 10% / 100% of aborted fast transactions on the software slow-path.
//
// Paper shape: at 20% writes the abort ratio is low (~5%) so the slow-path
// penalty is invisible; at 80% writes (~40% aborts) Mixed 100 pays a visible
// penalty yet still edges out the best-case Standard HyTM.

#include "registry.h"
#include "workloads/constant_rbtree.h"

namespace rhtm::bench {
namespace {

template <class H>
void run_mix(const Options& opt, report::BenchReport& rep, ConstantRbTree& tree,
             unsigned write_percent) {
  TmUniverse<H> universe(universe_config(opt));
  report::TableData& table = rep.add_table(
      "Figure 2 - 100K Nodes Constant RB-Tree, " + std::to_string(write_percent) +
      "% mutations (substrate=" + std::string(opt.substrate_name()) + ")");

  const std::size_t nodes = tree.size();
  auto op = [&, write_percent](auto& tm, auto& ctx, Xoshiro256& rng, unsigned) {
    const std::uint64_t key = rng.below(2 * nodes);
    if (rng.percent_chance(write_percent)) {
      tm.atomically(ctx, [&](auto& tx) { (void)tree.update(tx, key, rng.next_u64(), rng); });
    } else {
      TmWord sink = 0;
      tm.atomically(ctx, [&](auto& tx) { (void)tree.lookup(tx, key, &sink); });
      do_not_optimize(sink);
    }
  };

  run_figure(universe, table,
             {Series::kHtm, Series::kStdHytm, Series::kTl2, Series::kRh1Fast,
              Series::kRh1Mix10, Series::kRh1Mix100},
             opt, op);
}

template <class H>
void run_fig2(const Options& opt, report::BenchReport& rep) {
  ConstantRbTree tree(100'000);
  run_mix<H>(opt, rep, tree, 20);  // Fig. 2 top-left
  run_mix<H>(opt, rep, tree, 80);  // Fig. 2 top-right
}

}  // namespace

RHTM_SCENARIO(fig2_rbtree_mix, "Fig. 2 (top)",
              "100K-node constant RB-tree at 20%/80% mutations, adds RH1-Mix10/Mix100") {
  report::BenchReport rep;
  rep.substrate = opt.substrate_name();
  rep.set_meta("workload", "constant_rbtree/100000");
  rep.set_meta("write_percents", "20,80");
  dispatch_substrate(opt, [&]<class H>(SubstrateTag<H>) { run_fig2<H>(opt, rep); });
  return rep;
}

}  // namespace rhtm::bench
