// Figure 1 — 100K-node Constant Red-Black Tree, 20% mutations, threads 1..20.
// Series: HTM, Standard HyTM, TL2, RH1 Fast (hardware retries only).
//
// The paper's headline figure: instrumenting the reads of the hardware
// transactions (Standard HyTM) collapses the HTM advantage from ~5-6× over
// TL2 to ~2×; RH1's uninstrumented reads preserve it.

#include "registry.h"
#include "workloads/constant_rbtree.h"

namespace rhtm::bench {
namespace {

template <class H>
void run_fig1(const Options& opt, report::BenchReport& rep) {
  const std::size_t nodes = 100'000;
  ConstantRbTree tree(nodes);
  constexpr unsigned kWritePercent = 20;

  TmUniverse<H> universe(universe_config(opt));
  report::TableData& table = rep.add_table(
      "Figure 1 - 100K Nodes Constant RB-Tree, 20% mutations (substrate=" +
      std::string(opt.substrate_name()) + ", total ops per point)");

  auto op = [&](auto& tm, auto& ctx, Xoshiro256& rng, unsigned) {
    const std::uint64_t key = rng.below(2 * nodes);
    if (rng.percent_chance(kWritePercent)) {
      tm.atomically(ctx, [&](auto& tx) { (void)tree.update(tx, key, rng.next_u64(), rng); });
    } else {
      TmWord sink = 0;
      tm.atomically(ctx, [&](auto& tx) { (void)tree.lookup(tx, key, &sink); });
      do_not_optimize(sink);
    }
  };

  run_figure(universe, table,
             {Series::kHtm, Series::kStdHytm, Series::kTl2, Series::kRh1Fast}, opt, op);
}

}  // namespace

RHTM_SCENARIO(fig1_rbtree, "Fig. 1",
              "100K-node constant RB-tree, 20% mutations: HTM / StdHyTM / TL2 / RH1-Fast") {
  report::BenchReport rep;
  rep.substrate = opt.substrate_name();
  rep.set_meta("workload", "constant_rbtree/100000");
  rep.set_meta("write_percent", "20");
  dispatch_substrate(opt, [&]<class H>(SubstrateTag<H>) { run_fig1<H>(opt, rep); });
  return rep;
}

}  // namespace rhtm::bench
