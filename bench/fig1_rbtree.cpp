// Figure 1 — 100K-node Constant Red-Black Tree, 20% mutations, threads 1..20.
// Series: HTM, Standard HyTM, TL2, RH1 Fast (hardware retries only).
//
// The paper's headline figure: instrumenting the reads of the hardware
// transactions (Standard HyTM) collapses the HTM advantage from ~5-6× over
// TL2 to ~2×; RH1's uninstrumented reads preserve it.

#include "bench_common.h"
#include "workloads/constant_rbtree.h"

namespace rhtm::bench {
namespace {

template <class H>
void run(const Options& opt) {
  const std::size_t nodes = 100'000;
  ConstantRbTree tree(nodes);
  constexpr unsigned kWritePercent = 20;

  TmUniverse<H> universe;
  Table table("Figure 1 - 100K Nodes Constant RB-Tree, 20% mutations (substrate=" +
                  std::string(opt.substrate_name()) + ", total ops per point)",
              opt.threads);

  auto op = [&](auto& tm, auto& ctx, Xoshiro256& rng, unsigned) {
    const std::uint64_t key = rng.below(2 * nodes);
    if (rng.percent_chance(kWritePercent)) {
      tm.atomically(ctx, [&](auto& tx) { (void)tree.update(tx, key, rng.next_u64(), rng); });
    } else {
      TmWord sink = 0;
      tm.atomically(ctx, [&](auto& tx) { (void)tree.lookup(tx, key, &sink); });
      do_not_optimize(sink);
    }
  };

  run_figure(universe, table,
             {Series::kHtm, Series::kStdHytm, Series::kTl2, Series::kRh1Fast}, opt, op);
  table.print();
}

}  // namespace
}  // namespace rhtm::bench

int main(int argc, char** argv) {
  const auto opt = rhtm::bench::Options::parse(argc, argv);
  if (opt.use_sim) {
    rhtm::bench::run<rhtm::HtmSim>(opt);
  } else {
    rhtm::bench::run<rhtm::HtmEmul>(opt);
  }
  return 0;
}
