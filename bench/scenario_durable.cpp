// Durability scenario — the persistence-mode universe (core/pmem.h) under
// throughput load. Every series runs with UniverseConfig::durable set, so
// each committed writer pays the full log-then-fence-then-apply pipeline:
// one pwb per logged element plus the record header, two pfences around the
// commit marker, one psync draining the image apply. Three tables:
//
//  1. Durable KV transfer throughput vs threads (AccountStore transfers —
//     2 reads + 2 writes per committed transfer).
//  2. The same runs re-keyed on fences_per_commit — the gate-visible
//     persistence-cost axis (lower is better: scripts/check_regression.py
//     flags a *rising* RH1-Fast/TL2 fence ratio). The fence arithmetic is
//     path-independent by design (tests/durable_mode_test.cpp pins
//     pwb = 2n+2, pfence = 2, psync = 1 per n-entry durable commit), so
//     this ratio should sit at ~1.0: RH1's reduced hardware commit buys its
//     throughput without extra persistence traffic.
//  3. Durable MPMC queue throughput vs threads (enqueue/dequeue — 2-entry
//     durable commits on an inherently serializing hot spot).
//
// Substrate note: durability needs real commit atomicity — the durable
// hardware commits stamp stripes locked inside the transaction, which
// HtmEmul's no-rollback emulation cannot undo on abort (the same exclusion
// capacity_paths_test documents for its emul leg). A requested emul run is
// therefore remapped to sim, visibly: rep.substrate and the
// "emul_remapped_to" meta record the substitution.

#include "registry.h"
#include "workloads/account_store.h"
#include "workloads/txn_queue.h"

namespace rhtm::bench {
namespace {

constexpr std::size_t kAccounts = 1024;
constexpr TmWord kInitialBalance = 1 << 16;  ///< deep enough that transfers rarely no-op

/// The durable protocol set: every series that can capture a redo log.
/// HtmOnly is excluded by design (zero instrumentation, nowhere to capture —
/// core/htm_only.h) and PhasedTm/StandardHytm route durable work to their
/// software paths anyway, so the interesting matrix is the two baselines
/// against the RH1 flavours.
const Series kDurableSeries[] = {Series::kTl2, Series::kRh1Fast, Series::kRh1Mix100,
                                 Series::kHybridNorec};

[[nodiscard]] UniverseConfig durable_universe_config(bool full) {
  UniverseConfig ucfg;
  ucfg.durable = true;
  // One redo log per run (each point constructs a fresh universe): big
  // enough that a smoke/default run never fills it. A --full run can —
  // overflow is sticky and graceful (appends stop, the run continues), and
  // every point reports it as the log_overflowed metric so a clipped fence
  // count is never mistaken for a cheap protocol.
  ucfg.pmem.log_words = full ? (std::size_t{1} << 24) : (std::size_t{1} << 23);
  return ucfg;
}

/// One durable throughput run plus its persistence-cost counters, taken
/// from the run's own fresh PersistentDomain (no cross-run delta math).
struct DurableRun {
  ThroughputResult result;
  FenceCounts fences;
  bool overflowed = false;
};

void fill_durable_point(report::Point& p, const DurableRun& run) {
  fill_point(p, run.result);
  const double commits =
      run.result.stats.commits > 0 ? static_cast<double>(run.result.stats.commits) : 1.0;
  p.set("fences_per_commit", static_cast<double>(run.fences.total()) / commits);
  p.set("pwb_per_commit", static_cast<double>(run.fences.pwb) / commits);
  p.set("pfence_per_commit", static_cast<double>(run.fences.pfence) / commits);
  p.set("psync_per_commit", static_cast<double>(run.fences.psync) / commits);
  p.set("log_overflowed", run.overflowed ? 1.0 : 0.0);
}

/// Runs one durable series point over a fresh durable universe. The TL2
/// series doubles as the §3.1 calibration run: its measured abort ratio is
/// injected into the hardware-mode series of the same point, exactly like
/// the non-durable figures.
template <class H, class OpFactory>
DurableRun run_durable(Series series, unsigned threads, double seconds,
                       std::uint32_t inject_bp, OpFactory&& op, PinMode pin, bool full) {
  TmUniverse<H> universe(durable_universe_config(full));
  DurableRun run;
  run.result = run_series_point(universe, series, threads, seconds, inject_bp, op, pin);
  run.fences = universe.pmem().fence_counts();
  run.overflowed = universe.pmem().log_overflowed();
  return run;
}

template <class H, class OpFactory>
std::pair<std::uint32_t, DurableRun> calibrate_durable_tl2(unsigned threads, double seconds,
                                                           OpFactory&& op, PinMode pin,
                                                           bool full) {
  TmUniverse<H> universe(durable_universe_config(full));
  auto [inject_bp, result] = calibrate_tl2(universe, threads, seconds, op, pin);
  DurableRun run;
  run.result = std::move(result);
  run.fences = universe.pmem().fence_counts();
  run.overflowed = universe.pmem().log_overflowed();
  return {inject_bp, std::move(run)};
}

/// Fills one thread-count point of `tables` (same runs, different primary
/// metric per table) for every durable series.
template <class H, class OpFactory>
void add_durable_point(std::vector<report::TableData*> const& tables, std::size_t first,
                       unsigned threads, const Options& opt, OpFactory&& op) {
  const auto [inject_bp, tl2_run] =
      calibrate_durable_tl2<H>(threads, opt.calib_seconds, op, opt.pin, opt.full);
  std::size_t i = 0;
  for (const Series s : kDurableSeries) {
    DurableRun run = s == Series::kTl2
                         ? tl2_run
                         : run_durable<H>(s, threads, opt.seconds, inject_bp, op, opt.pin,
                                          opt.full);
    for (report::TableData* table : tables) {
      fill_durable_point(table->series[first + i].add_point(threads), run);
    }
    ++i;
  }
}

auto transfer_op(const AccountStore& store) {
  return [&store](auto& tm, auto& ctx, Xoshiro256& rng, unsigned) {
    const std::uint64_t from = rng.next_u64() % store.accounts();
    const std::uint64_t to = rng.next_u64() % store.accounts();
    const TmWord amount = 1 + rng.next_u64() % 8;
    tm.atomically(ctx, [&](auto& tx) { (void)store.transfer(tx, from, to, amount); });
  };
}

/// 1:1 producer/consumer split; a single-threaded run alternates roles by
/// coin flip so both sides make progress (same shape as scenario_queue).
auto queue_op(const TxnQueue& queue, unsigned threads) {
  return [&queue, threads](auto& tm, auto& ctx, Xoshiro256& rng, unsigned tid) {
    const bool produce = threads == 1 ? rng.percent_chance(50) : tid < threads / 2;
    if (produce) {
      const TmWord v = rng.next_u64();
      tm.atomically(ctx, [&](auto& tx) { (void)queue.enqueue(tx, v); });
    } else {
      TmWord sink = 0;
      tm.atomically(ctx, [&](auto& tx) { (void)queue.dequeue(tx, &sink); });
      do_not_optimize(sink);
    }
  };
}

template <class H>
void run_durable_scenario(const Options& opt, report::BenchReport& rep,
                          std::size_t queue_capacity) {
  AccountStore store(kAccounts, kInitialBalance);
  const std::string substrate(opt.substrate_name());

  report::TableData& kv = rep.add_table(
      "Durable KV transfer throughput vs threads (" + std::to_string(kAccounts) +
          " accounts, redo-logged commits, substrate=" + substrate + ")",
      report::TableStyle::kSweep, "threads", "total_ops");
  report::TableData& fences = rep.add_table(
      "Durable fence cost per commit, KV transfers (pwb+pfence+psync, substrate=" +
          substrate + ")",
      report::TableStyle::kSweep, "threads", "fences_per_commit");
  for (const Series s : kDurableSeries) {
    kv.add_series(to_string(s));
    fences.add_series(to_string(s));
  }
  for (const unsigned threads : opt.threads) {
    add_durable_point<H>({&kv, &fences}, 0, threads, opt, transfer_op(store));
  }

  TxnQueue queue(queue_capacity);
  report::TableData& q = rep.add_table(
      "Durable MPMC queue throughput vs threads (capacity " +
          std::to_string(queue_capacity) + ", 1:1 producers:consumers, substrate=" +
          substrate + ")",
      report::TableStyle::kSweep, "threads", "total_ops");
  for (const Series s : kDurableSeries) q.add_series(to_string(s));
  for (const unsigned threads : opt.threads) {
    queue.unsafe_reset(queue_capacity / 2);
    add_durable_point<H>({&q}, 0, threads, opt, queue_op(queue, threads));
  }
}

}  // namespace

RHTM_SCENARIO(durable, "extension (durability)",
              "durable redo-logged commits: KV + queue throughput and "
              "fences-per-commit, durable protocol set") {
  // Durable commits need abort-capable hardware transactions (locked stripe
  // stamps inside the txn); HtmEmul cannot roll those back, so an emul
  // request runs on sim instead — recorded, never silent.
  Options eff = opt;
  const bool remapped = eff.substrate == SubstrateKind::kEmul;
  if (remapped) eff.substrate = SubstrateKind::kSim;

  report::BenchReport rep;
  rep.substrate = eff.substrate_name();
  const std::size_t queue_capacity = eff.full ? 65536 : 4096;
  rep.set_meta("workload", "durable account transfers + durable txn_queue");
  rep.set_meta("accounts", std::to_string(kAccounts));
  rep.set_meta("queue_capacity", std::to_string(queue_capacity));
  rep.set_meta("log_words", std::to_string(durable_universe_config(eff.full).pmem.log_words));
  if (remapped) rep.set_meta("emul_remapped_to", "sim");
  dispatch_substrate(eff, [&]<class H>(SubstrateTag<H>) {
    run_durable_scenario<H>(eff, rep, queue_capacity);
  });
  return rep;
}

}  // namespace rhtm::bench
