// Extension scenario — Zipfian-skewed random-array mix, swept through EVERY
// protocol. Uniform access (fig3_randomarray) is the paper's best case for
// distributed conflicts; real workloads are skewed, concentrating traffic
// on a few hot stripes. Two skew levels (theta 0.8 and the YCSB-default
// 0.99) expose how each protocol degrades as the hot set shrinks: the
// fine-grained RH1 paths should keep separating from Hybrid NOrec's global
// sequence lock as contention concentrates.

#include "registry.h"
#include "workloads/random_array.h"
#include "workloads/zipf.h"

namespace rhtm::bench {
namespace {

constexpr std::size_t kArrayWords = 128 * 1024;  // power of two: see scatter()
constexpr unsigned kTxLen = 32;
constexpr unsigned kWritePercent = 20;

/// Bijectively scatters hot ranks across the (power-of-two sized) array so
/// the skew measures *stripe* contention, not adjacent-rank cache sharing.
constexpr std::size_t scatter(std::size_t rank) {
  return (rank * 0x9e3779b97f4a7c15ull) & (kArrayWords - 1);
}

template <class H>
void run_skew(const Options& opt, report::BenchReport& rep, const RandomArray& array,
              double theta) {
  const ZipfianGenerator zipf(kArrayWords, theta);

  TmUniverse<H> universe(universe_config(opt));
  report::TableData& table = rep.add_table(
      "128K Zipfian Random Array, theta=" + std::to_string(theta).substr(0, 4) +
      ", len=32, 20% writes, all protocols (substrate=" +
      std::string(opt.substrate_name()) + ")");

  auto op = [&](auto& tm, auto& ctx, Xoshiro256& rng, unsigned) {
    tm.atomically(ctx, [&](auto& tx) {
      do_not_optimize(array.op_indexed(tx, rng, kTxLen, kWritePercent, [&](Xoshiro256& r) {
        return scatter(zipf.next(r));
      }));
    });
  };

  run_figure(universe, table,
             {Series::kHtm, Series::kStdHytm, Series::kTl2, Series::kRh1Fast,
              Series::kRh1Mix10, Series::kRh1Mix100, Series::kHybridNorec, Series::kPhasedTm},
             opt, op);
}

template <class H>
void run_zipfian(const Options& opt, report::BenchReport& rep) {
  RandomArray array(kArrayWords);
  run_skew<H>(opt, rep, array, 0.8);
  run_skew<H>(opt, rep, array, 0.99);
}

}  // namespace

RHTM_SCENARIO(zipfian_mix, "extension",
              "Zipfian-skewed 128K array mix (theta 0.8 / 0.99), every protocol") {
  report::BenchReport rep;
  rep.substrate = opt.substrate_name();
  rep.set_meta("workload", "random_array/131072 zipfian");
  rep.set_meta("tx_len", std::to_string(kTxLen));
  rep.set_meta("write_percent", std::to_string(kWritePercent));
  dispatch_substrate(opt, [&]<class H>(SubstrateTag<H>) { run_zipfian<H>(opt, rep); });
  return rep;
}

}  // namespace rhtm::bench
