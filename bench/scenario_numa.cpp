// NUMA geometry scenario — the socket axis of the universe (core/topology.h,
// ARCHITECTURE §10). Workers are placed by the scenario itself from the same
// Topology object the universe shards over (compact = fill one socket first,
// scatter = round-robin across sockets), so placement and sharding agree by
// construction. Five views:
//
//  1. Compact-vs-scatter throughput per protocol (the headline table: the
//     same workload with all threads on one socket vs spread across all).
//  2. The same runs re-keyed as cross_socket_penalty = compact_ops /
//     scatter_ops — the gate-visible lower-is-better ratio (1.0 = placement
//     does not matter; scripts/check_regression.py flags a *rising*
//     RH1-Fast/TL2 penalty ratio).
//  3. Cross-socket transfer-rate sweep on account_store: accounts are
//     partitioned per socket, scatter-placed workers draw the destination
//     from a remote partition with probability x% — the knob that dials
//     cross-socket data flow from zero to always.
//  4. Numa-mode sweep (off | shard | shard+clock) at fixed remote rate:
//     clock_publishes_per_commit is the acceptance metric — shard+clock
//     pays a global clock write only on cross-socket validation failure,
//     where off/GV1 pays one per software commit.
//  5. Per-socket thread sweep: each socket measured in isolation
//     (Point::socket carries the geometry into BENCH_numa.json).
//
// On a single-socket host (or when sysfs discovery falls back) the scenario
// splits the CPU list into a fake 2-socket topology, so every sharding and
// cached-clock path is exercised everywhere; the `topology` meta records
// which geometry was measured.

#include <algorithm>

#include "registry.h"
#include "workloads/account_store.h"

namespace rhtm::bench {
namespace {

constexpr std::size_t kAccounts = 4096;
constexpr TmWord kInitialBalance = 1 << 16;

/// The software baseline plus the two RH1 flavours: the protocols whose
/// clock traffic the cached mode is designed to localize.
const Series kNumaSeries[] = {Series::kTl2, Series::kRh1Fast, Series::kRh1Mix100};

const NumaMode kNumaModes[] = {NumaMode::kOff, NumaMode::kShard, NumaMode::kShardClock};

/// The geometry this scenario measures: the discovered topology when it is
/// genuinely multi-socket, otherwise the CPU list split into two fake
/// sockets (so sharding/caching paths run on single-socket CI hosts too).
[[nodiscard]] Topology scenario_topology() {
  const Topology& sys = Topology::system();
  if (sys.discovered() && sys.socket_count() > 1) return sys;
  const unsigned n = std::max(2u, sys.cpu_count());
  std::vector<unsigned> lo;
  std::vector<unsigned> hi;
  for (unsigned c = 0; c < n; ++c) ((c < (n + 1) / 2) ? lo : hi).push_back(c);
  return Topology::fake({lo, hi});
}

/// Pins the calling worker to `cpu` (best effort) and forces its clock-cache
/// home socket to the topology's socket for that cpu — so the cached-clock
/// geometry is deterministic even when the topology is the fake split (or
/// the pin syscall failed). Returns the home socket.
unsigned place_on_cpu(const Topology& topo, unsigned cpu) {
  (void)pin_this_thread_to_cpu(cpu);
  const int s = topo.socket_of_cpu(cpu);
  const unsigned socket = s >= 0 ? static_cast<unsigned>(s) : 0;
  set_thread_socket_override(static_cast<int>(socket));
  return socket;
}

/// Account-transfer op with scenario-owned placement. Accounts are
/// partitioned per socket; `from` is always socket-local, `to` crosses into
/// another socket's partition with probability remote_pct. Placement runs
/// once per worker thread (run_worker_pool spawns fresh threads per run).
auto numa_transfer_op(const AccountStore& store, const Topology& topo, bool scatter,
                      unsigned remote_pct) {
  return [&store, &topo, scatter, remote_pct](auto& tm, auto& ctx, Xoshiro256& rng,
                                              unsigned tid) {
    static thread_local bool placed = false;
    static thread_local unsigned my_socket = 0;
    if (!placed) {
      my_socket = place_on_cpu(topo, scatter ? topo.scatter_cpu(tid) : topo.compact_cpu(tid));
      placed = true;
    }
    const unsigned nsock = topo.socket_count();
    const std::uint64_t per = store.accounts() / nsock;
    const bool remote = nsock > 1 && remote_pct > 0 && rng.percent_chance(remote_pct);
    const unsigned to_socket =
        remote ? (my_socket + 1 + static_cast<unsigned>(rng.next_u64() % (nsock - 1))) % nsock
               : my_socket;
    const std::uint64_t from = my_socket * per + rng.next_u64() % per;
    const std::uint64_t to = to_socket * per + rng.next_u64() % per;
    const TmWord amount = 1 + rng.next_u64() % 8;
    tm.atomically(ctx, [&](auto& tx) { (void)store.transfer(tx, from, to, amount); });
  };
}

/// The same op pinned inside ONE socket (the per-socket sweep): worker tid
/// walks socket `socket`'s CPU list; all accounts stay in that partition.
auto socket_local_op(const AccountStore& store, const Topology& topo, unsigned socket) {
  return [&store, &topo, socket](auto& tm, auto& ctx, Xoshiro256& rng, unsigned tid) {
    static thread_local bool placed = false;
    if (!placed) {
      const auto& cpus = topo.cpus_of_socket(socket);
      place_on_cpu(topo, cpus[tid % cpus.size()]);
      placed = true;
    }
    const std::uint64_t per = store.accounts() / topo.socket_count();
    const std::uint64_t from = socket * per + rng.next_u64() % per;
    const std::uint64_t to = socket * per + rng.next_u64() % per;
    tm.atomically(ctx, [&](auto& tx) { (void)store.transfer(tx, from, to, 1); });
  };
}

struct NumaRun {
  ThroughputResult result;
  double clock_publishes_per_commit = 0;
  double clock_cache_refreshes_per_commit = 0;
};

void fill_numa_point(report::Point& p, const NumaRun& run) {
  fill_point(p, run.result);
  p.set("clock_publishes_per_commit", run.clock_publishes_per_commit);
  p.set("clock_cache_refreshes_per_commit", run.clock_cache_refreshes_per_commit);
}

/// One series point over a FRESH universe built for (mode, topo): no clock
/// or stripe state leaks between runs, so the per-commit clock counters are
/// exactly this run's. No TL2 calibration injection — placement effects are
/// the measurement; injected aborts would smear them.
template <class H, class Op>
NumaRun run_numa_point(const Options& opt, const Topology& topo, NumaMode mode, Series series,
                       unsigned threads, Op&& op) {
  UniverseConfig ucfg = universe_config(opt);
  ucfg.numa = mode;
  ucfg.topology = &topo;
  TmUniverse<H> universe(ucfg);
  NumaRun run;
  run.result = run_series_point(universe, series, threads, opt.seconds, 0, op, PinMode::kNone);
  const double commits =
      run.result.stats.commits > 0 ? static_cast<double>(run.result.stats.commits) : 1.0;
  run.clock_publishes_per_commit =
      static_cast<double>(universe.clock().global_publishes()) / commits;
  run.clock_cache_refreshes_per_commit =
      static_cast<double>(universe.clock().local_publishes()) / commits;
  return run;
}

template <class H>
void run_numa_scenario(const Options& opt, report::BenchReport& rep, const Topology& topo) {
  const std::string substrate(opt.substrate_name());
  const std::string numa_name(to_string(opt.numa));
  AccountStore store(kAccounts, kInitialBalance);

  // -- tables 1+2: compact vs scatter, penalty ratio -----------------------
  report::TableData& placement = rep.add_table(
      "Compact vs scatter placement, socket-partitioned transfers (50% remote, numa=" +
          numa_name + ", substrate=" + substrate + ")",
      report::TableStyle::kSweep, "threads", "total_ops");
  report::TableData& penalty = rep.add_table(
      "Cross-socket placement penalty (compact_ops/scatter_ops, lower is better, numa=" +
          numa_name + ")",
      report::TableStyle::kSweep, "threads", "cross_socket_penalty");
  for (const Series s : kNumaSeries) {
    placement.add_series(std::string(to_string(s)) + "/compact");
    placement.add_series(std::string(to_string(s)) + "/scatter");
    penalty.add_series(to_string(s));
  }
  for (const unsigned threads : opt.threads) {
    std::size_t col = 0;
    std::size_t row = 0;
    for (const Series s : kNumaSeries) {
      const NumaRun compact = run_numa_point<H>(opt, topo, opt.numa, s, threads,
                                                numa_transfer_op(store, topo, false, 50));
      const NumaRun scatter = run_numa_point<H>(opt, topo, opt.numa, s, threads,
                                                numa_transfer_op(store, topo, true, 50));
      fill_numa_point(placement.series[col].add_point(threads), compact);
      fill_numa_point(placement.series[col + 1].add_point(threads), scatter);
      col += 2;
      report::Point& p = penalty.series[row++].add_point(threads);
      const double c_ops = static_cast<double>(compact.result.total_ops);
      const double s_ops = static_cast<double>(scatter.result.total_ops);
      p.set("cross_socket_penalty", s_ops > 0 ? c_ops / s_ops : 0.0);
      p.set("compact_ops", c_ops);
      p.set("scatter_ops", s_ops);
    }
  }

  // -- table 3: remote-transfer-rate sweep ---------------------------------
  const unsigned sweep_threads = opt.threads.back();
  report::TableData& remote = rep.add_table(
      "Cross-socket transfer-rate sweep, scatter placement (threads=" +
          std::to_string(sweep_threads) + ", numa=" + numa_name + ")",
      report::TableStyle::kSweep, "remote_pct", "total_ops");
  for (const Series s : kNumaSeries) remote.add_series(to_string(s));
  for (const unsigned pct : {0u, 25u, 50u, 100u}) {
    std::size_t row = 0;
    for (const Series s : kNumaSeries) {
      fill_numa_point(remote.series[row++].add_point(pct),
                      run_numa_point<H>(opt, topo, opt.numa, s, sweep_threads,
                                        numa_transfer_op(store, topo, true, pct)));
    }
  }

  // -- table 4: numa-mode sweep (the acceptance view) ----------------------
  report::TableData& modes = rep.add_table(
      "Numa-mode sweep: clock publishes per commit (x: 0=off 1=shard 2=shard+clock, "
      "scatter, 50% remote, threads=" + std::to_string(sweep_threads) + ")",
      report::TableStyle::kSweep, "numa_mode", "clock_publishes_per_commit");
  for (const Series s : kNumaSeries) modes.add_series(to_string(s));
  for (std::size_t m = 0; m < 3; ++m) {
    std::size_t row = 0;
    for (const Series s : kNumaSeries) {
      fill_numa_point(modes.series[row++].add_point(static_cast<double>(m)),
                      run_numa_point<H>(opt, topo, kNumaModes[m], s, sweep_threads,
                                        numa_transfer_op(store, topo, true, 50)));
    }
  }

  // -- table 5: per-socket thread sweep (Point::socket geometry) -----------
  report::TableData& per_socket = rep.add_table(
      "Per-socket thread sweep, socket-local transfers (numa=" + numa_name + ")",
      report::TableStyle::kSweep, "threads", "total_ops");
  const unsigned socket_threads[] = {1, 2};
  for (unsigned s = 0; s < topo.socket_count(); ++s) {
    for (const Series series : kNumaSeries) {
      report::SeriesData& sd =
          per_socket.add_series(std::string(to_string(series)) + "/socket" + std::to_string(s));
      for (const unsigned threads : socket_threads) {
        report::Point& p = sd.add_point(threads);
        p.socket = static_cast<int>(s);
        fill_numa_point(p, run_numa_point<H>(opt, topo, opt.numa, series, threads,
                                             socket_local_op(store, topo, s)));
      }
    }
  }
}

}  // namespace

RHTM_SCENARIO(numa, "extension (NUMA geometry)",
              "socket topology axis: compact-vs-scatter penalty, cross-socket "
              "transfer sweep, numa-mode clock-publish comparison") {
  const Topology topo = scenario_topology();
  report::BenchReport rep;
  rep.substrate = opt.substrate_name();
  rep.set_meta("workload", "socket-partitioned account transfers");
  rep.set_meta("accounts", std::to_string(kAccounts));
  rep.set_meta("topology", Topology::system().discovered() && Topology::system().socket_count() > 1
                               ? "discovered"
                               : "fake-2-socket-split");
  rep.set_meta("topology_sockets", std::to_string(topo.socket_count()));
  rep.set_meta("topology_cpus", std::to_string(topo.cpu_count()));
  dispatch_substrate(opt, [&]<class H>(SubstrateTag<H>) {
    run_numa_scenario<H>(opt, rep, topo);
  });
  return rep;
}

}  // namespace rhtm::bench
