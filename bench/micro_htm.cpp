// Microbenchmarks (A5): primitive costs of the simulated and emulated HTM
// substrates, the clock, the stripe mapping and the software-path
// containers. Deadline-driven timing loops (bench_common.h ns_per_op) — no
// external benchmark library.

#include "registry.h"
#include "stm/read_set.h"
#include "stm/stripe_set.h"
#include "stm/write_set.h"

namespace rhtm::bench {
namespace {

/// Adds one (series, size) point with the nanoseconds per call of `f` and,
/// when `items_per_call` > 0, the derived per-item cost. Returns the point
/// so callers can attach extra metrics (e.g. commit_rate).
template <class F>
report::Point& time_primitive(report::TableData& table, const Options& opt,
                              const std::string& name, double size, double items_per_call,
                              F&& f) {
  report::SeriesData* series = nullptr;
  for (report::SeriesData& s : table.series) {
    if (s.name == name) series = &s;
  }
  if (series == nullptr) series = &table.add_series(name);
  const double ns = ns_per_op(opt.seconds, f);
  report::Point& p = series->add_point(size);
  p.set("ns_per_call", ns);
  if (items_per_call > 0) p.set("ns_per_item", ns / items_per_call);
  return p;
}

/// The per-substrate primitive sweep, identical for every substrate the
/// binary can run: transactional read-only / write+commit costs, the
/// non-transactional store, and the abort round trip. Series names come
/// from the substrate traits, so new substrates show up automatically.
template <class H>
void substrate_primitives(report::TableData& table, const Options& opt) {
  const std::string prefix = SubstrateTraits<H>::kName;
  // The transactional sections also record the commit rate: on real
  // hardware big footprints abort on genuine capacity well before the
  // configured budget, and the per-item cost is only a *load* cost when
  // commit_rate is ~1 (otherwise it prices the begin/abort round trips).
  const auto timed_tx = [&](const char* suffix, std::initializer_list<std::size_t> sizes,
                            auto&& tx_body) {
    H htm;
    typename H::Tx tx(htm);
    for (const std::size_t n : sizes) {
      std::vector<TmCell> cells(n);
      std::uint64_t calls = 0;
      std::uint64_t commits = 0;
      report::Point& p =
          time_primitive(table, opt, prefix + suffix, static_cast<double>(n),
                         static_cast<double>(n), [&] {
                           ++calls;
                           const auto outcome = htm.execute(
                               tx, [&](typename H::Tx& t) { tx_body(t, cells); });
                           if (outcome.ok()) ++commits;
                         });
      p.set("commit_rate", calls > 0 ? static_cast<double>(commits) /
                                           static_cast<double>(calls) : 0.0);
    }
  };
  timed_tx("_tx_read_only", {16ul, 256ul, 4096ul},
           [](typename H::Tx& t, std::vector<TmCell>& cells) {
             TmWord sum = 0;
             for (auto& c : cells) sum += t.load(c);
             do_not_optimize(sum);
           });
  timed_tx("_tx_write_commit", {8ul, 64ul, 256ul},
           [](typename H::Tx& t, std::vector<TmCell>& cells) {
             for (auto& c : cells) t.store(c, 1);
           });
  {  // Non-transactional store (through the publication lock where one exists).
    H htm;
    TmCell cell;
    TmWord v = 0;
    time_primitive(table, opt, prefix + "_nontx_store", 1, 0,
                   [&] { htm.nontx_store(cell, ++v); });
  }
  {  // Explicit-abort round trip.
    H htm;
    typename H::Tx tx(htm);
    TmCell cell;
    time_primitive(table, opt, prefix + "_abort_roundtrip", 1, 0, [&] {
      const auto outcome = htm.execute(tx, [&](typename H::Tx& t) {
        t.store(cell, 1);
        t.abort_explicit();
      });
      do_not_optimize(outcome);
    });
  }
}

}  // namespace

RHTM_SCENARIO(micro_htm, "— (A5)",
              "substrate/clock/stripe/read-set/write-set primitive costs") {
  report::BenchReport rep;
  rep.substrate = kMixedSubstrateName;
  report::TableData& table =
      rep.add_table("Microbench A5 - substrate and container primitive costs",
                    report::TableStyle::kWide, "size", "ns_per_call");

  for_each_available_substrate(
      [&]<class H>(SubstrateTag<H>) { substrate_primitives<H>(table, opt); });
  for (const GvMode mode : {GvMode::kGv1, GvMode::kGv4, GvMode::kGv6}) {
    GlobalVersionClock clock(mode);
    time_primitive(table, opt, std::string("clock_next_") + to_string(mode), 1, 0,
                   [&] { do_not_optimize(clock.next()); });
  }
  {  // Address -> stripe index mapping.
    StripeTable stripe_table;
    std::uint64_t data[1024];
    std::size_t i = 0;
    time_primitive(table, opt, "stripe_index", 1, 0,
                   [&] { do_not_optimize(stripe_table.index_of(&data[i++ & 1023])); });
  }
  for (const std::size_t n : {16ul, 256ul}) {  // write-set insert + lookup
    WriteSet ws;
    std::vector<TmCell> cells(n);
    time_primitive(table, opt, "write_set_put_find", static_cast<double>(n),
                   static_cast<double>(2 * n), [&] {
                     ws.clear();
                     for (std::size_t i = 0; i < n; ++i) {
                       ws.put(cells[i], i, static_cast<std::uint32_t>(i));
                     }
                     for (std::size_t i = 0; i < n; ++i) do_not_optimize(ws.find(cells[i]));
                   });
  }
  {  // read-set append (exact-dedup path: every add probes the stripe set)
    ReadSet rs;
    time_primitive(table, opt, "read_set_add", 256, 256, [&] {
      rs.clear();
      for (std::uint32_t i = 0; i < 256; ++i) rs.add(i);
    });
  }
  {  // read-set append, duplicate-heavy (zipfian shape: re-reads are free)
    ReadSet rs;
    time_primitive(table, opt, "read_set_add_rereads", 256, 256, [&] {
      rs.clear();
      for (std::uint32_t i = 0; i < 256; ++i) rs.add((i * 7) & 15);
    });
  }
  {  // stripe-set insert + contains (the commit pipeline's dedup primitive)
    StripeSet ss;
    time_primitive(table, opt, "stripe_set_insert_contains", 256,
                   static_cast<double>(2 * 256), [&] {
                     ss.clear();
                     for (std::uint32_t i = 0; i < 256; ++i) ss.insert(i * 7);
                     for (std::uint32_t i = 0; i < 256; ++i) {
                       do_not_optimize(ss.contains(i * 7));
                     }
                   });
  }
  return rep;
}

}  // namespace rhtm::bench
