// Microbenchmarks (A5): primitive costs of the simulated and emulated HTM
// substrates, the clock, the stripe mapping and the software-path
// containers. Deadline-driven timing loops (bench_common.h ns_per_op) — no
// external benchmark library.

#include "registry.h"
#include "stm/read_set.h"
#include "stm/write_set.h"

namespace rhtm::bench {
namespace {

/// Adds one (series, size) point with the nanoseconds per call of `f` and,
/// when `items_per_call` > 0, the derived per-item cost.
template <class F>
void time_primitive(report::TableData& table, const Options& opt, const char* name,
                    double size, double items_per_call, F&& f) {
  report::SeriesData* series = nullptr;
  for (report::SeriesData& s : table.series) {
    if (s.name == name) series = &s;
  }
  if (series == nullptr) series = &table.add_series(name);
  const double ns = ns_per_op(opt.seconds, f);
  report::Point& p = series->add_point(size);
  p.set("ns_per_call", ns);
  if (items_per_call > 0) p.set("ns_per_item", ns / items_per_call);
}

}  // namespace

RHTM_SCENARIO(micro_htm, "— (A5)",
              "substrate/clock/stripe/read-set/write-set primitive costs") {
  report::BenchReport rep;
  rep.substrate = "mixed";
  report::TableData& table =
      rep.add_table("Microbench A5 - substrate and container primitive costs",
                    report::TableStyle::kWide, "size", "ns_per_call");

  {  // Simulated substrate: read-only transactions of n loads.
    HtmSim sim;
    HtmSim::Tx tx(sim);
    for (const std::size_t n : {16ul, 256ul, 4096ul}) {
      std::vector<TmCell> cells(n);
      time_primitive(table, opt, "sim_tx_read_only", static_cast<double>(n),
                     static_cast<double>(n), [&] {
                       const auto outcome = sim.execute(tx, [&](HtmSim::Tx& t) {
                         TmWord sum = 0;
                         for (auto& c : cells) sum += t.load(c);
                         do_not_optimize(sum);
                       });
                       do_not_optimize(outcome);
                     });
    }
  }
  {  // Simulated substrate: write+commit transactions of n stores.
    HtmSim sim;
    HtmSim::Tx tx(sim);
    for (const std::size_t n : {8ul, 64ul, 256ul}) {
      std::vector<TmCell> cells(n);
      time_primitive(table, opt, "sim_tx_write_commit", static_cast<double>(n),
                     static_cast<double>(n), [&] {
                       const auto outcome = sim.execute(tx, [&](HtmSim::Tx& t) {
                         for (auto& c : cells) t.store(c, 1);
                       });
                       do_not_optimize(outcome);
                     });
    }
  }
  {  // Emulated substrate: read-only transactions of n plain loads.
    HtmEmul emul;
    HtmEmul::Tx tx(emul);
    for (const std::size_t n : {16ul, 256ul, 4096ul}) {
      std::vector<TmCell> cells(n);
      time_primitive(table, opt, "emul_tx_read_only", static_cast<double>(n),
                     static_cast<double>(n), [&] {
                       const auto outcome = emul.execute(tx, [&](HtmEmul::Tx& t) {
                         TmWord sum = 0;
                         for (auto& c : cells) sum += t.load(c);
                         do_not_optimize(sum);
                       });
                       do_not_optimize(outcome);
                     });
    }
  }
  {  // Non-transactional store through the simulator's publication lock.
    HtmSim sim;
    TmCell cell;
    TmWord v = 0;
    time_primitive(table, opt, "sim_nontx_store", 1, 0, [&] { sim.nontx_store(cell, ++v); });
  }
  {  // Explicit-abort round trip on the simulator.
    HtmSim sim;
    HtmSim::Tx tx(sim);
    TmCell cell;
    time_primitive(table, opt, "sim_abort_roundtrip", 1, 0, [&] {
      const auto outcome = sim.execute(tx, [&](HtmSim::Tx& t) {
        t.store(cell, 1);
        t.abort_explicit();
      });
      do_not_optimize(outcome);
    });
  }
  for (const GvMode mode : {GvMode::kGv1, GvMode::kGv4, GvMode::kGv6}) {
    GlobalVersionClock clock(mode);
    time_primitive(table, opt, (std::string("clock_next_") + to_string(mode)).c_str(), 1, 0,
                   [&] { do_not_optimize(clock.next()); });
  }
  {  // Address -> stripe index mapping.
    StripeTable stripe_table;
    std::uint64_t data[1024];
    std::size_t i = 0;
    time_primitive(table, opt, "stripe_index", 1, 0,
                   [&] { do_not_optimize(stripe_table.index_of(&data[i++ & 1023])); });
  }
  for (const std::size_t n : {16ul, 256ul}) {  // write-set insert + lookup
    WriteSet ws;
    std::vector<TmCell> cells(n);
    time_primitive(table, opt, "write_set_put_find", static_cast<double>(n),
                   static_cast<double>(2 * n), [&] {
                     ws.clear();
                     for (std::size_t i = 0; i < n; ++i) {
                       ws.put(cells[i], i, static_cast<std::uint32_t>(i));
                     }
                     for (std::size_t i = 0; i < n; ++i) do_not_optimize(ws.find(cells[i]));
                   });
  }
  {  // read-set append
    ReadSet rs;
    time_primitive(table, opt, "read_set_add", 256, 256, [&] {
      rs.clear();
      for (std::uint32_t i = 0; i < 256; ++i) rs.add(i, i);
    });
  }
  return rep;
}

}  // namespace rhtm::bench
