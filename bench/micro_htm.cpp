// Microbenchmarks (A5): primitive costs of the simulated and emulated HTM
// substrates, the clock, the stripe mapping and the software-path
// containers. google-benchmark timing.

#include <benchmark/benchmark.h>

#include "core/rhtm.h"
#include "stm/read_set.h"
#include "stm/write_set.h"

namespace rhtm {
namespace {

void BM_SimTxReadOnly(benchmark::State& state) {
  HtmSim sim;
  HtmSim::Tx tx(sim);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<TmCell> cells(n);
  for (auto _ : state) {
    const auto outcome = sim.execute(tx, [&](HtmSim::Tx& t) {
      TmWord sum = 0;
      for (auto& c : cells) sum += t.load(c);
      benchmark::DoNotOptimize(sum);
    });
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimTxReadOnly)->Arg(16)->Arg(256)->Arg(4096);

void BM_SimTxWriteCommit(benchmark::State& state) {
  HtmSim sim;
  HtmSim::Tx tx(sim);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<TmCell> cells(n);
  for (auto _ : state) {
    const auto outcome = sim.execute(tx, [&](HtmSim::Tx& t) {
      for (auto& c : cells) t.store(c, 1);
    });
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimTxWriteCommit)->Arg(8)->Arg(64)->Arg(256);

void BM_EmulTxReadOnly(benchmark::State& state) {
  HtmEmul emul;
  HtmEmul::Tx tx(emul);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<TmCell> cells(n);
  for (auto _ : state) {
    const auto outcome = emul.execute(tx, [&](HtmEmul::Tx& t) {
      TmWord sum = 0;
      for (auto& c : cells) sum += t.load(c);
      benchmark::DoNotOptimize(sum);
    });
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EmulTxReadOnly)->Arg(16)->Arg(256)->Arg(4096);

void BM_SimNontxStore(benchmark::State& state) {
  HtmSim sim;
  TmCell cell;
  TmWord v = 0;
  for (auto _ : state) {
    sim.nontx_store(cell, ++v);
  }
}
BENCHMARK(BM_SimNontxStore);

void BM_SimAbortRoundtrip(benchmark::State& state) {
  HtmSim sim;
  HtmSim::Tx tx(sim);
  TmCell cell;
  for (auto _ : state) {
    const auto outcome = sim.execute(tx, [&](HtmSim::Tx& t) {
      t.store(cell, 1);
      t.abort_explicit();
    });
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_SimAbortRoundtrip);

void BM_ClockNext(benchmark::State& state) {
  GlobalVersionClock clock(static_cast<GvMode>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.next());
  }
}
BENCHMARK(BM_ClockNext)->Arg(0)->Arg(1)->Arg(2);  // GV1, GV4, GV6

void BM_StripeIndex(benchmark::State& state) {
  StripeTable table;
  std::uint64_t data[1024];
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.index_of(&data[i++ & 1023]));
  }
}
BENCHMARK(BM_StripeIndex);

void BM_WriteSetPutFind(benchmark::State& state) {
  WriteSet ws;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<TmCell> cells(n);
  for (auto _ : state) {
    ws.clear();
    for (std::size_t i = 0; i < n; ++i) ws.put(cells[i], i, static_cast<std::uint32_t>(i));
    for (std::size_t i = 0; i < n; ++i) benchmark::DoNotOptimize(ws.find(cells[i]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_WriteSetPutFind)->Arg(16)->Arg(256);

void BM_ReadSetAdd(benchmark::State& state) {
  ReadSet rs;
  for (auto _ : state) {
    rs.clear();
    for (std::uint32_t i = 0; i < 256; ++i) rs.add(i, i);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_ReadSetAdd);

}  // namespace
}  // namespace rhtm

BENCHMARK_MAIN();
