// Figure 3 (middle) — 1K-node Constant Sorted List, 5% mutations, threads
// 1..20. Series: HTM, Standard HyTM, TL2, RH1 Fast, RH1 Mixed 10/100.
//
// The heavy-contention case: long linear scans share the list prefix, abort
// ratios reach ~50% at 20 threads. HTM is ~4× TL2; Standard HyTM collapses
// to ~1.5×; RH1 Fast preserves the speedup; the Mixed variants degrade at
// high thread counts as software-mode retries pile up.

#include "bench_common.h"
#include "workloads/constant_sortedlist.h"

namespace rhtm::bench {
namespace {

template <class H>
void run(const Options& opt) {
  const std::size_t elems = 1'000;
  ConstantSortedList list(elems);
  constexpr unsigned kWritePercent = 5;

  TmUniverse<H> universe;
  Table table("1K Nodes Constant Sorted List, 5% mutations (substrate=" +
                  std::string(opt.substrate_name()) + ") - Figure 3 middle",
              opt.threads);

  auto op = [&](auto& tm, auto& ctx, Xoshiro256& rng, unsigned) {
    const std::uint64_t key = rng.below(2 * elems);
    if (rng.percent_chance(kWritePercent)) {
      tm.atomically(ctx, [&](auto& tx) { (void)list.update(tx, key, rng.next_u64()); });
    } else {
      TmWord sink = 0;
      tm.atomically(ctx, [&](auto& tx) { (void)list.search(tx, key, &sink); });
      do_not_optimize(sink);
    }
  };

  run_figure(universe, table,
             {Series::kHtm, Series::kStdHytm, Series::kTl2, Series::kRh1Fast, Series::kRh1Mix10,
              Series::kRh1Mix100},
             opt, op);
  table.print();
}

}  // namespace
}  // namespace rhtm::bench

int main(int argc, char** argv) {
  const auto opt = rhtm::bench::Options::parse(argc, argv);
  if (opt.use_sim) {
    rhtm::bench::run<rhtm::HtmSim>(opt);
  } else {
    rhtm::bench::run<rhtm::HtmEmul>(opt);
  }
  return 0;
}
