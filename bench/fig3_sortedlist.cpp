// Figure 3 (middle) — 1K-node Constant Sorted List, 5% mutations, threads
// 1..20. Series: HTM, Standard HyTM, TL2, RH1 Fast, RH1 Mixed 10/100.
//
// The heavy-contention case: long linear scans share the list prefix, abort
// ratios reach ~50% at 20 threads. HTM is ~4× TL2; Standard HyTM collapses
// to ~1.5×; RH1 Fast preserves the speedup; the Mixed variants degrade at
// high thread counts as software-mode retries pile up.

#include "registry.h"
#include "workloads/constant_sortedlist.h"

namespace rhtm::bench {
namespace {

template <class H>
void run_fig3_list(const Options& opt, report::BenchReport& rep) {
  const std::size_t elems = 1'000;
  ConstantSortedList list(elems);
  constexpr unsigned kWritePercent = 5;

  TmUniverse<H> universe(universe_config(opt));
  report::TableData& table = rep.add_table(
      "1K Nodes Constant Sorted List, 5% mutations (substrate=" +
      std::string(opt.substrate_name()) + ") - Figure 3 middle");

  auto op = [&](auto& tm, auto& ctx, Xoshiro256& rng, unsigned) {
    const std::uint64_t key = rng.below(2 * elems);
    if (rng.percent_chance(kWritePercent)) {
      tm.atomically(ctx, [&](auto& tx) { (void)list.update(tx, key, rng.next_u64()); });
    } else {
      TmWord sink = 0;
      tm.atomically(ctx, [&](auto& tx) { (void)list.search(tx, key, &sink); });
      do_not_optimize(sink);
    }
  };

  run_figure(universe, table,
             {Series::kHtm, Series::kStdHytm, Series::kTl2, Series::kRh1Fast,
              Series::kRh1Mix10, Series::kRh1Mix100},
             opt, op);
}

}  // namespace

RHTM_SCENARIO(fig3_sortedlist, "Fig. 3 (middle)",
              "1K-node constant sorted list, 5% mutations: the heavy-contention case") {
  report::BenchReport rep;
  rep.substrate = opt.substrate_name();
  rep.set_meta("workload", "constant_sortedlist/1000");
  rep.set_meta("write_percent", "5");
  dispatch_substrate(opt, [&]<class H>(SubstrateTag<H>) { run_fig3_list<H>(opt, rep); });
  return rep;
}

}  // namespace rhtm::bench
