// Dynamic-workload scenario — a phased execution over the mutating RB-tree:
// the operation mix and transaction size switch on a timed cadence WITHIN
// one run (read-mostly -> write-burst -> long-transaction snapshot), with
// per-phase rows in the report. This is the shape that stresses protocols
// which tune themselves to the recent workload (HybridTm's retry policy,
// PhasedTm's global mode) and whose snapshot phase pushes read sets past
// the hardware budget — the capacity escalation chain shows up in the
// per-phase commits_* metrics, driven by the workload itself.
//
// Injection note: hardware-mode series replay ONE abort ratio calibrated
// from a TL2 run of the whole schedule (a per-phase injection would need a
// phase-aware injector; the per-phase TL2 rows report what each phase's
// genuine software contention was).

#include <algorithm>
#include <memory>

#include "registry.h"
#include "workloads/mutating_rbtree.h"
#include "workloads/phase_schedule.h"

namespace rhtm::bench {
namespace {

template <class H>
void run_phased_scenario(const Options& opt, report::BenchReport& rep, std::size_t domain,
                         std::size_t snapshot_nodes) {
  const PhaseSchedule schedule({
      {"read_mostly", 0.4, 5, 0, 0},
      {"write_burst", 0.3, 80, 0, 0},
      {"snapshot", 0.3, 5, 30, snapshot_nodes},
  });
  const unsigned threads = *std::max_element(opt.threads.begin(), opt.threads.end());
  const double total_seconds = opt.seconds * static_cast<double>(schedule.size());

  auto tree = std::make_unique<MutatingRbTree>(domain);
  populate_even_keys(*tree);

  auto op = [&](auto& tm, auto& ctx, Xoshiro256& rng, unsigned, std::size_t,
                const Phase& phase) {
    if (phase.long_op_percent != 0 && rng.percent_chance(phase.long_op_percent)) {
      std::uint64_t checksum = 0;
      tm.atomically(ctx, [&](auto& tx) {
        checksum = 0;
        (void)tree->scan_inorder(tx, phase.long_op_scale, &checksum);
      });
      do_not_optimize(checksum);
      return;
    }
    const std::uint64_t key = rng.below(domain);
    if (rng.percent_chance(phase.write_percent)) {
      if (rng.percent_chance(50)) {
        tm.atomically(ctx, [&](auto& tx) { (void)tree->insert(tx, key, rng.next_u64()); });
      } else {
        tm.atomically(ctx, [&](auto& tx) { (void)tree->erase(tx, key); });
      }
    } else {
      TmWord sink = 0;
      tm.atomically(ctx, [&](auto& tx) { (void)tree->lookup(tx, key, &sink); });
      do_not_optimize(sink);
    }
  };

  TmUniverse<H> universe(universe_config(opt));

  // Whole-schedule TL2 calibration run (it is also the TL2 series' data).
  Tl2<H> tl2(universe);
  const PhasedResult tl2_result = run_phased(tl2, threads, total_seconds, schedule, op, opt.pin);
  const std::uint32_t inject_bp =
      AbortInjector::from_ratio(tl2_result.total().abort_ratio()).rate_bp();

  // Primary metrics mirror total_ops under scenario-specific names, which
  // keeps BOTH tables out of the CI regression gate (it only gates
  // total_ops/ops_per_sec tables): a phased run's series totals depend on
  // how many ms-scale snapshot transactions each phase window happened to
  // fit, so the gate's ratios-cancel-runner-noise assumption does not hold
  // at smoke timescales (observed >3x run-to-run ratio swings). The phased
  // reports still land in the trajectory artifact for --full diffing.
  report::TableData& per_phase = rep.add_table(
      "Phased run (read_mostly -> write_burst -> snapshot) at " + std::to_string(threads) +
      " threads, per-phase rows (substrate=" + std::string(opt.substrate_name()) + ")",
      report::TableStyle::kSweep, "phase", "phase_total_ops");
  report::TableData& totals = rep.add_table(
      "Phased run, whole-schedule totals (same runs as the per-phase table)",
      report::TableStyle::kSweep, "threads", "schedule_total_ops");

  for (const Series s : all_series()) {
    const PhasedResult result =
        s == Series::kTl2
            ? tl2_result
            : with_series_tm(universe, s, inject_bp, [&](auto& tm) {
                return run_phased(tm, threads, total_seconds, schedule, op, opt.pin);
              });
    report::SeriesData& phase_rows = per_phase.add_series(to_string(s));
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      report::Point& p = phase_rows.add_point(static_cast<double>(i));
      fill_point(p, result.per_phase[i]);
      p.set("phase_total_ops", static_cast<double>(result.per_phase[i].total_ops));
      p.set("write_percent", schedule.phase(i).write_percent);
      p.set("long_op_percent", schedule.phase(i).long_op_percent);
      p.set("phase_seconds", result.per_phase[i].seconds);
    }
    report::Point& total_point = totals.add_series(to_string(s)).add_point(threads);
    const ThroughputResult whole = result.total();
    fill_point(total_point, whole);
    total_point.set("schedule_total_ops", static_cast<double>(whole.total_ops));
  }

  for (std::size_t i = 0; i < schedule.size(); ++i) {
    rep.set_meta("phase" + std::to_string(i),
                 std::string(schedule.phase(i).name) +
                     "/write=" + std::to_string(schedule.phase(i).write_percent) +
                     "/long_op=" + std::to_string(schedule.phase(i).long_op_percent) + "%x" +
                     std::to_string(schedule.phase(i).long_op_scale));
  }
}

}  // namespace

RHTM_SCENARIO(phased, "extension",
              "Phased mix switch within one run (read-mostly/write-burst/snapshot), "
              "per-phase rows, every protocol") {
  report::BenchReport rep;
  rep.substrate = opt.substrate_name();
  const std::size_t domain = opt.full ? 32768 : 8192;
  // The snapshot phase's long transaction: an in-order scan of the whole
  // live tree (~domain/2 nodes, ~4 TVar reads per node), which overflows
  // the default 8192-line hardware budget — so the capacity escalation
  // chain (fast -> RH1-slow, HtmOnly/StdHyTM's lock fallback) is driven by
  // the workload itself, phase 2's commits_* rows show it per protocol.
  const std::size_t snapshot_nodes = opt.full ? 16384 : 4096;
  rep.set_meta("workload", "mutating_rbtree/domain=" + std::to_string(domain));
  rep.set_meta("snapshot_nodes", std::to_string(snapshot_nodes));
  dispatch_substrate(opt, [&]<class H>(SubstrateTag<H>) {
    run_phased_scenario<H>(opt, rep, domain, snapshot_nodes);
  });
  return rep;
}

}  // namespace rhtm::bench
