// run_all — the unified driver over the scenario registry.
//
//   run_all --list                         enumerate registered scenarios
//   run_all                                run every scenario
//   run_all --scenario=fig1,skiplist       run scenarios whose name contains
//                                          "fig1" or "skiplist"
//
// Every run prints the scenario's paper-style tables and writes a
// machine-readable BENCH_<scenario>.json (see docs/BENCHMARKS.md for the
// schema and diffing recipes) built from the same stored points, unless
// --no-json is given.
//
// This file also provides main() for the per-figure binaries: each legacy
// target (fig1_rbtree, ...) links run_all.cpp plus its own scenario file,
// so it is the same driver restricted to the scenarios linked in.

#include <chrono>
#include <memory>
#include <string_view>

#include "registry.h"

namespace rhtm::bench {

namespace {

bool name_matches(const Options& opt, const char* name) {
  if (opt.scenario_filter.empty()) return true;
  for (const std::string& token : opt.scenario_filter) {
    if (std::string_view(name).find(token) != std::string_view::npos) return true;
  }
  return false;
}

// Flight-recorder state for the anomaly hook (trace::set_anomaly_hook takes
// a plain function pointer, so the tracer and path live in TU statics). The
// hook best-effort dumps whatever the rings hold at the moment of the
// anomaly — it may run on the way into _exit(), where nothing else will.
trace::Tracer* g_run_tracer = nullptr;
std::string g_run_trace_path;

void dump_trace_on_anomaly(const char* reason) {
  if (g_run_tracer == nullptr || g_run_trace_path.empty()) return;
  std::fprintf(stderr, "# trace: anomaly '%s' — dumping flight recorder to %s\n",
               reason, g_run_trace_path.c_str());
  (void)trace::write_chrome_json(*g_run_tracer, g_run_trace_path);
}

}  // namespace

int registry_main(int argc, char** argv) {
  Options opt = Options::parse(argc, argv);
  const std::vector<Scenario> scenarios = Registry::instance().sorted();

  // The run-wide flight recorder: one tracer across every selected scenario
  // (rings accumulate per ThreadCtx; the export is one Perfetto document).
  std::unique_ptr<trace::Tracer> tracer;
  if (!opt.trace_path.empty()) {
    trace::TracerConfig tcfg;
    tcfg.ring_capacity = opt.trace_cap;
    tracer = std::make_unique<trace::Tracer>(tcfg);
    opt.tracer = tracer.get();
    g_run_tracer = tracer.get();
    g_run_trace_path = opt.trace_path;
    trace::set_anomaly_hook(&dump_trace_on_anomaly);
  }

  if (opt.list) {
    std::printf("%-20s %-14s %s\n", "scenario", "paper", "summary");
    for (const Scenario& s : scenarios) {
      std::printf("%-20s %-14s %s\n", s.name, s.paper_ref, s.summary);
    }
    std::printf("# %zu scenarios registered\n", scenarios.size());
    return 0;
  }

  // One upfront diagnostic for a substrate this host cannot run (the
  // per-scenario dispatch would catch it too, but only mid-run). --list
  // stays usable everywhere: it never instantiates a substrate.
  require_substrate_available(opt);

  std::vector<const Scenario*> selected;
  for (const Scenario& s : scenarios) {
    if (name_matches(opt, s.name)) selected.push_back(&s);
  }
  for (const std::string& token : opt.scenario_filter) {
    bool hit = false;
    for (const Scenario* s : selected) {
      if (std::string_view(s->name).find(token) != std::string_view::npos) hit = true;
    }
    if (!hit) {
      std::fprintf(stderr, "%s: no scenario matches '%s'; try --list\n", argv[0],
                   token.c_str());
      return 2;
    }
  }

  bool first = true;
  for (const Scenario* s : selected) {
    if (!first) std::printf("\n");
    first = false;
    std::printf("## %s (%s)\n", s->name, s->paper_ref);
    const auto t0 = std::chrono::steady_clock::now();
    // Fresh sampler per scenario, installed for the duration of its run so
    // every driver's workers (workloads/driver.h) report into it.
    std::unique_ptr<timeseries::MetricsSampler> sampler;
    if (opt.timeline_interval > 0) {
      sampler = std::make_unique<timeseries::MetricsSampler>(opt.timeline_interval);
      timeseries::g_sampler.store(sampler.get(), std::memory_order_release);
      sampler->start();
    }
    report::BenchReport rep = s->run(opt);
    if (sampler != nullptr) {
      timeseries::g_sampler.store(nullptr, std::memory_order_release);
      sampler->stop();
      rep.timeline = sampler->timeline_points();
    }
    rep.scenario = s->name;
    rep.seconds = opt.seconds;
    stamp_provenance(rep);                    // what built/ran this (artifact diffs)
    rep.set_meta("pin", to_string(opt.pin));  // affinity is part of a run's geometry
    rep.set_meta("cm", opt.cm_name());        // so is the contention policy
    rep.set_meta("numa", opt.numa_name());    // and the NUMA sharding mode
    if (opt.substrate == SubstrateKind::kRtm) {
      // Whether the PMU counters in this report are hardware-measured, or
      // absent and why (so a diff never mistakes "unavailable" for "zero").
      pmu::RtmCounters probe;
      rep.set_meta("pmu", probe.available()
                              ? "available"
                              : std::string("unavailable: ") + probe.reason());
    }
    rep.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    rep.print();
    if (opt.write_json) {
      const std::string path = rep.write_json(opt.json_dir);
      if (path.empty()) {
        std::fprintf(stderr, "%s: cannot write report under '%s'\n", argv[0],
                     opt.json_dir.c_str());
        return 1;
      }
      std::printf("# wrote %s\n", path.c_str());
    }
  }

  if (tracer != nullptr) {
    if (!trace::write_chrome_json(*tracer, opt.trace_path)) {
      std::fprintf(stderr, "%s: cannot write trace to '%s'\n", argv[0],
                   opt.trace_path.c_str());
      return 1;
    }
    std::printf("# wrote trace %s (%llu events, %llu dropped, %zu rings)\n",
                opt.trace_path.c_str(),
                static_cast<unsigned long long>(tracer->total_events()),
                static_cast<unsigned long long>(tracer->total_dropped()),
                tracer->ring_count());
  }
  return 0;
}

}  // namespace rhtm::bench

int main(int argc, char** argv) { return rhtm::bench::registry_main(argc, argv); }
