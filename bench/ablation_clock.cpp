// Ablation A1 — global-version-clock policy (paper §2.2).
//
// GV6 never writes the clock on GVNext(): fast-path hardware transactions
// that speculate on the clock stay quiet. GV1 fetch-adds it on every commit,
// so every overlapping pair of hardware transactions conflicts on the clock
// line; GV4 CASes once per racing batch. This bench runs the same RH1-Mixed
// workload under all three policies on the simulated substrate and reports
// throughput and the abort breakdown.

#include "bench_common.h"
#include "workloads/random_array.h"

namespace rhtm::bench {
namespace {

void run(const Options& opt) {
  RandomArray array(64 * 1024);
  const unsigned threads = 4;

  std::printf("# Ablation A1 - clock policy (RH1 Mixed 100, random array, %u threads, sim)\n",
              threads);
  std::printf("%-6s %14s %12s %14s %14s\n", "mode", "total_ops", "abort_ratio", "htm_conflicts",
              "stm_validation");

  for (const GvMode mode : {GvMode::kGv1, GvMode::kGv4, GvMode::kGv6}) {
    UniverseConfig ucfg;
    ucfg.gv_mode = mode;
    TmUniverse<HtmSim> universe(ucfg);
    SimHybridTm::Config cfg;
    cfg.slow_retry_percent = 100;
    cfg.inject_abort_bp = 500;  // a trickle of slow-path traffic
    SimHybridTm tm(universe, cfg);

    const ThroughputResult r =
        run_throughput(tm, threads, opt.seconds * 4,
                       [&](auto& m, auto& ctx, Xoshiro256& rng, unsigned) {
                         m.atomically(ctx, [&](auto& tx) {
                           do_not_optimize(array.op(tx, rng, 64, 20));
                         });
                       });
    std::printf("%-6s %14llu %12.3f %14llu %14llu\n", to_string(mode),
                static_cast<unsigned long long>(r.total_ops), r.abort_ratio(),
                static_cast<unsigned long long>(
                    r.stats.aborts_by_cause[static_cast<std::size_t>(AbortCause::kHtmConflict)]),
                static_cast<unsigned long long>(
                    r.stats.aborts_by_cause[static_cast<std::size_t>(AbortCause::kStmValidation)]));
  }
}

}  // namespace
}  // namespace rhtm::bench

int main(int argc, char** argv) {
  rhtm::bench::run(rhtm::bench::Options::parse(argc, argv));
  return 0;
}
