// Ablation A1 — global-version-clock policy (paper §2.2).
//
// GV6 never writes the clock on GVNext(): fast-path hardware transactions
// that speculate on the clock stay quiet. GV1 fetch-adds it on every commit,
// so every overlapping pair of hardware transactions conflicts on the clock
// line; GV4 CASes once per racing batch. This bench runs the same RH1-Mixed
// workload under all three policies on the simulated substrate and reports
// throughput and the abort breakdown.

#include "registry.h"
#include "workloads/random_array.h"

namespace rhtm::bench {

RHTM_SCENARIO(ablation_clock, "§2.2 (A1)",
              "GV1 / GV4 / GV6 clock policies: throughput + abort breakdown") {
  RandomArray array(64 * 1024);
  const unsigned threads = 4;

  report::BenchReport rep;
  rep.substrate = SubstrateTraits<HtmSim>::kName;
  rep.set_meta("workload", "random_array/65536 len=64 write=20%");
  report::TableData& table = rep.add_table(
      "Ablation A1 - clock policy (RH1 Mixed 100, random array, " +
          std::to_string(threads) + " threads, sim)",
      report::TableStyle::kWide);

  for (const GvMode mode : {GvMode::kGv1, GvMode::kGv4, GvMode::kGv6}) {
    UniverseConfig ucfg;
    ucfg.gv_mode = mode;
    TmUniverse<HtmSim> universe(ucfg);
    SimHybridTm::Config cfg;
    cfg.slow_retry_percent = 100;
    cfg.inject_abort_bp = 500;  // a trickle of slow-path traffic
    SimHybridTm tm(universe, cfg);

    const ThroughputResult r =
        run_throughput(tm, threads, opt.seconds * 4,
                       [&](auto& m, auto& ctx, Xoshiro256& rng, unsigned) {
                         m.atomically(ctx, [&](auto& tx) {
                           do_not_optimize(array.op(tx, rng, 64, 20));
                         });
                       });
    report::Point& p = table.add_series(to_string(mode)).add_point(threads);
    p.set("total_ops", static_cast<double>(r.total_ops));
    p.set("abort_ratio", r.abort_ratio());
    p.set("htm_conflicts",
          static_cast<double>(
              r.stats.aborts_by_cause[static_cast<std::size_t>(AbortCause::kHtmConflict)]));
    p.set("stm_validation",
          static_cast<double>(
              r.stats.aborts_by_cause[static_cast<std::size_t>(AbortCause::kStmValidation)]));
  }
  return rep;
}

}  // namespace rhtm::bench
