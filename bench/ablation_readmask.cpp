// Ablation A4 — RH2 visible-read publication: the paper argues for
// fetch-and-add over a CAS loop (§4.1). Forced-RH2 commits over a shared
// array, both mask RMW flavours, simulated substrate.

#include "bench_common.h"
#include "workloads/random_array.h"

namespace rhtm::bench {
namespace {

void run(const Options& opt) {
  std::printf("# Ablation A4 - RH2 read-mask publication: fetch-add vs CAS loop (sim)\n");
  std::printf("%-10s %-8s %14s %12s\n", "mask_rmw", "threads", "total_ops", "abort_ratio");

  for (const MaskRmw mode : {MaskRmw::kFetchAdd, MaskRmw::kCasLoop}) {
    for (const unsigned threads : {1u, 4u, 8u}) {
      UniverseConfig ucfg;
      ucfg.stripe.mask_rmw = mode;
      TmUniverse<HtmSim> universe(ucfg);
      RandomArray array(16 * 1024);
      SimHybridTm::Config cfg;
      cfg.force_rh2 = true;
      cfg.inject_abort_bp = 10000;  // every op through the RH2 slow commit
      SimHybridTm tm(universe, cfg);

      const ThroughputResult r =
          run_throughput(tm, threads, opt.seconds * 2,
                         [&](auto& m, auto& ctx, Xoshiro256& rng, unsigned) {
                           m.atomically(ctx, [&](auto& tx) {
                             do_not_optimize(array.op(tx, rng, 32, 25));
                           });
                         });
      std::printf("%-10s %-8u %14llu %12.3f\n", to_string(mode), threads,
                  static_cast<unsigned long long>(r.total_ops), r.abort_ratio());
    }
  }
}

}  // namespace
}  // namespace rhtm::bench

int main(int argc, char** argv) {
  rhtm::bench::run(rhtm::bench::Options::parse(argc, argv));
  return 0;
}
