// Ablation A4 — RH2 visible-read publication: the paper argues for
// fetch-and-add over a CAS loop (§4.1). Forced-RH2 commits over a shared
// array, both mask RMW flavours, simulated substrate.

#include "registry.h"
#include "workloads/random_array.h"

namespace rhtm::bench {

RHTM_SCENARIO(ablation_readmask, "§4.1 (A4)",
              "RH2 visible-read publication: fetch-add vs CAS loop") {
  report::BenchReport rep;
  rep.substrate = SubstrateTraits<HtmSim>::kName;
  rep.set_meta("workload", "random_array/16384 len=32 write=25%, forced RH2");
  report::TableData& table = rep.add_table(
      "Ablation A4 - RH2 read-mask publication: fetch-add vs CAS loop (sim)");

  for (const MaskRmw mode : {MaskRmw::kFetchAdd, MaskRmw::kCasLoop}) {
    report::SeriesData& series = table.add_series(to_string(mode));
    for (const unsigned threads : {1u, 4u, 8u}) {
      UniverseConfig ucfg;
      ucfg.stripe.mask_rmw = mode;
      TmUniverse<HtmSim> universe(ucfg);
      RandomArray array(16 * 1024);
      SimHybridTm::Config cfg;
      cfg.force_rh2 = true;
      cfg.inject_abort_bp = 10000;  // every op through the RH2 slow commit
      SimHybridTm tm(universe, cfg);

      const ThroughputResult r =
          run_throughput(tm, threads, opt.seconds * 2,
                         [&](auto& m, auto& ctx, Xoshiro256& rng, unsigned) {
                           m.atomically(ctx, [&](auto& tx) {
                             do_not_optimize(array.op(tx, rng, 32, 25));
                           });
                         });
      fill_point(series.add_point(threads), r);
    }
  }
  return rep;
}

}  // namespace rhtm::bench
