#pragma once

// The unified scenario registry. Every (workload, protocol-set, knobs)
// scenario self-registers at static-init time via RHTM_SCENARIO; the
// driver in bench/run_all.cpp enumerates (`--list`), filters
// (`--scenario=fig1,skiplist`) and runs them, printing each scenario's
// paper-style tables and writing its BENCH_<scenario>.json report.
//
// A scenario is a function from Options to a report::BenchReport. It must
// fill the report's tables (and, ideally, substrate + meta); the driver
// stamps the scenario name, the per-point seconds and the wall clock.
//
// Linking decides the scenario set: bench/run_all.cpp provides main(), so
// an executable built from it plus any subset of bench/scenario_*.cpp files
// is a driver over exactly that subset — `run_all` links all of them, each
// legacy binary (fig1_rbtree, ...) links just its own.

#include <algorithm>
#include <vector>

#include "bench_common.h"

namespace rhtm::bench {

struct Scenario {
  const char* name;       ///< registry key; also the BENCH_<name>.json stem
  const char* paper_ref;  ///< figure / section mapping ("Fig. 1", "§2.2 (A1)", "—")
  const char* summary;    ///< one line for --list
  report::BenchReport (*run)(const Options&);
};

class Registry {
 public:
  static Registry& instance() {
    static Registry registry;
    return registry;
  }

  void add(const Scenario& s) { scenarios_.push_back(s); }

  /// Registered scenarios in name order (registration order is link order).
  [[nodiscard]] std::vector<Scenario> sorted() const {
    std::vector<Scenario> v = scenarios_;
    std::sort(v.begin(), v.end(), [](const Scenario& a, const Scenario& b) {
      return std::strcmp(a.name, b.name) < 0;
    });
    return v;
  }

 private:
  std::vector<Scenario> scenarios_;
};

struct ScenarioRegistrar {
  explicit ScenarioRegistrar(const Scenario& s) { Registry::instance().add(s); }
};

/// Defines and registers a scenario. Use at namespace scope inside
/// rhtm::bench; the function body receives `const Options& opt` and must
/// return the filled report::BenchReport.
#define RHTM_SCENARIO(name_, paper_ref_, summary_)                                  \
  static ::rhtm::report::BenchReport rhtm_scenario_##name_(const Options&);         \
  static const ::rhtm::bench::ScenarioRegistrar rhtm_scenario_registrar_##name_{    \
      ::rhtm::bench::Scenario{#name_, paper_ref_, summary_, &rhtm_scenario_##name_}}; \
  static ::rhtm::report::BenchReport rhtm_scenario_##name_(const Options& opt)

/// The driver entry point (defined in bench/run_all.cpp).
int registry_main(int argc, char** argv);

}  // namespace rhtm::bench
