// Contention scenario — adaptive contention management (core/contention.h)
// against the paper's fixed coins/budgets, on the workloads where the policy
// choice matters:
//
//   (a) contended:   Zipfian theta=0.99 over a small array — a few hot
//                    stripes, so hardware retries mostly burn work and the
//                    adaptive manager should escalate to software early;
//   (b) uncontended: uniform access over a large array — hardware wins, and
//                    the adaptive manager must stay out of the way (< 5%
//                    regression is the acceptance bar);
//   (c) capacity:    write sets sized past the substrate's write capacity,
//                    so attribution (capacity vs conflict) decides whether
//                    backoff helps at all.
//
// Series are named "<protocol>/<policy>" so the regression gate can compare
// e.g. RH1-Mix100/adaptive against RH1-Mix100/fixed directly. TL2 rides
// along as the policy-independent software reference, and TATAS-Elide is
// the lock-elision floor: a protocol x policy whose throughput falls below
// the elided global lock is not earning its speculation.
//
// `wasted_speculation_pct` (bench_common.h) is the headline cost metric:
// hardware-cause aborts per completed transaction.

#include "registry.h"
#include "workloads/random_array.h"
#include "workloads/zipf.h"

namespace rhtm::bench {
namespace {

constexpr std::size_t kHotWords = 1024;         // power of two: see scatter()
constexpr std::size_t kColdWords = 128 * 1024;  // uncontended working set

/// Bijectively scatters Zipfian ranks across the (power-of-two sized) hot
/// array so the skew measures stripe contention, not adjacent-rank sharing.
constexpr std::size_t scatter(std::size_t rank) {
  return (rank * 0x9e3779b97f4a7c15ull) & (kHotWords - 1);
}

struct PolicySeries {
  Series series;
  CmPolicy policy;
};

/// The protocol x policy matrix. RH1-Mix100 carries the acceptance gate
/// (adaptive vs fixed); Hybrid NOrec shows the policy on a coarse-conflict
/// hybrid; TATAS-Elide is the elided-lock baseline.
const PolicySeries kMatrix[] = {
    {Series::kRh1Mix100, CmPolicy::kFixed},
    {Series::kRh1Mix100, CmPolicy::kAdaptive},
    {Series::kRh1Mix100, CmPolicy::kAggressive},
    {Series::kHybridNorec, CmPolicy::kFixed},
    {Series::kHybridNorec, CmPolicy::kAdaptive},
    {Series::kTatas, CmPolicy::kFixed},
    {Series::kTatas, CmPolicy::kAdaptive},
};
constexpr std::size_t kMatrixSize = sizeof(kMatrix) / sizeof(kMatrix[0]);

[[nodiscard]] std::string series_name(const PolicySeries& ps) {
  return std::string(to_string(ps.series)) + "/" + to_string(ps.policy);
}

/// Companion view of a throughput table with wasted_speculation_pct as the
/// PRIMARY metric: same series, same points — this is what makes wasted
/// work visible to the regression gate (scripts/check_regression.py gates a
/// table by its primary metric, lower-is-better for this one).
void add_wasted_view(report::BenchReport& rep, const report::TableData& src) {
  report::TableData& t =
      rep.add_table("Wasted speculation pct - " + src.title, report::TableStyle::kSweep,
                    src.x_name, "wasted_speculation_pct");
  t.series = src.series;
}

/// One table: every matrix entry (fresh universe per point — the policy is
/// universe-wide config) plus the TL2 reference, swept over the thread list.
/// With `inject` the hardware series get the paper's §3.1 methodology: the
/// TL2 abort ratio of the same (workload, thread count), calibrated per
/// point and injected as hardware-abort pressure — this is what makes the
/// contended table CI-reproducible (RNG-driven aborts, not timing-lottery
/// conflicts on a loaded runner).
template <class H, class OpFactory>
void run_matrix(report::TableData& table, const Options& opt, const UniverseConfig& base,
                bool inject, OpFactory&& op) {
  const std::size_t first = table.series.size();
  for (const PolicySeries& ps : kMatrix) table.add_series(series_name(ps));
  const std::size_t tl2_idx = table.series.size();
  table.add_series("TL2");

  for (const unsigned threads : opt.threads) {
    std::uint32_t inject_bp = 0;
    {
      TmUniverse<H> u(base);
      const auto [calibrated_bp, tl2_result] =
          calibrate_tl2(u, threads, opt.calib_seconds, op, opt.pin);
      if (inject) inject_bp = calibrated_bp;
      fill_point(table.series[tl2_idx].add_point(threads), tl2_result);
    }
    for (std::size_t i = 0; i < kMatrixSize; ++i) {
      UniverseConfig ucfg = base;
      ucfg.cm.policy = kMatrix[i].policy;
      TmUniverse<H> u(ucfg);
      report::Point& p = table.series[first + i].add_point(threads);
      const pmu::RtmTotalsSnapshot pmu0 = pmu_snapshot(u);
      fill_point(p, run_series_point(u, kMatrix[i].series, threads, opt.seconds,
                                     inject_bp, op, opt.pin));
      add_pmu_metrics(p, u, pmu0);
    }
  }
}

/// The pressure sweep: same matrix, fixed thread count, x = injected abort
/// pressure (basis points). At the high end every hardware attempt dies, so
/// the policies separate sharply and deterministically: fixed Mixed-100
/// wastes one full speculative execution per transaction (50% of attempts),
/// the adaptive manager's software mode cuts that to the probe rate
/// (~1/probe_period), and aggressive shows the greedy end burning its whole
/// attempt ceiling.
template <class H, class OpFactory>
void run_pressure_matrix(report::TableData& table, const Options& opt,
                         const UniverseConfig& base, unsigned threads, OpFactory&& op) {
  const std::size_t first = table.series.size();
  for (const PolicySeries& ps : kMatrix) table.add_series(series_name(ps));
  const std::size_t tl2_idx = table.series.size();
  table.add_series("TL2");

  for (const std::uint32_t inject_bp : {1000u, 2500u, 5000u, 10000u}) {
    for (std::size_t i = 0; i < kMatrixSize; ++i) {
      UniverseConfig ucfg = base;
      ucfg.cm.policy = kMatrix[i].policy;
      TmUniverse<H> u(ucfg);
      fill_point(table.series[first + i].add_point(inject_bp),
                 run_series_point(u, kMatrix[i].series, threads, opt.seconds, inject_bp,
                                  op, opt.pin));
    }
    TmUniverse<H> u(base);
    fill_point(table.series[tl2_idx].add_point(inject_bp),
               run_series_point(u, Series::kTl2, threads, opt.seconds, 0, op, opt.pin));
  }
}

template <class H>
void run_contention(const Options& opt, report::BenchReport& rep) {
  const std::string sub = "(substrate=" + std::string(opt.substrate_name()) + ")";

  {  // (a) contended: hot Zipfian mix, half the accesses are writes.
    RandomArray hot(kHotWords);
    const ZipfianGenerator zipf(kHotWords, 0.99);
    auto op = [&](auto& tm, auto& ctx, Xoshiro256& rng, unsigned) {
      tm.atomically(ctx, [&](auto& tx) {
        do_not_optimize(hot.op_indexed(tx, rng, /*len=*/16, /*write_percent=*/50,
                                       [&](Xoshiro256& r) { return scatter(zipf.next(r)); }));
      });
    };
    report::TableData& t = rep.add_table(
        "Contended: 1K Zipfian theta=0.99, len=16, 50% writes, calibrated injection " + sub);
    run_matrix<H>(t, opt, universe_config(opt), /*inject=*/true, op);
    add_wasted_view(rep, t);

    const unsigned pressure_threads = opt.threads.back();
    report::TableData& pt = rep.add_table(
        "Contended Zipfian under abort pressure: " + std::to_string(pressure_threads) +
            " threads, x=inject_bp " + sub,
        report::TableStyle::kSweep, "inject_bp");
    run_pressure_matrix<H>(pt, opt, universe_config(opt), pressure_threads, op);
    add_wasted_view(rep, pt);
  }

  {  // (b) uncontended: sparse uniform mix — the policy must not get in the way.
    RandomArray cold(kColdWords);
    auto op = [&](auto& tm, auto& ctx, Xoshiro256& rng, unsigned) {
      tm.atomically(ctx, [&](auto& tx) {
        do_not_optimize(cold.op(tx, rng, /*len=*/8, /*write_percent=*/20));
      });
    };
    run_matrix<H>(rep.add_table("Uncontended: 128K uniform, len=8, 20% writes " + sub), opt,
                  universe_config(opt), /*inject=*/false, op);
  }

  {  // (c) capacity-stressed: write sets sized past the substrate's write
     // capacity, so most hardware attempts die of kHtmCapacity and the
     // cause-attributed give-up (no pointless backoff) is what's measured.
    UniverseConfig ucfg = universe_config(opt);
    ucfg.htm.max_write_set = 16;  // sim honours this; rtm has its real L1 limit
    RandomArray cold(kColdWords);
    auto op = [&](auto& tm, auto& ctx, Xoshiro256& rng, unsigned) {
      tm.atomically(ctx, [&](auto& tx) {
        do_not_optimize(cold.op(tx, rng, /*len=*/40, /*write_percent=*/100));
      });
    };
    report::TableData& t = rep.add_table(
        "Capacity-stressed: len=40 all-writes, max_write_set=16 " + sub);
    run_matrix<H>(t, opt, ucfg, /*inject=*/false, op);
    add_wasted_view(rep, t);
  }
}

}  // namespace

RHTM_SCENARIO(contention, "extension §2.3",
              "Fixed vs adaptive vs aggressive contention management: contended, "
              "uncontended, and capacity-stressed sweeps") {
  report::BenchReport rep;
  rep.substrate = opt.substrate_name();
  rep.set_meta("workload", "random_array hot-zipfian / cold-uniform / capacity");
  rep.set_meta("gate", "RH1-Mix100/adaptive vs RH1-Mix100/fixed; lower wasted_speculation_pct");
  dispatch_substrate(opt, [&]<class H>(SubstrateTag<H>) { run_contention<H>(opt, rep); });
  return rep;
}

}  // namespace rhtm::bench
