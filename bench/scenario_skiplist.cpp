// Extension scenario — constant transactional skiplist, 20% mutations,
// swept through EVERY protocol (the four paper series, the RH1 mixed modes,
// and both extension hybrids). The skiplist's ~2·log2 n probed keys per
// operation sit between the hash table's 2-5 reads and the sorted list's
// O(n) scans, filling the read-set-size gap in the workload matrix — the
// axis Alistarh et al. and Brown & Ravi argue HyTM results are most
// sensitive to.

#include "registry.h"
#include "workloads/constant_skiplist.h"

namespace rhtm::bench {
namespace {

template <class H>
void run_skiplist(const Options& opt, report::BenchReport& rep, std::size_t nodes) {
  ConstantSkipList list(nodes);
  constexpr unsigned kWritePercent = 20;

  TmUniverse<H> universe(universe_config(opt));
  report::TableData& table = rep.add_table(
      std::to_string(nodes) + " Nodes Constant Skiplist, 20% mutations, all protocols "
      "(substrate=" + std::string(opt.substrate_name()) + ")");

  auto op = [&](auto& tm, auto& ctx, Xoshiro256& rng, unsigned) {
    const std::uint64_t key = rng.below(2 * nodes);
    if (rng.percent_chance(kWritePercent)) {
      tm.atomically(ctx, [&](auto& tx) { (void)list.update(tx, key, rng.next_u64()); });
    } else {
      TmWord sink = 0;
      tm.atomically(ctx, [&](auto& tx) { (void)list.search(tx, key, &sink); });
      do_not_optimize(sink);
    }
  };

  run_figure(universe, table,
             {Series::kHtm, Series::kStdHytm, Series::kTl2, Series::kRh1Fast,
              Series::kRh1Mix10, Series::kRh1Mix100, Series::kHybridNorec, Series::kPhasedTm},
             opt, op);
}

}  // namespace

RHTM_SCENARIO(skiplist, "extension",
              "Constant skiplist, 20% mutations, every protocol incl. NOrec/Phased") {
  report::BenchReport rep;
  rep.substrate = opt.substrate_name();
  const std::size_t nodes = opt.full ? 256 * 1024 : 32 * 1024;
  rep.set_meta("workload", "constant_skiplist/" + std::to_string(nodes));
  rep.set_meta("write_percent", "20");
  dispatch_substrate(opt, [&]<class H>(SubstrateTag<H>) { run_skiplist<H>(opt, rep, nodes); });
  return rep;
}

}  // namespace rhtm::bench
