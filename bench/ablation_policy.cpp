// Ablation A6 — retry policy: the paper's fixed Mixed-N coin vs the adaptive
// contention manager (§2.3 leaves the mechanism open). Sweep the injected
// abort pressure and compare throughput plus wasted hardware attempts.
//
// Expected shape: at low pressure, adaptive ≈ Mixed-0 (plenty of hardware
// retries, none wasted); at high pressure, adaptive ≈ Mixed-100 (immediate
// fallback) while Mixed-10 burns ~10 hardware attempts per transaction.
//
// Mixed-0 is skipped at 100% injection: it never falls back, so it would
// retry in hardware forever — the degenerate case the fallback exists for.
// Its series simply has no point at inject_bp=10000.

#include "registry.h"

namespace rhtm::bench {
namespace {

constexpr unsigned kThreads = 4;

void run_policy(const Options& opt, report::SeriesData& series, std::uint32_t inject_bp,
                CmPolicy policy, unsigned slow_retry_percent) {
  UniverseConfig ucfg;
  ucfg.cm.policy = policy;
  TmUniverse<HtmSim> u(ucfg);
  std::vector<TVar<TmWord>> cells(256);
  typename HybridTm<HtmSim>::Config cfg;
  cfg.inject_abort_bp = inject_bp;
  cfg.slow_retry_percent = slow_retry_percent;
  HybridTm<HtmSim> tm(u, cfg);
  const ThroughputResult r = run_throughput(
      tm, kThreads, opt.seconds * 2, [&](auto& m, auto& ctx, Xoshiro256& rng, unsigned) {
        auto& cell = cells[rng.below(cells.size())];
        m.atomically(ctx, [&](auto& tx) { cell.write(tx, cell.read(tx) + 1); });
      });
  const double tries =
      r.total_ops > 0
          ? static_cast<double>(
                r.stats.attempts_by_path[static_cast<std::size_t>(ExecPath::kRh1Fast)]) /
                static_cast<double>(r.total_ops)
          : 0.0;
  report::Point& p = series.add_point(inject_bp);
  p.set("total_ops", static_cast<double>(r.total_ops));
  p.set("abort_ratio", r.abort_ratio());
  p.set("fast_tries_per_op", tries);
}

}  // namespace

RHTM_SCENARIO(ablation_policy, "§2.3 (A6)",
              "Mixed-N retry coin vs adaptive contention manager vs abort pressure") {
  report::BenchReport rep;
  rep.substrate = SubstrateTraits<HtmSim>::kName;
  rep.set_meta("workload", "counter array/256");
  rep.set_meta("note", "mixed-0 has no point at inject_bp=10000: it would livelock");
  report::TableData& table = rep.add_table(
      "Ablation A6 - retry policy vs abort pressure (counter array, " +
          std::to_string(kThreads) + " threads, sim)",
      report::TableStyle::kWide, "inject_bp");

  report::SeriesData& mixed0 = table.add_series("mixed-0");
  report::SeriesData& mixed10 = table.add_series("mixed-10");
  report::SeriesData& mixed100 = table.add_series("mixed-100");
  report::SeriesData& adaptive = table.add_series("adaptive");

  for (const std::uint32_t inject_bp : {0u, 1000u, 5000u, 10000u}) {
    if (inject_bp < 10000) {
      run_policy(opt, mixed0, inject_bp, CmPolicy::kFixed, 0);
    }
    run_policy(opt, mixed10, inject_bp, CmPolicy::kFixed, 10);
    run_policy(opt, mixed100, inject_bp, CmPolicy::kFixed, 100);
    run_policy(opt, adaptive, inject_bp, CmPolicy::kAdaptive, 100);
  }
  return rep;
}

}  // namespace rhtm::bench
