// Ablation A6 — retry policy: the paper's fixed Mixed-N coin vs the adaptive
// contention manager (§2.3 leaves the mechanism open). Sweep the injected
// abort pressure and compare throughput plus wasted hardware attempts.
//
// Expected shape: at low pressure, adaptive ≈ Mixed-0 (plenty of hardware
// retries, none wasted); at high pressure, adaptive ≈ Mixed-100 (immediate
// fallback) while Mixed-10 burns ~10 hardware attempts per transaction.

#include "bench_common.h"

namespace rhtm::bench {
namespace {

struct PolicyPoint {
  const char* name;
  std::uint64_t ops;
  double fast_attempts_per_op;
};

void run(const Options& opt) {
  constexpr unsigned kThreads = 4;
  std::printf("# Ablation A6 - retry policy vs abort pressure "
              "(counter array, %u threads, sim)\n",
              kThreads);
  std::printf("%-12s %-10s %14s %18s\n", "inject", "policy", "total_ops", "fast_tries/op");

  for (const std::uint32_t inject_bp : {0u, 1000u, 5000u, 10000u}) {
    const auto run_policy = [&](const char* name, auto configure) {
      TmUniverse<HtmSim> u;
      std::vector<TVar<TmWord>> cells(256);
      typename HybridTm<HtmSim>::Config cfg;
      cfg.inject_abort_bp = inject_bp;
      configure(cfg);
      HybridTm<HtmSim> tm(u, cfg);
      const ThroughputResult r = run_throughput(
          tm, kThreads, opt.seconds * 2, [&](auto& m, auto& ctx, Xoshiro256& rng, unsigned) {
            auto& cell = cells[rng.below(cells.size())];
            m.atomically(ctx, [&](auto& tx) { cell.write(tx, cell.read(tx) + 1); });
          });
      const double tries =
          r.total_ops > 0
              ? static_cast<double>(
                    r.stats.attempts_by_path[static_cast<std::size_t>(ExecPath::kRh1Fast)]) /
                    static_cast<double>(r.total_ops)
              : 0.0;
      std::printf("%-12u %-10s %14llu %18.2f\n", inject_bp, name,
                  static_cast<unsigned long long>(r.total_ops), tries);
    };

    if (inject_bp < 10000) {
      // Mixed-0 never falls back: at 100% injection it would retry in
      // hardware forever — the degenerate case the fallback exists for.
      run_policy("mixed-0", [](auto& cfg) { cfg.slow_retry_percent = 0; });
    } else {
      std::printf("%-12u %-10s %14s %18s\n", inject_bp, "mixed-0", "(livelock)", "-");
    }
    run_policy("mixed-10", [](auto& cfg) { cfg.slow_retry_percent = 10; });
    run_policy("mixed-100", [](auto& cfg) { cfg.slow_retry_percent = 100; });
    run_policy("adaptive", [](auto& cfg) {
      cfg.retry_policy = HybridTm<HtmSim>::RetryPolicy::kAdaptive;
    });
  }
}

}  // namespace
}  // namespace rhtm::bench

int main(int argc, char** argv) {
  rhtm::bench::run(rhtm::bench::Options::parse(argc, argv));
  return 0;
}
