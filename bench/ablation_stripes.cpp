// Ablation A2 — stripe-table geometry: fewer stripes and coarser granules
// alias more addresses onto the same version word, producing false conflicts
// for the software paths. TL2 over a write-heavy random array, simulated
// substrate.

#include "registry.h"
#include "workloads/random_array.h"

namespace rhtm::bench {

RHTM_SCENARIO(ablation_stripes, "§2 (A2)",
              "Stripe-table geometry: false conflicts from address aliasing") {
  const unsigned threads = 4;

  report::BenchReport rep;
  rep.substrate = SubstrateTraits<HtmSim>::kName;
  rep.set_meta("workload", "random_array/65536 len=32 write=50%");
  report::TableData& table = rep.add_table(
      "Ablation A2 - stripe geometry (TL2, random array 64K, " + std::to_string(threads) +
          " threads, sim)",
      report::TableStyle::kWide, "granularity_log2");

  for (const unsigned log2_count : {10u, 14u, 18u}) {
    report::SeriesData& series = table.add_series("stripes=2^" + std::to_string(log2_count));
    for (const unsigned gran : {3u, 5u, 8u}) {
      UniverseConfig ucfg;
      ucfg.stripe.log2_count = log2_count;
      ucfg.stripe.granularity_log2 = gran;
      TmUniverse<HtmSim> universe(ucfg);
      RandomArray array(64 * 1024);
      SimTl2 tm(universe);

      const ThroughputResult r =
          run_throughput(tm, threads, opt.seconds * 2,
                         [&](auto& m, auto& ctx, Xoshiro256& rng, unsigned) {
                           m.atomically(ctx, [&](auto& tx) {
                             do_not_optimize(array.op(tx, rng, 32, 50));
                           });
                         });
      report::Point& p = series.add_point(gran);
      p.set("total_ops", static_cast<double>(r.total_ops));
      p.set("abort_ratio", r.abort_ratio());
    }
  }
  return rep;
}

}  // namespace rhtm::bench
