// Ablation A2 — stripe-table geometry: fewer stripes and coarser granules
// alias more addresses onto the same version word, producing false conflicts
// for the software paths. TL2 over a write-heavy random array, simulated
// substrate.

#include "bench_common.h"
#include "workloads/random_array.h"

namespace rhtm::bench {
namespace {

void run(const Options& opt) {
  const unsigned threads = 4;
  std::printf("# Ablation A2 - stripe geometry (TL2, random array 64K, %u threads, sim)\n",
              threads);
  std::printf("%-12s %-6s %14s %12s\n", "log2_stripes", "gran", "total_ops", "abort_ratio");

  for (const unsigned log2_count : {10u, 14u, 18u}) {
    for (const unsigned gran : {3u, 5u, 8u}) {
      UniverseConfig ucfg;
      ucfg.stripe.log2_count = log2_count;
      ucfg.stripe.granularity_log2 = gran;
      TmUniverse<HtmSim> universe(ucfg);
      RandomArray array(64 * 1024);
      SimTl2 tm(universe);

      const ThroughputResult r =
          run_throughput(tm, threads, opt.seconds * 2,
                         [&](auto& m, auto& ctx, Xoshiro256& rng, unsigned) {
                           m.atomically(ctx, [&](auto& tx) {
                             do_not_optimize(array.op(tx, rng, 32, 50));
                           });
                         });
      std::printf("%-12u %-6u %14llu %12.3f\n", log2_count, gran,
                  static_cast<unsigned long long>(r.total_ops), r.abort_ratio());
    }
  }
}

}  // namespace
}  // namespace rhtm::bench

int main(int argc, char** argv) {
  rhtm::bench::run(rhtm::bench::Options::parse(argc, argv));
  return 0;
}
