// Microbenchmark: per-access barrier cost of each protocol's fast path on
// the emulated substrate — the paper's Figure-1 story at nanosecond scale.
// Each timed call runs one transaction performing N reads (or writes)
// through the protocol's handle, so ns_per_access ≈ the barrier cost.
//
//   HTM           read = 1 load                       write = 1 store
//   RH1 fast      read = 1 load                       write = stripe store + store
//   StandardHyTM  read = metadata load + branch + load; write adds the store
//   TL2           read = full STM read barrier         write = write-set insert

#include "registry.h"

namespace rhtm::bench {
namespace {

constexpr std::size_t kCells = 1024;
constexpr std::size_t kAccesses = 256;

template <class Tm>
double reads_ns_per_access(const Options& opt, TmUniverse<HtmEmul>& universe) {
  Tm tm(universe);
  typename Tm::ThreadCtx ctx(tm);
  std::vector<TVar<TmWord>> cells(kCells);
  std::size_t base = 0;
  const double ns = ns_per_op(opt.seconds, [&] {
    TmWord sum = 0;
    tm.atomically(ctx, [&](auto& tx) {
      sum = 0;
      for (std::size_t i = 0; i < kAccesses; ++i) {
        sum += cells[(base + i) & (kCells - 1)].read(tx);
      }
    });
    do_not_optimize(sum);
    base += kAccesses;
  });
  return ns / static_cast<double>(kAccesses);
}

template <class Tm>
double writes_ns_per_access(const Options& opt, TmUniverse<HtmEmul>& universe) {
  Tm tm(universe);
  typename Tm::ThreadCtx ctx(tm);
  std::vector<TVar<TmWord>> cells(kCells);
  std::size_t base = 0;
  const double ns = ns_per_op(opt.seconds, [&] {
    tm.atomically(ctx, [&](auto& tx) {
      for (std::size_t i = 0; i < kAccesses; ++i) {
        cells[(base + i) & (kCells - 1)].write(tx, i);
      }
    });
    base += kAccesses;
  });
  return ns / static_cast<double>(kAccesses);
}

template <class Tm>
void protocol_row(const Options& opt, report::TableData& table, const char* name) {
  report::SeriesData& series = table.add_series(name);
  report::Point& p = series.add_point(static_cast<double>(kAccesses));
  {
    TmUniverse<HtmEmul> u;
    p.set("read_ns_per_access", reads_ns_per_access<Tm>(opt, u));
  }
  {
    TmUniverse<HtmEmul> u;
    p.set("write_ns_per_access", writes_ns_per_access<Tm>(opt, u));
  }
}

// Tracing-overhead series: the same barrier loop, once with no tracer (the
// disabled path — one predictable null-check branch per emission point) and
// once with a live tracer recording every event. The ISSUE's acceptance bar
// is that the untraced rows above stay within noise of the pre-trace
// baseline; these rows quantify what turning the recorder ON costs.
template <class Tm>
void tracing_row(const Options& opt, report::TableData& table, const char* name) {
  report::SeriesData& series = table.add_series(name);
  report::Point& p = series.add_point(static_cast<double>(kAccesses));
  double off = 0, on = 0;
  {
    TmUniverse<HtmEmul> u;
    off = reads_ns_per_access<Tm>(opt, u);
  }
  {
    trace::Tracer tracer;
    UniverseConfig cfg;
    cfg.tracer = &tracer;
    TmUniverse<HtmEmul> u(cfg);
    on = reads_ns_per_access<Tm>(opt, u);
  }
  p.set("read_ns_per_access", off);
  p.set("read_ns_per_access_traced", on);
  p.set("overhead_pct", off > 0 ? (on - off) / off * 100.0 : 0.0);
}

}  // namespace

RHTM_SCENARIO(micro_barriers, "—",
              "per-access barrier cost of each protocol's fast path (emul)") {
  report::BenchReport rep;
  rep.substrate = SubstrateTraits<HtmEmul>::kName;
  rep.set_meta("accesses_per_tx", std::to_string(kAccesses));
  report::TableData& table =
      rep.add_table("Microbench - per-access barrier cost of each protocol's fast path (emul)",
                    report::TableStyle::kWide, "accesses", "read_ns_per_access");
  protocol_row<EmulHtmOnly>(opt, table, "HTM");
  protocol_row<EmulHybridTm>(opt, table, "RH1-Fast");
  protocol_row<EmulStandardHytm>(opt, table, "StandardHyTM");
  protocol_row<EmulTl2>(opt, table, "TL2");

  report::TableData& overhead =
      rep.add_table("Microbench - trace recorder overhead (emul, read path)",
                    report::TableStyle::kWide, "accesses", "overhead_pct");
  tracing_row<EmulHtmOnly>(opt, overhead, "HTM");
  tracing_row<EmulHybridTm>(opt, overhead, "RH1-Fast");
  tracing_row<EmulTl2>(opt, overhead, "TL2");
  return rep;
}

}  // namespace rhtm::bench
