// Microbenchmark: per-access barrier cost of each protocol's fast path on
// the emulated substrate — the paper's Figure-1 story at nanosecond scale.
// Each iteration runs one transaction performing N reads (or writes) through
// the protocol's handle; items/sec ≈ accesses/sec.
//
//   HTM           read = 1 load                       write = 1 store
//   RH1 fast      read = 1 load                       write = stripe store + store
//   StandardHyTM  read = metadata load + branch + load; write adds the store
//   TL2           read = full STM read barrier         write = write-set insert

#include <benchmark/benchmark.h>

#include "core/rhtm.h"

namespace rhtm {
namespace {

constexpr std::size_t kCells = 1024;

template <class Tm>
void reads_loop(benchmark::State& state, TmUniverse<HtmEmul>& universe) {
  Tm tm(universe);
  typename Tm::ThreadCtx ctx(tm);
  std::vector<TVar<TmWord>> cells(kCells);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::size_t base = 0;
  for (auto _ : state) {
    TmWord sum = 0;
    tm.atomically(ctx, [&](auto& tx) {
      sum = 0;
      for (std::size_t i = 0; i < n; ++i) sum += cells[(base + i) & (kCells - 1)].read(tx);
    });
    benchmark::DoNotOptimize(sum);
    base += n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

template <class Tm>
void writes_loop(benchmark::State& state, TmUniverse<HtmEmul>& universe) {
  Tm tm(universe);
  typename Tm::ThreadCtx ctx(tm);
  std::vector<TVar<TmWord>> cells(kCells);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::size_t base = 0;
  for (auto _ : state) {
    tm.atomically(ctx, [&](auto& tx) {
      for (std::size_t i = 0; i < n; ++i) cells[(base + i) & (kCells - 1)].write(tx, i);
    });
    base += n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_Reads_HTM(benchmark::State& state) {
  TmUniverse<HtmEmul> u;
  reads_loop<EmulHtmOnly>(state, u);
}
void BM_Reads_RH1Fast(benchmark::State& state) {
  TmUniverse<HtmEmul> u;
  reads_loop<EmulHybridTm>(state, u);
}
void BM_Reads_StdHyTM(benchmark::State& state) {
  TmUniverse<HtmEmul> u;
  reads_loop<EmulStandardHytm>(state, u);
}
void BM_Reads_TL2(benchmark::State& state) {
  TmUniverse<HtmEmul> u;
  reads_loop<EmulTl2>(state, u);
}
BENCHMARK(BM_Reads_HTM)->Arg(256);
BENCHMARK(BM_Reads_RH1Fast)->Arg(256);
BENCHMARK(BM_Reads_StdHyTM)->Arg(256);
BENCHMARK(BM_Reads_TL2)->Arg(256);

void BM_Writes_HTM(benchmark::State& state) {
  TmUniverse<HtmEmul> u;
  writes_loop<EmulHtmOnly>(state, u);
}
void BM_Writes_RH1Fast(benchmark::State& state) {
  TmUniverse<HtmEmul> u;
  writes_loop<EmulHybridTm>(state, u);
}
void BM_Writes_StdHyTM(benchmark::State& state) {
  TmUniverse<HtmEmul> u;
  writes_loop<EmulStandardHytm>(state, u);
}
void BM_Writes_TL2(benchmark::State& state) {
  TmUniverse<HtmEmul> u;
  writes_loop<EmulTl2>(state, u);
}
BENCHMARK(BM_Writes_HTM)->Arg(256);
BENCHMARK(BM_Writes_RH1Fast)->Arg(256);
BENCHMARK(BM_Writes_StdHyTM)->Arg(256);
BENCHMARK(BM_Writes_TL2)->Arg(256);

}  // namespace
}  // namespace rhtm

BENCHMARK_MAIN();
