// Extension scenario — the commit pipeline under the microscope. Sweeps the
// write-set size per protocol and reports, for each point, the nanoseconds
// spent in the commit machinery (time inside atomically() minus time inside
// the body, cycle-attributed like fig2_breakdown) and the capacity-abort
// rate of the hardware commit transactions.
//
// The body is deliberately hostile to naive footprint accounting: reads are
// zipfian re-reads of a small hot set (the hashtable/zipfian access shape),
// so a read-set that logs duplicate stripes inflates the RH1 reduced
// commit's hardware footprint with work that validates nothing — exactly
// the instrumentation-cost axis Alistarh et al. and Brown & Ravi identify.
// The before/after BENCH_commit_path.json diff of the stripe-dedup overhaul
// is cited in docs/BENCHMARKS.md.

#include <chrono>

#include "registry.h"
#include "workloads/zipf.h"

namespace rhtm::bench {
namespace {

constexpr std::size_t kReadCells = 256;   ///< hot read set (zipfian re-read target)
constexpr std::size_t kMaxWrites = 1024;  ///< distinct cells the largest point writes
constexpr double kZipfTheta = 0.99;       ///< YCSB-default skew
constexpr std::size_t kHtmBudget = 512;   ///< read AND write budget, in tracked entries
constexpr unsigned kSweepThreads = 2;     ///< table 2's fixed thread count

const std::size_t kWriteSizes[] = {4, 16, 64, 128, 256, 1024};

[[nodiscard]] UniverseConfig commit_path_universe_config() {
  UniverseConfig ucfg;
  ucfg.htm.max_read_set = kHtmBudget;
  ucfg.htm.max_write_set = kHtmBudget;
  ucfg.htm.line_shift = 3;  // one word per HTM line: exact entry accounting
  return ucfg;
}

/// One transaction: 2W zipfian reads of the hot set (duplicate-stripe
/// heavy), then W distinct-cell writes.
template <class Tx>
void commit_path_body(Tx& tx, const std::vector<TVar<TmWord>>& reads,
                      const std::vector<TVar<TmWord>>& writes, const ZipfianGenerator& zipf,
                      Xoshiro256& rng, std::size_t w) {
  TmWord sum = 0;
  for (std::size_t i = 0; i < 2 * w; ++i) {
    sum += reads[zipf.next(rng)].read(tx);
  }
  for (std::size_t i = 0; i < w; ++i) {
    writes[i].write(tx, sum + i);
  }
  do_not_optimize(sum);
}

/// Single-thread timed window for one (series, W) point: wall-clock ns per
/// transaction, the commit share of it (cycle-attributed), and the
/// capacity-abort rate over all hardware commit attempts in the window.
template <class Tm>
void time_commit_point(report::SeriesData& series, Tm& tm, double seconds,
                       const std::vector<TVar<TmWord>>& reads,
                       const std::vector<TVar<TmWord>>& writes,
                       const ZipfianGenerator& zipf, std::size_t w) {
  using clock = std::chrono::steady_clock;
  typename Tm::ThreadCtx ctx(tm);
  ctx.stats.timing = true;
  Xoshiro256 rng(0x5851f42d4c957f2dull ^ w);
  std::uint64_t body_cycles = 0;
  const auto one_tx = [&] {
    tm.atomically(ctx, [&](auto& tx) {
      const std::uint64_t b0 = rdtsc();
      commit_path_body(tx, reads, writes, zipf, rng, w);
      body_cycles += rdtsc() - b0;
    });
  };
  one_tx();  // warm-up (first-touch, lazy growth)
  const TxStats before = ctx.stats;
  body_cycles = 0;
  std::uint64_t ops = 0;
  const auto t0 = clock::now();
  const std::uint64_t c0 = rdtsc();
  const auto deadline = t0 + std::chrono::duration<double>(seconds);
  auto now = t0;
  do {
    one_tx();
    ++ops;
    now = clock::now();
  } while (now < deadline);
  const std::uint64_t total_cycles = rdtsc() - c0;
  const double wall_ns = std::chrono::duration<double, std::nano>(now - t0).count();

  const TxStats d = tx_stats_delta(ctx.stats, before);
  const std::uint64_t commit_cycles =
      d.tx_cycles > body_cycles ? d.tx_cycles - body_cycles : 0;
  std::uint64_t attempts = 0;
  for (const std::uint64_t a : d.attempts_by_path) attempts += a;
  const double capacity_aborts = static_cast<double>(
      d.aborts_by_cause[static_cast<std::size_t>(AbortCause::kHtmCapacity)]);

  report::Point& p = series.add_point(static_cast<double>(w));
  const double per_op = ops > 0 ? wall_ns / static_cast<double>(ops) : 0.0;
  const double commit_share =
      total_cycles > 0
          ? static_cast<double>(commit_cycles) / static_cast<double>(total_cycles)
          : 0.0;
  p.set("commit_ns", per_op * commit_share);
  p.set("tx_ns", per_op);
  p.set("capacity_abort_rate",
        attempts > 0 ? capacity_aborts / static_cast<double>(attempts) : 0.0);
  const double commits = static_cast<double>(d.commits);
  const auto pct = [&](ExecPath path) {
    return commits > 0
               ? 100.0 * static_cast<double>(
                             d.commits_by_path[static_cast<std::size_t>(path)]) / commits
               : 0.0;
  };
  p.set("rh1_slow_pct", pct(ExecPath::kRh1Slow));
  p.set("rh2_pct", pct(ExecPath::kRh2Slow));
  p.set("slow_slow_pct", pct(ExecPath::kRh2SlowSlow));
}

template <class H>
void run_commit_path(const Options& opt, report::BenchReport& rep) {
  std::vector<TVar<TmWord>> reads(kReadCells);
  std::vector<TVar<TmWord>> writes(kMaxWrites);
  const ZipfianGenerator zipf(kReadCells, kZipfTheta);

  // ---- table 1: single-thread commit latency + escalation ----------------
  TmUniverse<H> universe(commit_path_universe_config());
  report::TableData& lat = rep.add_table(
      "Commit-path cost vs write-set size (2W zipfian re-reads, HTM budget=" +
          std::to_string(kHtmBudget) + " entries, 1 thread, substrate=" +
          std::string(opt.substrate_name()) + ")",
      report::TableStyle::kWide, "writes", "commit_ns");
  report::SeriesData& tl2_series = lat.add_series("TL2");
  report::SeriesData& rh1_series = lat.add_series("RH1-Slow");
  report::SeriesData& rh2_series = lat.add_series("RH2");
  for (const std::size_t w : kWriteSizes) {
    {
      Tl2<H> tm(universe);
      time_commit_point(tl2_series, tm, opt.seconds, reads, writes, zipf, w);
    }
    {
      typename HybridTm<H>::Config cfg;
      cfg.force_slow_path = true;  // software body + reduced hardware commit
      HybridTm<H> tm(universe, cfg);
      time_commit_point(rh1_series, tm, opt.seconds, reads, writes, zipf, w);
    }
    {
      typename HybridTm<H>::Config cfg;
      cfg.force_rh2 = true;  // visible reads + write-set-only hardware commit
      HybridTm<H> tm(universe, cfg);
      time_commit_point(rh2_series, tm, opt.seconds, reads, writes, zipf, w);
    }
  }

  // ---- table 2: throughput sweep over W (gate-visible RH1-Fast/TL2) ------
  TmUniverse<H> sweep_universe(commit_path_universe_config());
  report::TableData& thr = rep.add_table(
      "Commit-path throughput vs write-set size (" + std::to_string(kSweepThreads) +
          " threads, substrate=" + std::string(opt.substrate_name()) + ")",
      report::TableStyle::kSweep, "writes", "total_ops");
  report::SeriesData& thr_tl2 = thr.add_series("TL2");
  report::SeriesData& thr_fast = thr.add_series("RH1-Fast");
  report::SeriesData& thr_mix = thr.add_series("RH1-Mix100");
  for (const std::size_t w : kWriteSizes) {
    auto op = [&](auto& tm, auto& ctx, Xoshiro256& rng, unsigned) {
      tm.atomically(ctx,
                    [&](auto& tx) { commit_path_body(tx, reads, writes, zipf, rng, w); });
    };
    const auto [inject_bp, tl2_result] =
        calibrate_tl2(sweep_universe, kSweepThreads, opt.calib_seconds, op, opt.pin);
    fill_point(thr_tl2.add_point(static_cast<double>(w)), tl2_result);
    fill_point(thr_fast.add_point(static_cast<double>(w)),
               run_series_point(sweep_universe, Series::kRh1Fast, kSweepThreads,
                                opt.seconds, inject_bp, op, opt.pin));
    fill_point(thr_mix.add_point(static_cast<double>(w)),
               run_series_point(sweep_universe, Series::kRh1Mix100, kSweepThreads,
                                opt.seconds, inject_bp, op, opt.pin));
  }
}

}  // namespace

RHTM_SCENARIO(commit_path, "§2.1 (extension)",
              "commit pipeline: commit-ns + capacity-abort rate vs write-set size") {
  report::BenchReport rep;
  rep.substrate = opt.substrate_name();
  rep.set_meta("workload", "zipfian re-reads + distinct writes");
  rep.set_meta("read_cells", std::to_string(kReadCells));
  rep.set_meta("zipf_theta", std::to_string(kZipfTheta).substr(0, 4));
  rep.set_meta("htm_budget_entries", std::to_string(kHtmBudget));
  dispatch_substrate(opt, [&]<class H>(SubstrateTag<H>) { run_commit_path<H>(opt, rep); });
  return rep;
}

}  // namespace rhtm::bench
