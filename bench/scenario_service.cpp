// Transactional service front-end scenario — the account-store KV service
// driven OPEN-LOOP (workloads/open_loop.h): Poisson arrivals at an offered
// rate, bounded per-worker admission queues with drop accounting, and
// per-request arrival->commit latency percentiles per protocol. Three
// tables:
//
//  1. Rate sweep at a fixed thread count — offered vs achieved rate, drop
//     rate, p50/p99/p999 as the offered load climbs toward saturation.
//  2. Thread sweep at a fixed offered rate — how many workers a protocol
//     needs to hold the tail at that load.
//  3. Audit-mix sweep (x = % of requests running a shard audit, batch K=4)
//     — long read-only audits riding the same queue as transfers: the
//     instrumented-fast-path cost question, asked at the tail.
//
// TL2 runs first at every point; it is both the TL2 series and the abort
// calibration for the hardware-mode series' injection, the repo's standard
// methodology (§3.1). The primary metric is achieved_per_sec (gateable,
// higher-is-better); the latency percentiles ride along on every point.

#include <algorithm>

#include "registry.h"
#include "workloads/account_store.h"
#include "workloads/open_loop.h"

namespace rhtm::bench {
namespace {

constexpr unsigned kMaxBatch = 64;

/// One service transaction over `k` admitted requests: each request is a
/// transfer or (audit_percent% of the time) a shard audit. Request
/// descriptors are drawn BEFORE the transaction, so an abort-retry replays
/// the same requests instead of re-rolling the mix.
auto service_op(const AccountStore& store, unsigned audit_percent) {
  return [&store, audit_percent](auto& tm, auto& ctx, Xoshiro256& rng, unsigned /*tid*/,
                                 unsigned k) {
    struct Req {
      bool audit;
      std::uint64_t a;
      std::uint64_t b;
      TmWord amount;
    };
    Req reqs[kMaxBatch];
    if (k > kMaxBatch) k = kMaxBatch;
    const std::uint64_t n = store.accounts();
    for (unsigned i = 0; i < k; ++i) {
      reqs[i].audit = rng.percent_chance(audit_percent);
      reqs[i].a = rng.below(n);
      reqs[i].b = rng.below(n);
      reqs[i].amount = 1 + rng.below(8);
    }
    TmWord sink = 0;
    tm.atomically(ctx, [&](auto& tx) {
      sink = 0;
      for (unsigned i = 0; i < k; ++i) {
        if (reqs[i].audit) {
          sink += store.audit_shard(tx, static_cast<std::size_t>(reqs[i].a));
        } else {
          (void)store.transfer(tx, reqs[i].a, reqs[i].b, reqs[i].amount);
        }
      }
    });
    do_not_optimize(sink);
  };
}

void fill_open_point(report::Point& p, const OpenLoopResult& r) {
  p.set("offered_per_sec", r.offered_per_sec());
  p.set("achieved_per_sec", r.achieved_per_sec());
  p.set("drop_rate", r.drop_rate());
  p.set("offered", static_cast<double>(r.offered));
  p.set("dropped", static_cast<double>(r.dropped));
  p.set("completed", static_cast<double>(r.completed));
  const auto us = [](std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; };
  p.set("p50_us", us(r.latency.quantile(0.50)));
  p.set("p90_us", us(r.latency.quantile(0.90)));
  p.set("p99_us", us(r.latency.quantile(0.99)));
  p.set("p999_us", us(r.latency.quantile(0.999)));
  p.set("max_us", us(r.latency.max()));
  p.set("commits", static_cast<double>(r.stats.commits));
  p.set("aborts", static_cast<double>(r.stats.aborts));
  const double a = static_cast<double>(r.stats.aborts);
  const double c = static_cast<double>(r.stats.commits);
  p.set("abort_ratio", a + c > 0 ? a / (a + c) : 0.0);
}

template <class H>
void run_service(const Options& opt, report::BenchReport& rep) {
  const std::size_t accounts = opt.full ? 8192 : 1024;
  AccountStore store(accounts, /*initial=*/1000, /*shards=*/16);
  TmUniverse<H> universe(universe_config(opt));

  const auto scale = opt.full ? 10.0 : 1.0;
  const unsigned fixed_threads =
      std::min(4u, *std::max_element(opt.threads.begin(), opt.threads.end()));
  const double fixed_rate = 20'000 * scale;

  // One open-loop measurement point: TL2 first (series + calibration), then
  // every other protocol with the calibrated injection. One row per series.
  const auto add_point = [&](report::TableData& table, double x, double rate,
                             unsigned threads, unsigned audit_percent, unsigned batch) {
    OpenLoopOptions olo;
    olo.rate_per_sec = rate;
    olo.seconds = opt.seconds;
    olo.threads = threads;
    olo.batch = batch;
    olo.queue_capacity = 1024;
    olo.pin = opt.pin;
    auto op = service_op(store, audit_percent);
    OpenLoopResult tl2;
    {
      Tl2<H> tm(universe);
      tl2 = run_open_loop(tm, olo, op);
    }
    const double a = static_cast<double>(tl2.stats.aborts);
    const double c = static_cast<double>(tl2.stats.commits);
    const std::uint32_t inject_bp =
        AbortInjector::from_ratio(a + c > 0 ? a / (a + c) : 0.0).rate_bp();
    std::size_t i = 0;
    for (const Series s : all_series()) {
      report::Point& p = table.series[i++].add_point(x);
      if (s == Series::kTl2) {
        fill_open_point(p, tl2);
        continue;
      }
      with_series_tm(universe, s, inject_bp, [&](auto& tm) {
        fill_open_point(p, run_open_loop(tm, olo, op));
      });
    }
  };

  {
    report::TableData& table = rep.add_table(
        "Account-store service, open-loop rate sweep at " +
            std::to_string(fixed_threads) + " threads (Poisson arrivals, 5% audit mix," +
            " x = offered req/s)",
        report::TableStyle::kSweep, "offered_rate", "achieved_per_sec");
    for (const Series s : all_series()) table.add_series(to_string(s));
    for (const double rate : {5'000 * scale, 20'000 * scale, 80'000 * scale}) {
      add_point(table, rate, rate, fixed_threads, /*audit_percent=*/5, /*batch=*/1);
    }
  }
  {
    report::TableData& table = rep.add_table(
        "Account-store service, thread sweep at " +
            std::to_string(static_cast<long long>(fixed_rate)) +
            " req/s offered (Poisson arrivals, 5% audit mix)",
        report::TableStyle::kSweep, "threads", "achieved_per_sec");
    for (const Series s : all_series()) table.add_series(to_string(s));
    for (const unsigned threads : opt.threads) {
      add_point(table, threads, fixed_rate, threads, /*audit_percent=*/5, /*batch=*/1);
    }
  }
  {
    report::TableData& table = rep.add_table(
        "Account-store service, audit-mix sweep at " +
            std::to_string(static_cast<long long>(fixed_rate)) + " req/s, " +
            std::to_string(fixed_threads) +
            " threads, batch K=4 (x = % of requests auditing a shard)",
        report::TableStyle::kSweep, "audit_percent", "achieved_per_sec");
    for (const Series s : all_series()) table.add_series(to_string(s));
    for (const unsigned audit : {0u, 5u, 20u}) {
      add_point(table, audit, fixed_rate, fixed_threads, audit, /*batch=*/4);
    }
  }
}

}  // namespace

RHTM_SCENARIO(service, "extension",
              "Open-loop account-store service: Poisson arrivals, bounded "
              "admission queues, arrival->commit p50/p99/p999 per protocol") {
  report::BenchReport rep;
  rep.substrate = opt.substrate_name();
  rep.set_meta("workload", std::string("account_store/accounts=") +
                               (opt.full ? "8192" : "1024") + "/shards=16");
  rep.set_meta("arrivals", "poisson");
  rep.set_meta("queue_capacity", "1024");
  rep.set_meta("latency_unit", "us");
  dispatch_substrate(opt, [&]<class H>(SubstrateTag<H>) { run_service<H>(opt, rep); });
  return rep;
}

}  // namespace rhtm::bench
