// Extension bench — the paper's §1 argument, measured: RH1 against the two
// alternative hybrid designs it was proposed to replace.
//
//  * Phased TM: great while everything fits in hardware, collapses to STM
//    for everyone when even one transaction needs software.
//  * Hybrid NOrec: tiny instrumentation, but writer commits serialise on the
//    global sequence lock and abort every concurrent hardware transaction.
//  * RH1 Mixed: per-transaction software fallback, fine-grained conflicts.
//
// Two scenarios on the constant RB-tree: (a) everything fits (no injection)
// — all hybrids should be close to raw HTM; (b) a fraction of transactions
// is forced to software (abort injection as a stand-in for capacity/syscall
// failures) — Phased TM and Hybrid NOrec degrade, RH1 keeps the gap small.

#include "bench_common.h"
#include "workloads/constant_rbtree.h"

namespace rhtm::bench {
namespace {

template <class H, class Tm>
Point run_one(Tm& tm, unsigned threads, double seconds, ConstantRbTree& tree,
              unsigned write_percent) {
  const ThroughputResult r = run_throughput(
      tm, threads, seconds, [&](auto& m, auto& ctx, Xoshiro256& rng, unsigned) {
        const std::uint64_t key = rng.below(2 * tree.size());
        if (rng.percent_chance(write_percent)) {
          m.atomically(ctx, [&](auto& tx) { (void)tree.update(tx, key, rng.next_u64(), rng); });
        } else {
          TmWord sink = 0;
          m.atomically(ctx, [&](auto& tx) { (void)tree.lookup(tx, key, &sink); });
          do_not_optimize(sink);
        }
      });
  return {r.total_ops, r.abort_ratio()};
}

template <class H>
void run_scenario(const Options& opt, ConstantRbTree& tree, unsigned write_percent,
                  std::uint32_t inject_bp, const char* label) {
  Table table(std::string("ext-hybrids - RB-tree 100K, ") + std::to_string(write_percent) +
                  "% writes, " + label + " (substrate=" + opt.substrate_name() + ")",
              opt.threads);
  table.add_series("RH1-Mix100");
  table.add_series("HybridNOrec");
  table.add_series("PhasedTM");
  table.add_series("StandardHyTM");
  table.add_series("TL2");

  for (const unsigned threads : opt.threads) {
    TmUniverse<H> u_rh1;
    {
      typename HybridTm<H>::Config cfg;
      cfg.slow_retry_percent = 100;
      cfg.inject_abort_bp = inject_bp;
      HybridTm<H> tm(u_rh1, cfg);
      table.add_point(0, run_one<H>(tm, threads, opt.seconds, tree, write_percent));
    }
    TmUniverse<H> u_norec;
    {
      typename HybridNorec<H>::Config cfg;
      cfg.inject_abort_bp = inject_bp;
      HybridNorec<H> tm(u_norec, cfg);
      table.add_point(1, run_one<H>(tm, threads, opt.seconds, tree, write_percent));
    }
    TmUniverse<H> u_phased;
    {
      typename PhasedTm<H>::Config cfg;
      cfg.inject_abort_bp = inject_bp;
      PhasedTm<H> tm(u_phased, cfg);
      table.add_point(2, run_one<H>(tm, threads, opt.seconds, tree, write_percent));
    }
    TmUniverse<H> u_hytm;
    {
      typename StandardHytm<H>::Config cfg;
      cfg.hardware_only = true;
      cfg.inject_abort_bp = inject_bp;
      StandardHytm<H> tm(u_hytm, cfg);
      table.add_point(3, run_one<H>(tm, threads, opt.seconds, tree, write_percent));
    }
    TmUniverse<H> u_tl2;
    {
      Tl2<H> tm(u_tl2);
      table.add_point(4, run_one<H>(tm, threads, opt.seconds, tree, write_percent));
    }
  }
  table.print();
  std::printf("\n");
}

template <class H>
void run(const Options& opt) {
  ConstantRbTree tree(100'000);
  run_scenario<H>(opt, tree, 20, 0, "no software pressure");
}

// Scenario (b): a small fraction of transactions genuinely exceeds the HTM
// write budget, so hardware can never commit them — the "even a single
// transaction needs software" case (§1 on Phased TM). Always runs on HtmSim:
// real capacity aborts, no injection.
void run_capacity_pressure(const Options& opt) {
  using H = HtmSim;
  constexpr std::size_t kCells = 2048;
  constexpr unsigned kBulkWrites = 700;  // > default 512-entry write budget
  constexpr unsigned kBulkPercent = 2;

  Table table("ext-hybrids - 2% oversized transactions (genuine capacity aborts, substrate=sim)",
              opt.threads);
  table.add_series("RH1-Mix100");
  table.add_series("HybridNOrec");
  table.add_series("PhasedTM");
  table.add_series("TL2");

  const auto make_op = [&](std::vector<TVar<TmWord>>& cells) {
    return [&cells, kBulkWrites, kBulkPercent, kCells](auto& m, auto& ctx, Xoshiro256& rng,
                                                       unsigned) {
      if (rng.percent_chance(kBulkPercent)) {
        m.atomically(ctx, [&](auto& tx) {
          for (unsigned i = 0; i < kBulkWrites; ++i) cells[i].write(tx, i);
        });
      } else {
        const std::size_t base = rng.below(kCells - 8);
        m.atomically(ctx, [&](auto& tx) {
          TmWord sum = 0;
          for (std::size_t i = 0; i < 8; ++i) sum += cells[base + i].read(tx);
          cells[base].write(tx, sum);
        });
      }
    };
  };

  for (const unsigned threads : opt.threads) {
    {
      TmUniverse<H> u;
      std::vector<TVar<TmWord>> cells(kCells);
      typename HybridTm<H>::Config cfg;
      cfg.slow_retry_percent = 100;
      HybridTm<H> tm(u, cfg);
      const ThroughputResult r = run_throughput(tm, threads, opt.seconds, make_op(cells));
      table.add_point(0, {r.total_ops, r.abort_ratio()});
    }
    {
      TmUniverse<H> u;
      std::vector<TVar<TmWord>> cells(kCells);
      HybridNorec<H> tm(u);
      const ThroughputResult r = run_throughput(tm, threads, opt.seconds, make_op(cells));
      table.add_point(1, {r.total_ops, r.abort_ratio()});
    }
    {
      TmUniverse<H> u;
      std::vector<TVar<TmWord>> cells(kCells);
      PhasedTm<H> tm(u);
      const ThroughputResult r = run_throughput(tm, threads, opt.seconds, make_op(cells));
      table.add_point(2, {r.total_ops, r.abort_ratio()});
    }
    {
      TmUniverse<H> u;
      std::vector<TVar<TmWord>> cells(kCells);
      Tl2<H> tm(u);
      const ThroughputResult r = run_throughput(tm, threads, opt.seconds, make_op(cells));
      table.add_point(3, {r.total_ops, r.abort_ratio()});
    }
  }
  table.print();
  std::printf(
      "# NOTE: on the sim substrate hardware paths carry software tracking costs, so\n"
      "# absolute throughput is not the signal here. The behavioural signatures are:\n"
      "#  - HybridNOrec's abort ratio spikes (every HW writer commit conflicts on the\n"
      "#    global sequence lock) — the paper's coarse-conflict critique;\n"
      "#  - PhasedTM's throughput pins to TL2's (one oversized transaction drags\n"
      "#    every thread into the software phase) — the paper's phase critique;\n"
      "#  - RH1 pays only per-transaction fallback costs (lowest abort ratio).\n");
}

}  // namespace
}  // namespace rhtm::bench

int main(int argc, char** argv) {
  const auto opt = rhtm::bench::Options::parse(argc, argv);
  if (opt.use_sim) {
    rhtm::bench::run<rhtm::HtmSim>(opt);
  } else {
    rhtm::bench::run<rhtm::HtmEmul>(opt);
  }
  std::printf("\n");
  rhtm::bench::run_capacity_pressure(opt);
  return 0;
}
