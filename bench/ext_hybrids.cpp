// Extension bench — the paper's §1 argument, measured: RH1 against the two
// alternative hybrid designs it was proposed to replace.
//
//  * Phased TM: great while everything fits in hardware, collapses to STM
//    for everyone when even one transaction needs software.
//  * Hybrid NOrec: tiny instrumentation, but writer commits serialise on the
//    global sequence lock and abort every concurrent hardware transaction.
//  * RH1 Mixed: per-transaction software fallback, fine-grained conflicts.
//
// Two scenarios on the constant RB-tree: (a) everything fits (no injection)
// — all hybrids should be close to raw HTM; (b) a fraction of transactions
// genuinely exceeds the HTM write budget (simulated substrate, real capacity
// aborts) — Phased TM and Hybrid NOrec degrade, RH1 keeps the gap small.

#include "registry.h"
#include "workloads/constant_rbtree.h"

namespace rhtm::bench {
namespace {

template <class H>
void run_no_pressure(const Options& opt, report::BenchReport& rep) {
  ConstantRbTree tree(100'000);
  constexpr unsigned kWritePercent = 20;
  TmUniverse<H> universe(universe_config(opt));
  report::TableData& table = rep.add_table(
      "ext-hybrids - RB-tree 100K, 20% writes, no software pressure (substrate=" +
      std::string(opt.substrate_name()) + ")");

  auto op = [&](auto& tm, auto& ctx, Xoshiro256& rng, unsigned) {
    const std::uint64_t key = rng.below(2 * tree.size());
    if (rng.percent_chance(kWritePercent)) {
      tm.atomically(ctx, [&](auto& tx) { (void)tree.update(tx, key, rng.next_u64(), rng); });
    } else {
      TmWord sink = 0;
      tm.atomically(ctx, [&](auto& tx) { (void)tree.lookup(tx, key, &sink); });
      do_not_optimize(sink);
    }
  };

  // Scenario (a) is "everything fits": zero injection for the hardware
  // series — all hybrids should land close to raw HTM.
  run_figure(universe, table,
             {Series::kRh1Mix100, Series::kHybridNorec, Series::kPhasedTm, Series::kStdHytm,
              Series::kTl2},
             opt, op, /*inject=*/false);
}

// Scenario (b): a small fraction of transactions genuinely exceeds the HTM
// write budget, so hardware can never commit them — the "even a single
// transaction needs software" case (§1 on Phased TM). Always runs on HtmSim:
// real capacity aborts, no injection.
void run_capacity_pressure_table(const Options& opt, report::BenchReport& rep) {
  using H = HtmSim;
  constexpr std::size_t kCells = 2048;
  constexpr unsigned kBulkWrites = 700;  // > default 512-entry write budget
  constexpr unsigned kBulkPercent = 2;

  report::TableData& table = rep.add_table(
      std::string("ext-hybrids - 2% oversized transactions (genuine capacity aborts, "
                  "substrate=") +
      SubstrateTraits<H>::kName + ")");
  table.add_series("RH1-Mix100");
  table.add_series("HybridNOrec");
  table.add_series("PhasedTM");
  table.add_series("TL2");

  const auto make_op = [&](std::vector<TVar<TmWord>>& cells) {
    return [&cells, kBulkWrites, kBulkPercent, kCells](auto& m, auto& ctx, Xoshiro256& rng,
                                                       unsigned) {
      if (rng.percent_chance(kBulkPercent)) {
        m.atomically(ctx, [&](auto& tx) {
          for (unsigned i = 0; i < kBulkWrites; ++i) cells[i].write(tx, i);
        });
      } else {
        const std::size_t base = rng.below(kCells - 8);
        m.atomically(ctx, [&](auto& tx) {
          TmWord sum = 0;
          for (std::size_t i = 0; i < 8; ++i) sum += cells[base + i].read(tx);
          cells[base].write(tx, sum);
        });
      }
    };
  };

  for (const unsigned threads : opt.threads) {
    {
      TmUniverse<H> u(universe_config(opt));
      std::vector<TVar<TmWord>> cells(kCells);
      typename HybridTm<H>::Config cfg;
      cfg.slow_retry_percent = 100;
      HybridTm<H> tm(u, cfg);
      fill_point(table.series[0].add_point(threads),
                 run_throughput(tm, threads, opt.seconds, make_op(cells)));
    }
    {
      TmUniverse<H> u(universe_config(opt));
      std::vector<TVar<TmWord>> cells(kCells);
      HybridNorec<H> tm(u);
      fill_point(table.series[1].add_point(threads),
                 run_throughput(tm, threads, opt.seconds, make_op(cells)));
    }
    {
      TmUniverse<H> u(universe_config(opt));
      std::vector<TVar<TmWord>> cells(kCells);
      PhasedTm<H> tm(u);
      fill_point(table.series[2].add_point(threads),
                 run_throughput(tm, threads, opt.seconds, make_op(cells)));
    }
    {
      TmUniverse<H> u(universe_config(opt));
      std::vector<TVar<TmWord>> cells(kCells);
      Tl2<H> tm(u);
      fill_point(table.series[3].add_point(threads),
                 run_throughput(tm, threads, opt.seconds, make_op(cells)));
    }
  }
}

}  // namespace

RHTM_SCENARIO(ext_hybrids, "§1 (ext)",
              "RH1-Mix100 vs Hybrid NOrec vs Phased TM, incl. genuine capacity-abort case") {
  report::BenchReport rep;
  // Table (a) follows --substrate; table (b) is pinned to the simulator, so
  // the report-level stamp derives from the shared naming: the simulator's
  // own name when the substrates coincide, the mixed marker otherwise.
  rep.substrate = opt.substrate == SubstrateTraits<HtmSim>::kKind
                      ? SubstrateTraits<HtmSim>::kName
                      : kMixedSubstrateName;
  rep.set_meta("workload", "constant_rbtree/100000 + oversized-tx counter array");
  rep.set_meta("note",
               "capacity table: NOrec's abort ratio spikes (global seqlock), PhasedTM pins "
               "to TL2 (one oversized tx drags all threads to software), RH1 pays only "
               "per-transaction fallback costs");
  dispatch_substrate(opt, [&]<class H>(SubstrateTag<H>) { run_no_pressure<H>(opt, rep); });
  run_capacity_pressure_table(opt, rep);
  return rep;
}

}  // namespace rhtm::bench
