// Ablation A3 — the paper's §1.2 headroom claim: the RH1 slow-path commit
// transaction touches *metadata only* (one stripe word per ~4 data words at
// 32-byte stripes), so transactions ~4× larger than the hardware budget can
// still commit with a hardware-assisted commit; beyond that, RH2 and the
// slow-slow path take over. This bench sweeps the transaction footprint on a
// fixed simulated-HTM capacity and reports which path committed.

#include <array>

#include "registry.h"

namespace rhtm::bench {

RHTM_SCENARIO(ablation_capacity, "§1.2 (A3)",
              "fast -> RH1-slow -> RH2 -> slow-slow escalation vs transaction footprint") {
  constexpr std::size_t kCapacity = 128;  // HTM budget, in tracked entries
  UniverseConfig ucfg;
  ucfg.htm.max_read_set = kCapacity;
  ucfg.htm.max_write_set = kCapacity;
  ucfg.htm.line_shift = 3;              // one word per HTM line: exact accounting
  ucfg.stripe.granularity_log2 = 5;     // 4 words per stripe — the paper's ratio
  TmUniverse<HtmSim> universe(ucfg);

  SimHybridTm::Config cfg;
  cfg.slow_retry_percent = 100;
  SimHybridTm tm(universe, cfg);
  SimHybridTm::ThreadCtx ctx(tm);

  // A contiguous TM array: transactions read a prefix of `len` words and
  // write every 16th of them (read-dominated, like the paper's tree ops).
  constexpr std::size_t kWords = 4096;
  std::vector<TVar<TmWord>> data(kWords);

  report::BenchReport rep;
  rep.substrate = SubstrateTraits<HtmSim>::kName;
  rep.set_meta("htm_budget_entries", std::to_string(kCapacity));
  rep.set_meta("note",
               "expectation: fast dies past the budget; the RH1 slow commit (metadata-only "
               "HTM) survives to ~4x that; larger still falls to RH2 / slow-slow");
  report::TableData& table = rep.add_table(
      "Ablation A3 - slow-path capacity headroom (HTM budget=" + std::to_string(kCapacity) +
          " entries, stripes of 4 words, sim)",
      report::TableStyle::kWide, "tx_words", "fast_pct");
  report::SeriesData& series = table.add_series("RH1-Mix100");

  for (const std::size_t len : {32ul, 96ul, 160ul, 320ul, 480ul, 640ul, 1280ul, 2560ul}) {
    const int kOps = std::max(4, static_cast<int>(opt.seconds * 4000));
    TxStats before = ctx.stats;
    for (int i = 0; i < kOps; ++i) {
      tm.atomically(ctx, [&](auto& tx) {
        TmWord sum = 0;
        for (std::size_t w = 0; w < len; ++w) {
          sum += data[w].read(tx);
          if (w % 16 == 0) data[w].write(tx, sum);
        }
        do_not_optimize(sum);
      });
    }
    std::array<std::uint64_t, static_cast<std::size_t>(ExecPath::kCount)> delta{};
    for (std::size_t p = 0; p < delta.size(); ++p) {
      delta[p] = ctx.stats.commits_by_path[p] - before.commits_by_path[p];
    }
    const double total = static_cast<double>(kOps);
    const auto pct = [&](ExecPath p) {
      return 100.0 * static_cast<double>(delta[static_cast<std::size_t>(p)]) / total;
    };
    report::Point& point = series.add_point(static_cast<double>(len));
    point.set("fast_pct", pct(ExecPath::kRh1Fast));
    point.set("rh1_slow_pct", pct(ExecPath::kRh1Slow));
    point.set("rh2_pct", pct(ExecPath::kRh2Slow));
    point.set("slow_slow_pct", pct(ExecPath::kRh2SlowSlow));
  }
  return rep;
}

}  // namespace rhtm::bench
