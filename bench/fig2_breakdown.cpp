// Figure 2 (middle + bottom) — single-thread speedup (normalised to TL2) and
// single-thread performance breakdown for the 100K-node constant RB-tree at
// 20% and 80% mutations.
//
// Breakdown semantics follow the paper's table: "Read/Write Time" is time in
// the read/write *barrier* — a path with no barrier (HTM reads and writes,
// RH1-fast reads) reports zero by construction and its memory accesses count
// as Private time. Commit time includes transaction begin/commit machinery;
// InterTX is everything between transactions (key selection, RNG, loop).

#include <array>

#include "registry.h"
#include "workloads/constant_rbtree.h"
#include "workloads/timed_handle.h"

namespace rhtm::bench {
namespace {

struct Row {
  const char* name;
  BreakdownResult breakdown;
  double plain_ops_per_sec = 0;  ///< untimed run — rdtsc wrapping inflates
                                 ///< barrier paths, so speedups use this
};

/// One transaction of the RB-tree workload through a TimedHandle with the
/// read/write timing flags of the series.
template <bool kTimeReads, bool kTimeWrites, class Tm, class Ctx>
void one_op(Tm& tm, Ctx& ctx, Xoshiro256& rng, TxStats& stats, std::uint64_t& body_cycles,
            ConstantRbTree& tree, unsigned write_percent) {
  const std::uint64_t key = rng.below(2 * tree.size());
  const bool is_write = rng.percent_chance(write_percent);
  tm.atomically(ctx, [&](auto& tx) {
    const std::uint64_t t0 = rdtsc();
    TimedHandle<std::decay_t<decltype(tx)>, kTimeReads, kTimeWrites> timed(tx, stats);
    if (is_write) {
      (void)tree.update(timed, key, rng.next_u64(), rng);
    } else {
      TmWord sink = 0;
      (void)tree.lookup(timed, key, &sink);
      do_not_optimize(sink);
    }
    body_cycles += rdtsc() - t0;
  });
}

template <class H>
void run_breakdowns(const Options& opt, report::BenchReport& rep, ConstantRbTree& tree,
                    unsigned write_percent) {
  TmUniverse<H> universe(universe_config(opt));
  const double secs = opt.seconds * 2;  // single point per series; can afford more

  // Untimed single-thread throughput (for the speedup column).
  const auto plain_run = [&](auto& tm) {
    const ThroughputResult r = run_throughput(
        tm, 1, secs, [&](auto& m, auto& ctx, Xoshiro256& rng, unsigned) {
          const std::uint64_t key = rng.below(2 * tree.size());
          if (rng.percent_chance(write_percent)) {
            m.atomically(ctx, [&](auto& tx) { (void)tree.update(tx, key, rng.next_u64(), rng); });
          } else {
            TmWord sink = 0;
            m.atomically(ctx, [&](auto& tx) { (void)tree.lookup(tx, key, &sink); });
            do_not_optimize(sink);
          }
        });
    return r.seconds > 0 ? static_cast<double>(r.total_ops) / r.seconds : 0.0;
  };

  std::array<Row, 5> rows{};
  std::size_t n = 0;

  {  // RH1 Slow — the mixed slow-path only (software body, HTM commit)
    typename HybridTm<H>::Config cfg;
    cfg.force_slow_path = true;
    HybridTm<H> tm(universe, cfg);
    rows[n++] = {"RH1-Slow",
                 run_breakdown(tm, secs,
                               [&](auto& m, auto& ctx, Xoshiro256& rng, TxStats& stats,
                                   std::uint64_t& body) {
                                 one_op<true, true>(m, ctx, rng, stats, body, tree, write_percent);
                               }),
                 plain_run(tm)};
  }
  {  // TL2
    Tl2<H> tm(universe);
    rows[n++] = {"TL2",
                 run_breakdown(tm, secs,
                               [&](auto& m, auto& ctx, Xoshiro256& rng, TxStats& stats,
                                   std::uint64_t& body) {
                                 one_op<true, true>(m, ctx, rng, stats, body, tree, write_percent);
                               }),
                 plain_run(tm)};
  }
  {  // Standard HyTM (hardware only) — barriers on reads and writes
    typename StandardHytm<H>::Config cfg;
    cfg.hardware_only = true;
    StandardHytm<H> tm(universe, cfg);
    rows[n++] = {"StandardHyTM",
                 run_breakdown(tm, secs,
                               [&](auto& m, auto& ctx, Xoshiro256& rng, TxStats& stats,
                                   std::uint64_t& body) {
                                 one_op<true, true>(m, ctx, rng, stats, body, tree, write_percent);
                               }),
                 plain_run(tm)};
  }
  {  // RH1 Fast — write barrier only (version store); reads uninstrumented
    typename HybridTm<H>::Config cfg;
    cfg.slow_retry_percent = 0;
    HybridTm<H> tm(universe, cfg);
    rows[n++] = {"RH1-Fast",
                 run_breakdown(tm, secs,
                               [&](auto& m, auto& ctx, Xoshiro256& rng, TxStats& stats,
                                   std::uint64_t& body) {
                                 one_op<false, true>(m, ctx, rng, stats, body, tree,
                                                     write_percent);
                               }),
                 plain_run(tm)};
  }
  {  // HTM — no barriers at all
    HtmOnly<H> tm(universe);
    rows[n++] = {"HTM",
                 run_breakdown(tm, secs,
                               [&](auto& m, auto& ctx, Xoshiro256& rng, TxStats& stats,
                                   std::uint64_t& body) {
                                 one_op<false, false>(m, ctx, rng, stats, body, tree,
                                                      write_percent);
                               }),
                 plain_run(tm)};
  }

  const double tl2_ops = rows[1].plain_ops_per_sec;

  report::TableData& table = rep.add_table(
      "Figure 2 - single-thread breakdown, RB-Tree " + std::to_string(write_percent) +
          "% mutations (substrate=" + opt.substrate_name() + ")",
      report::TableStyle::kWide, "write_percent", "speedup_vs_tl2");
  for (std::size_t i = 0; i < n; ++i) {
    const BreakdownResult& b = rows[i].breakdown;
    report::Point& p = table.add_series(rows[i].name).add_point(write_percent);
    p.set("read_pct", b.read_pct);
    p.set("write_pct", b.write_pct);
    p.set("commit_pct", b.commit_pct);
    p.set("private_pct", b.private_pct);
    p.set("intertx_pct", b.intertx_pct);
    p.set("reads", static_cast<double>(b.reads));
    p.set("writes", static_cast<double>(b.writes));
    p.set("aborts", static_cast<double>(b.aborts));
    p.set("commits", static_cast<double>(b.commits));
    p.set("speedup_vs_tl2", tl2_ops > 0 ? rows[i].plain_ops_per_sec / tl2_ops : 0.0);
  }
}

template <class H>
void run_fig2_breakdown(const Options& opt, report::BenchReport& rep) {
  ConstantRbTree tree(100'000);
  run_breakdowns<H>(opt, rep, tree, 20);
  run_breakdowns<H>(opt, rep, tree, 80);
}

}  // namespace

RHTM_SCENARIO(fig2_breakdown, "Fig. 2 (mid+bot)",
              "Single-thread speedup vs TL2 + read/write/commit/private/intertx breakdown") {
  report::BenchReport rep;
  rep.substrate = opt.substrate_name();
  rep.set_meta("workload", "constant_rbtree/100000");
  rep.set_meta("write_percents", "20,80");
  dispatch_substrate(opt, [&]<class H>(SubstrateTag<H>) { run_fig2_breakdown<H>(opt, rep); });
  return rep;
}

}  // namespace rhtm::bench
