// Figure 3 (left) — Constant Hash Table, 20% writes, threads 1..20.
// Series: HTM, Standard HyTM, TL2, RH1 Mixed 100.
//
// Short transactions and highly distributed access: HTM's edge over TL2
// shrinks (~40% in the paper), the abort ratio is tiny (~3%), Standard HyTM
// stays down at STM level while RH1 Mixed 100 keeps the HTM benefit.
//
// Size note: the paper's figure says 10K elements while §3.3's text says
// 1000K; we default to the figure's 10K (--full switches to 1000K).

#include "registry.h"
#include "workloads/constant_hashtable.h"

namespace rhtm::bench {
namespace {

template <class H>
void run_fig3_hash(const Options& opt, report::BenchReport& rep) {
  const std::size_t elems = opt.full ? 1'000'000 : 10'000;
  ConstantHashTable table_ds(elems);
  constexpr unsigned kWritePercent = 20;

  TmUniverse<H> universe(universe_config(opt));
  report::TableData& table = rep.add_table(
      std::to_string(elems) + " Elements Constant Hash Table, 20% mutations (substrate=" +
      std::string(opt.substrate_name()) + ") - Figure 3 left");
  rep.set_meta("workload", "constant_hashtable/" + std::to_string(elems));

  auto op = [&](auto& tm, auto& ctx, Xoshiro256& rng, unsigned) {
    const std::uint64_t key = rng.below(2 * elems);
    if (rng.percent_chance(kWritePercent)) {
      tm.atomically(ctx, [&](auto& tx) { (void)table_ds.update(tx, key, rng.next_u64()); });
    } else {
      TmWord sink = 0;
      tm.atomically(ctx, [&](auto& tx) { (void)table_ds.query(tx, key, &sink); });
      do_not_optimize(sink);
    }
  };

  run_figure(universe, table,
             {Series::kHtm, Series::kStdHytm, Series::kTl2, Series::kRh1Mix100}, opt, op);
}

}  // namespace

RHTM_SCENARIO(fig3_hashtable, "Fig. 3 (left)",
              "Constant hash table, 20% mutations: short distributed transactions") {
  report::BenchReport rep;
  rep.substrate = opt.substrate_name();
  rep.set_meta("write_percent", "20");
  dispatch_substrate(opt, [&]<class H>(SubstrateTag<H>) { run_fig3_hash<H>(opt, rep); });
  return rep;
}

}  // namespace rhtm::bench
