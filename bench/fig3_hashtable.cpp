// Figure 3 (left) — Constant Hash Table, 20% writes, threads 1..20.
// Series: HTM, Standard HyTM, TL2, RH1 Mixed 100.
//
// Short transactions and highly distributed access: HTM's edge over TL2
// shrinks (~40% in the paper), the abort ratio is tiny (~3%), Standard HyTM
// stays down at STM level while RH1 Mixed 100 keeps the HTM benefit.
//
// Size note: the paper's figure says 10K elements while §3.3's text says
// 1000K; we default to the figure's 10K (--full switches to 1000K).

#include "bench_common.h"
#include "workloads/constant_hashtable.h"

namespace rhtm::bench {
namespace {

template <class H>
void run(const Options& opt) {
  const std::size_t elems = opt.full ? 1'000'000 : 10'000;
  ConstantHashTable table_ds(elems);
  constexpr unsigned kWritePercent = 20;

  TmUniverse<H> universe;
  Table table(std::to_string(elems) + " Elements Constant Hash Table, 20% mutations (substrate=" +
                  std::string(opt.substrate_name()) + ") - Figure 3 left",
              opt.threads);

  auto op = [&](auto& tm, auto& ctx, Xoshiro256& rng, unsigned) {
    const std::uint64_t key = rng.below(2 * elems);
    if (rng.percent_chance(kWritePercent)) {
      tm.atomically(ctx, [&](auto& tx) { (void)table_ds.update(tx, key, rng.next_u64()); });
    } else {
      TmWord sink = 0;
      tm.atomically(ctx, [&](auto& tx) { (void)table_ds.query(tx, key, &sink); });
      do_not_optimize(sink);
    }
  };

  run_figure(universe, table, {Series::kHtm, Series::kStdHytm, Series::kTl2, Series::kRh1Mix100},
             opt, op);
  table.print();
}

}  // namespace
}  // namespace rhtm::bench

int main(int argc, char** argv) {
  const auto opt = rhtm::bench::Options::parse(argc, argv);
  if (opt.use_sim) {
    rhtm::bench::run<rhtm::HtmSim>(opt);
  } else {
    rhtm::bench::run<rhtm::HtmEmul>(opt);
  }
  return 0;
}
