// Dynamic-workload scenario — a red-black tree whose inserts and deletes
// really rebalance (rotations and recoloring inside the transactions), run
// through EVERY protocol. Two tables:
//
//  1. The mutating tree itself, all eight series: transaction footprints
//     vary with where each rebalance terminates, so the capacity
//     escalation chain is exercised by the workload, not by knobs.
//  2. The headline constant-vs-mutating comparison at the paper's Fig. 1
//     series set: the same key-space, the same live size, the same mix —
//     one structure never changes shape, the other restructures. The
//     `mut_over_const` metric on each mutating point quantifies exactly
//     what the paper's constant-shape methodology hides.

#include <memory>

#include "registry.h"
#include "workloads/constant_rbtree.h"
#include "workloads/mutating_rbtree.h"

namespace rhtm::bench {
namespace {

/// Builds a mutating tree over the key domain [0, domain) at the
/// half-occupancy steady state.
std::unique_ptr<MutatingRbTree> make_populated_tree(std::size_t domain) {
  auto tree = std::make_unique<MutatingRbTree>(domain);
  populate_even_keys(*tree);
  return tree;
}

/// The mutating mix: of `write_percent` mutating ops, half insert and half
/// erase a uniform key, so the live size stays near domain/2 while the
/// shape churns.
auto mutating_op(MutatingRbTree& tree, std::size_t domain, unsigned write_percent) {
  return [&tree, domain, write_percent](auto& tm, auto& ctx, Xoshiro256& rng, unsigned) {
    const std::uint64_t key = rng.below(domain);
    if (rng.percent_chance(write_percent)) {
      if (rng.percent_chance(50)) {
        tm.atomically(ctx, [&](auto& tx) { (void)tree.insert(tx, key, rng.next_u64()); });
      } else {
        tm.atomically(ctx, [&](auto& tx) { (void)tree.erase(tx, key); });
      }
    } else {
      TmWord sink = 0;
      tm.atomically(ctx, [&](auto& tx) { (void)tree.lookup(tx, key, &sink); });
      do_not_optimize(sink);
    }
  };
}

template <class H>
void run_mutating_tree(const Options& opt, report::BenchReport& rep, std::size_t domain) {
  constexpr unsigned kWritePercent = 20;

  {
    auto tree = make_populated_tree(domain);
    TmUniverse<H> universe(universe_config(opt));
    report::TableData& table = rep.add_table(
        std::to_string(domain / 2) + "-node Mutating RB-Tree (domain " +
        std::to_string(domain) + "), 20% structural mutations, all protocols (substrate=" +
        std::string(opt.substrate_name()) + ")");
    run_figure(universe, table, all_series(), opt,
               mutating_op(*tree, domain, kWritePercent));
  }

  // Headline comparison: constant vs mutating at the Fig. 1 series set,
  // matched key-space and live size. ConstantRbTree(n) holds the odd keys
  // of [0, 2n) and draws keys from that domain, so n = domain/2 gives both
  // structures ~domain/2 live nodes, ~50% hit rate, the same mix.
  const std::vector<Series> fig1_series = {Series::kHtm, Series::kStdHytm, Series::kTl2,
                                           Series::kRh1Fast};
  report::TableData& cmp = rep.add_table(
      "Constant vs mutating RB-tree, " + std::to_string(domain / 2) + " live nodes, 20% "
      "mutations (-const overwrites in place, -mut rebalances; mut_over_const on -mut rows)");
  {
    ConstantRbTree constant(domain / 2);
    TmUniverse<H> universe(universe_config(opt));
    auto op = [&](auto& tm, auto& ctx, Xoshiro256& rng, unsigned) {
      const std::uint64_t key = rng.below(domain);
      if (rng.percent_chance(kWritePercent)) {
        tm.atomically(ctx, [&](auto& tx) { (void)constant.update(tx, key, rng.next_u64(), rng); });
      } else {
        TmWord sink = 0;
        tm.atomically(ctx, [&](auto& tx) { (void)constant.lookup(tx, key, &sink); });
        do_not_optimize(sink);
      }
    };
    run_figure(universe, cmp, fig1_series, opt, op, true, "-const");
  }
  {
    auto tree = make_populated_tree(domain);
    TmUniverse<H> universe(universe_config(opt));
    run_figure(universe, cmp, fig1_series, opt,
               mutating_op(*tree, domain, kWritePercent), true, "-mut");
  }
  // Quantify the gap: mutating / constant throughput per (series, x).
  for (const Series s : fig1_series) {
    const report::SeriesData* cs = cmp.find_series(std::string(to_string(s)) + "-const");
    for (report::SeriesData& series : cmp.series) {
      if (series.name != std::string(to_string(s)) + "-mut") continue;
      for (report::Point& p : series.points) {
        if (cs == nullptr) continue;
        for (const report::Point& cp : cs->points) {
          const double* cv = cp.find("total_ops");
          const double* mv = p.find("total_ops");
          if (cp.x == p.x && cv != nullptr && mv != nullptr && *cv > 0) {
            p.set("mut_over_const", *mv / *cv);
          }
        }
      }
    }
  }
}

}  // namespace

RHTM_SCENARIO(mutating_tree, "extension",
              "Mutating RB-tree (real rotations in-transaction), every protocol + "
              "constant-vs-mutating headline comparison") {
  report::BenchReport rep;
  rep.substrate = opt.substrate_name();
  const std::size_t domain = opt.full ? 131072 : 16384;
  rep.set_meta("workload", "mutating_rbtree/domain=" + std::to_string(domain));
  rep.set_meta("write_percent", "20");
  rep.set_meta("comparison", "constant_rbtree/" + std::to_string(domain / 2));
  dispatch_substrate(opt,
                     [&]<class H>(SubstrateTag<H>) { run_mutating_tree<H>(opt, rep, domain); });
  return rep;
}

}  // namespace rhtm::bench
