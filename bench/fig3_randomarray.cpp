// Figure 3 (right) — 128K Random Array: speedup of RH1 Fast over Standard
// HyTM at 20 threads, for transaction lengths {400, 200, 100, 40} and write
// percentages {0, 20, 50, 90}.
//
// Paper shape: the speedup decreases as the write fraction grows (RH1's
// writes are instrumented too) but stays ≥ ~1.3× even at 90% writes for
// long transactions, because Standard HyTM additionally *reads* metadata on
// every access, generating far more coherence traffic.

#include "registry.h"
#include "workloads/random_array.h"

namespace rhtm::bench {
namespace {

constexpr unsigned kLengths[] = {400, 200, 100, 40};
constexpr unsigned kWritePercents[] = {0, 20, 50, 90};

template <class H>
void run_fig3_array(const Options& opt, report::BenchReport& rep) {
  RandomArray array(128 * 1024);
  const unsigned threads = opt.threads.empty() ? 20 : opt.threads.back();
  rep.set_meta("threads", std::to_string(threads));

  TmUniverse<H> universe(universe_config(opt));
  report::TableData& table = rep.add_table(
      "Figure 3 right - 128K Random Array, RH1-Fast speedup vs Standard HyTM, " +
          std::to_string(threads) + " threads (substrate=" + opt.substrate_name() + ")",
      report::TableStyle::kSweep, "write_percent", "speedup");
  for (const unsigned len : kLengths) table.add_series("len" + std::to_string(len));

  for (const unsigned write_pct : kWritePercents) {
    for (std::size_t li = 0; li < std::size(kLengths); ++li) {
      const unsigned len = kLengths[li];
      auto op = [&array, len, write_pct](auto& tm, auto& ctx, Xoshiro256& rng, unsigned) {
        tm.atomically(ctx, [&](auto& tx) { do_not_optimize(array.op(tx, rng, len, write_pct)); });
      };
      const auto [inject_bp, tl2_result] =
          calibrate_tl2(universe, threads, opt.calib_seconds, op);
      (void)tl2_result;
      const ThroughputResult rh1 =
          run_series_point(universe, Series::kRh1Fast, threads, opt.seconds, inject_bp, op);
      const ThroughputResult hytm =
          run_series_point(universe, Series::kStdHytm, threads, opt.seconds, inject_bp, op);
      const double speedup = hytm.total_ops > 0
                                 ? static_cast<double>(rh1.total_ops) /
                                       static_cast<double>(hytm.total_ops)
                                 : 0.0;
      report::Point& p = table.series[li].add_point(write_pct);
      p.set("speedup", speedup);
      p.set("rh1_total_ops", static_cast<double>(rh1.total_ops));
      p.set("hytm_total_ops", static_cast<double>(hytm.total_ops));
    }
  }
}

}  // namespace

RHTM_SCENARIO(fig3_randomarray, "Fig. 3 (right)",
              "128K random array: RH1-Fast speedup over StdHyTM vs tx length x write %") {
  report::BenchReport rep;
  rep.substrate = opt.substrate_name();
  rep.set_meta("workload", "random_array/131072");
  dispatch_substrate(opt, [&]<class H>(SubstrateTag<H>) { run_fig3_array<H>(opt, rep); });
  return rep;
}

}  // namespace rhtm::bench
