// Figure 3 (right) — 128K Random Array: speedup of RH1 Fast over Standard
// HyTM at 20 threads, for transaction lengths {400, 200, 100, 40} and write
// percentages {0, 20, 50, 90}.
//
// Paper shape: the speedup decreases as the write fraction grows (RH1's
// writes are instrumented too) but stays ≥ ~1.3× even at 90% writes for
// long transactions, because Standard HyTM additionally *reads* metadata on
// every access, generating far more coherence traffic.

#include "bench_common.h"
#include "workloads/random_array.h"

namespace rhtm::bench {
namespace {

constexpr unsigned kLengths[] = {400, 200, 100, 40};
constexpr unsigned kWritePercents[] = {0, 20, 50, 90};

template <class H>
void run(const Options& opt) {
  RandomArray array(128 * 1024);
  const unsigned threads = opt.threads.empty() ? 20 : opt.threads.back();

  TmUniverse<H> universe;
  std::printf("# Figure 3 right - 128K Random Array, RH1-Fast speedup vs Standard HyTM, "
              "%u threads (substrate=%s)\n",
              threads, opt.substrate_name());
  std::printf("%-8s", "writes%");
  for (const unsigned len : kLengths) std::printf(" %10s%u", "len", len);
  std::printf("\n");

  for (const unsigned write_pct : kWritePercents) {
    std::printf("%-8u", write_pct);
    for (const unsigned len : kLengths) {
      auto op = [&array, len, write_pct](auto& tm, auto& ctx, Xoshiro256& rng, unsigned) {
        tm.atomically(ctx, [&](auto& tx) { do_not_optimize(array.op(tx, rng, len, write_pct)); });
      };
      const auto [inject_bp, tl2_point] =
          calibrate_tl2(universe, threads, opt.calib_seconds, op);
      (void)tl2_point;
      const Point rh1 =
          run_series_point(universe, Series::kRh1Fast, threads, opt.seconds, inject_bp, op);
      const Point hytm =
          run_series_point(universe, Series::kStdHytm, threads, opt.seconds, inject_bp, op);
      const double speedup = hytm.total_ops > 0
                                 ? static_cast<double>(rh1.total_ops) /
                                       static_cast<double>(hytm.total_ops)
                                 : 0.0;
      std::printf(" %13.2f", speedup);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace rhtm::bench

int main(int argc, char** argv) {
  const auto opt = rhtm::bench::Options::parse(argc, argv);
  if (opt.use_sim) {
    rhtm::bench::run<rhtm::HtmSim>(opt);
  } else {
    rhtm::bench::run<rhtm::HtmEmul>(opt);
  }
  return 0;
}
