#!/usr/bin/env python3
"""Regression gate over two directories of BENCH_<scenario>.json reports.

Compares the *ratio of two series* (default: RH1-Fast / TL2) per
(scenario, table, x) between a baseline run and a fresh run, and fails when
the fresh ratio has regressed by more than --threshold (default 25%). The
gate is direction-aware: throughput-shaped primary metrics regress when the
ratio drops, latency-shaped ones (p50_us/p99_us/p999_us) when it rises.
Ratios between series measured in the same process are robust to runner
noise where absolute ops/sec are not — both series speed up or slow down
together on a cold/hot runner, their quotient does not (see
docs/BENCHMARKS.md, "Diffing two runs").

Usage:
    check_regression.py OLD_DIR NEW_DIR [--numerator RH1-Fast]
                        [--denominator TL2] [--threshold 0.25]
    check_regression.py --self-test

Exit status: 0 = no gated regression (including "nothing comparable", e.g.
the very first CI run has no baseline artifact); 1 = regression beyond the
threshold; 2 = usage error.
"""

import argparse
import glob
import json
import os
import sys
import tempfile


def series_points(table, name):
    """{x: primary-metric value} for one named series of a table."""
    for series in table["series"]:
        if series["name"] == name:
            out = {}
            for point in series["points"]:
                value = point["metrics"].get(table["primary_metric"])
                if isinstance(value, (int, float)):
                    out[point["x"]] = float(value)
            return out
    return None


# The gate is direction-aware: a table's primary metric decides which way a
# ratio move counts as a regression. Throughput-shaped metrics regress when
# the ratio DROPS; latency-shaped metrics (the service scenario's open-loop
# tail percentiles) and cost-shaped metrics (the durable scenario's
# fences-per-commit persistence cost) regress when the ratio RISES — a
# cheaper RH1 tail or fence bill must never fail the gate. A primary metric
# in neither set has no known direction and its table is skipped, but
# VISIBLY (an info line per table), never silently.
GATED_HIGHER_IS_BETTER = {"total_ops", "ops_per_sec", "achieved_per_sec"}
GATED_LOWER_IS_BETTER = {
    "p50_us",
    "p90_us",
    "p99_us",
    "p999_us",
    "fences_per_commit",
    "wasted_speculation_pct",
    "cross_socket_penalty",
}


def metric_direction(metric):
    """'higher' / 'lower' for gateable metrics, None for unknown direction."""
    if metric in GATED_HIGHER_IS_BETTER:
        return "higher"
    if metric in GATED_LOWER_IS_BETTER:
        return "lower"
    return None


def ratios(report, numerator, denominator):
    """[(table-title, x, num/den, direction)] for every x where both series
    have data, over tables whose primary metric has a known direction."""
    out = []
    for table in report.get("tables", []):
        direction = metric_direction(table.get("primary_metric"))
        if direction is None:
            continue
        num = series_points(table, numerator)
        den = series_points(table, denominator)
        if num is None or den is None:
            continue
        for x in sorted(num.keys() & den.keys(), key=str):
            if den[x] > 0 and num[x] > 0:
                out.append((table["title"], x, num[x] / den[x], direction))
    return out


def gateable_titles(report):
    """Titles of the tables the gate would look at (known-direction metric)."""
    return {
        t["title"]
        for t in report.get("tables", [])
        if metric_direction(t.get("primary_metric")) is not None
    }


def compare(old_dir, new_dir, numerator, denominator, threshold, out=sys.stdout,
            summary=None):
    """Returns (compared, regressions): point counts across all reports.

    Reports or gateable tables present in only one of {baseline, current}
    are surfaced as explicit "new"/"removed" info lines — a new scenario is
    visibly ungated until its first baseline lands, it never silently
    dodges the gate; a vanished one is visible too.

    When `summary` is a dict it is filled in with the material for the
    one-line end verdict: "points" (gated point count), "tables" (the set of
    (report, table-title) pairs that contributed points) and "worst" — the
    single point whose ratio moved furthest in its table's BAD direction,
    as (severity, report, title, x, change) where severity > 1 means
    movement toward regression and the threshold trips at
    severity > 1/(1-threshold).
    """
    compared = 0
    regressions = []
    gated_tables = set()
    worst = None
    new_names = {
        os.path.basename(p) for p in glob.glob(os.path.join(new_dir, "BENCH_*.json"))
    }
    old_names = {
        os.path.basename(p) for p in glob.glob(os.path.join(old_dir, "BENCH_*.json"))
    }
    for name in sorted(old_names - new_names):
        print(f"  {name}: removed (present in baseline only, nothing to gate)", file=out)
    for name in sorted(new_names):
        new_path = os.path.join(new_dir, name)
        old_path = os.path.join(old_dir, name)
        if not os.path.exists(old_path):
            print(f"  {name}: new report (no baseline yet, ungated this run)", file=out)
            continue
        with open(old_path) as f:
            old_report = json.load(f)
        with open(new_path) as f:
            new_report = json.load(f)
        old_titles = gateable_titles(old_report)
        new_titles = gateable_titles(new_report)
        for t in new_report.get("tables", []):
            metric = t.get("primary_metric")
            if metric_direction(metric) is None:
                print(
                    f"  {name} | {t.get('title')}: primary metric '{metric}' "
                    f"has no gating direction; table not gated",
                    file=out,
                )
        for title in sorted(new_titles - old_titles):
            print(f"  {name} | {title}: new table (no baseline yet, ungated this run)",
                  file=out)
        for title in sorted(old_titles - new_titles):
            print(f"  {name} | {title}: table removed (present in baseline only)", file=out)
        old_ratios = {
            (t, x): r for t, x, r, _ in ratios(old_report, numerator, denominator)
        }
        new_keys = set()
        for title, x, new_ratio, direction in ratios(new_report, numerator, denominator):
            new_keys.add((title, x))
            old_ratio = old_ratios.get((title, x))
            if old_ratio is None:
                # Whole-table novelty is already reported above; only a point
                # missing from a table both runs share needs its own line.
                if title in old_titles:
                    print(
                        f"  {name} | {title} | x={x}: new point "
                        f"(no baseline ratio, ungated this run)",
                        file=out,
                    )
                continue
            if old_ratio <= 0:
                # ratios() only emits positive quotients today, but a skip
                # here must never be silent: a nonpositive baseline would
                # otherwise un-gate the point without a trace.
                print(
                    f"  {name} | {title} | x={x}: baseline ratio "
                    f"{old_ratio:.3f} <= 0 is not gateable; skipping",
                    file=out,
                )
                continue
            compared += 1
            gated_tables.add((name, title))
            change = new_ratio / old_ratio
            # Severity normalizes both directions onto one scale: > 1 means
            # the ratio moved toward regression, whichever way "bad" points
            # for this table. The single worst point feeds the end summary.
            severity = 1.0 / change if direction == "higher" else change
            if worst is None or severity > worst[0]:
                worst = (severity, name, title, x, change)
            # higher-is-better regresses when the ratio drops past the
            # threshold; lower-is-better (latency) when it rises past the
            # reciprocal bound, so the gate is symmetric either way.
            if direction == "higher":
                regressed = change < 1.0 - threshold
            else:
                regressed = change > 1.0 / (1.0 - threshold)
            marker = ""
            if regressed:
                marker = "  <-- REGRESSION"
                regressions.append((name, title, x, old_ratio, new_ratio, change))
            tag = "" if direction == "higher" else " [lower-is-better]"
            print(
                f"  {name} | {title} | x={x}: "
                f"{numerator}/{denominator} {old_ratio:.3f} -> {new_ratio:.3f} "
                f"({change:.2f}x){tag}{marker}",
                file=out,
            )
        # The symmetric direction: a point the baseline gated that the
        # current run no longer produces (trimmed sweep, series gone
        # nonpositive). Whole-table removals are already reported above.
        for title, x in sorted(old_ratios.keys() - new_keys, key=str):
            if title in new_titles:
                print(
                    f"  {name} | {title} | x={x}: point removed "
                    f"(present in baseline only, nothing to gate)",
                    file=out,
                )
    if summary is not None:
        summary["points"] = compared
        summary["tables"] = gated_tables
        summary["worst"] = worst
    return compared, regressions


def self_test():
    def table(rh1, tl2, metric):
        return {
            "title": "Figure 1" if metric == "total_ops" else "latency table",
            "style": "sweep",
            "x": "threads",
            "primary_metric": metric,
            "series": [
                {
                    "name": name,
                    "points": [{"x": t, "metrics": {metric: v * t}} for t in (1, 2, 4)],
                }
                for name, v in (("RH1-Fast", rh1), ("TL2", tl2))
            ],
        }

    def report(rh1, tl2, ns_rh1=10):
        return {
            "schema": "rhtm-bench-report/v1",
            "scenario": "fig1_rbtree",
            "substrate": "emul",
            "tables": [
                table(rh1, tl2, "total_ops"),
                # Lower-is-better table: must never be gated, whichever way
                # its ratio moves.
                table(ns_rh1, 100, "ns_per_call"),
            ],
        }

    def write(dirname, rep):
        with open(os.path.join(dirname, "BENCH_fig1_rbtree.json"), "w") as f:
            json.dump(rep, f)

    sink = open(os.devnull, "w")
    with tempfile.TemporaryDirectory() as tmp:
        old_dir = os.path.join(tmp, "old")
        ok_dir = os.path.join(tmp, "ok")
        bad_dir = os.path.join(tmp, "bad")
        for d in (old_dir, ok_dir, bad_dir):
            os.mkdir(d)
        # Baseline ratio 5.0; "ok" run is globally 3x slower but keeps the
        # ratio (the robustness the gate relies on); "bad" halves the ratio.
        # Both runs swing the latency table's ratio wildly in both
        # directions — it must stay invisible to the gate.
        write(old_dir, report(rh1=500, tl2=100, ns_rh1=100))
        write(ok_dir, report(rh1=167, tl2=33, ns_rh1=10))
        write(bad_dir, report(rh1=250, tl2=100, ns_rh1=1000))

        compared, regressions = compare(old_dir, ok_dir, "RH1-Fast", "TL2", 0.25, sink)
        assert compared == 3, compared
        assert not regressions, regressions

        compared, regressions = compare(old_dir, bad_dir, "RH1-Fast", "TL2", 0.25, sink)
        assert compared == 3, compared
        assert len(regressions) == 3, regressions

        # A missing baseline file is a skip, not a failure.
        empty = os.path.join(tmp, "empty")
        os.mkdir(empty)
        compared, regressions = compare(empty, ok_dir, "RH1-Fast", "TL2", 0.25, sink)
        assert compared == 0 and not regressions

        # New / removed reports and tables must surface as info lines (and
        # never as regressions): a scenario present only in the current run
        # is visibly ungated, one present only in the baseline is visibly
        # gone.
        import io

        with open(os.path.join(old_dir, "BENCH_gone_scenario.json"), "w") as f:
            json.dump(report(rh1=500, tl2=100), f)
        with open(os.path.join(ok_dir, "BENCH_fresh_scenario.json"), "w") as f:
            json.dump(report(rh1=500, tl2=100), f)
        ok_grown = report(rh1=167, tl2=33)
        ok_grown["tables"].append(table(500, 100, "ops_per_sec"))
        ok_grown["tables"][-1]["title"] = "brand-new table"
        write(ok_dir, ok_grown)
        old_grown = report(rh1=500, tl2=100)
        old_grown["tables"].append(table(500, 100, "ops_per_sec"))
        old_grown["tables"][-1]["title"] = "retired table"
        write(old_dir, old_grown)

        log = io.StringIO()
        compared, regressions = compare(old_dir, ok_dir, "RH1-Fast", "TL2", 0.25, log)
        assert compared == 3, compared
        assert not regressions, regressions
        text = log.getvalue()
        assert "BENCH_gone_scenario.json: removed" in text, text
        assert "BENCH_fresh_scenario.json: new report" in text, text
        assert "brand-new table: new table" in text, text
        assert "retired table: table removed" in text, text
        # The unknown-direction table is skipped VISIBLY, never silently.
        assert "'ns_per_call' has no gating direction" in text, text

        # A point present only in the current run of a table BOTH runs share
        # must surface as an explicit "new point" info line (never silently
        # skipped), and must not count as compared.
        sparse_old = os.path.join(tmp, "sparse_old")
        os.mkdir(sparse_old)
        trimmed = report(rh1=500, tl2=100)
        for series in trimmed["tables"][0]["series"]:
            series["points"] = [p for p in series["points"] if p["x"] != 4]
        with open(os.path.join(sparse_old, "BENCH_fig1_rbtree.json"), "w") as f:
            json.dump(trimmed, f)
        log = io.StringIO()
        compared, regressions = compare(sparse_old, ok_dir, "RH1-Fast", "TL2", 0.25, log)
        assert compared == 2, compared
        assert not regressions, regressions
        text = log.getvalue()
        assert "x=4: new point (no baseline ratio" in text, text

        # ... and the symmetric direction: a point the BASELINE had that the
        # current run dropped must surface as "point removed", never shrink
        # the gated set silently.
        sparse_new = os.path.join(tmp, "sparse_new")
        os.mkdir(sparse_new)
        with open(os.path.join(sparse_new, "BENCH_fig1_rbtree.json"), "w") as f:
            json.dump(trimmed, f)
        log = io.StringIO()
        compared, regressions = compare(old_dir, sparse_new, "RH1-Fast", "TL2", 0.25, log)
        assert compared == 2, compared
        assert not regressions, regressions
        text = log.getvalue()
        assert "x=4: point removed (present in baseline only" in text, text

        # Lower-is-better gating: the service scenario's tail-latency tables.
        # A rising RH1/TL2 latency ratio must fail the gate; a falling one
        # (RH1's tail got cheaper) must pass — the exact inversion of the
        # throughput direction. achieved_per_sec rides along as
        # higher-is-better.
        def service_report(p99_rh1, p99_tl2, ach_rh1=400, ach_tl2=100):
            def tbl(metric, rh1, tl2):
                return {
                    "title": f"service {metric} table",
                    "style": "sweep",
                    "x": "offered_rate",
                    "primary_metric": metric,
                    "series": [
                        {
                            "name": name,
                            "points": [
                                {"x": r, "metrics": {metric: v * r}} for r in (1, 2)
                            ],
                        }
                        for name, v in (("RH1-Fast", rh1), ("TL2", tl2))
                    ],
                }

            return {
                "schema": "rhtm-bench-report/v1",
                "scenario": "service",
                "substrate": "emul",
                "tables": [
                    tbl("p99_us", p99_rh1, p99_tl2),
                    tbl("achieved_per_sec", ach_rh1, ach_tl2),
                ],
            }

        svc_old = os.path.join(tmp, "svc_old")
        svc_ok = os.path.join(tmp, "svc_ok")
        svc_bad = os.path.join(tmp, "svc_bad")
        svc_improved = os.path.join(tmp, "svc_improved")
        for d in (svc_old, svc_ok, svc_bad, svc_improved):
            os.mkdir(d)

        def write_svc(dirname, rep):
            with open(os.path.join(dirname, "BENCH_service.json"), "w") as f:
                json.dump(rep, f)

        # Baseline: p99 ratio 0.5, achieved ratio 4.0.
        write_svc(svc_old, service_report(p99_rh1=50, p99_tl2=100))
        # Globally 2x slower run, ratios preserved: passes.
        write_svc(svc_ok, service_report(p99_rh1=100, p99_tl2=200, ach_rh1=200, ach_tl2=50))
        # RH1's tail doubled relative to TL2 (ratio 0.5 -> 1.0): must FAIL,
        # while the unchanged achieved table stays green.
        write_svc(svc_bad, service_report(p99_rh1=100, p99_tl2=100))
        # RH1's tail halved relative to TL2 (ratio 0.5 -> 0.25): an
        # improvement, must PASS (under throughput direction this 0.5x change
        # would have been flagged).
        write_svc(svc_improved, service_report(p99_rh1=25, p99_tl2=100))

        compared, regressions = compare(svc_old, svc_ok, "RH1-Fast", "TL2", 0.25, sink)
        assert compared == 4, compared
        assert not regressions, regressions

        log = io.StringIO()
        compared, regressions = compare(svc_old, svc_bad, "RH1-Fast", "TL2", 0.25, log)
        assert compared == 4, compared
        assert len(regressions) == 2, regressions
        assert all(r[1] == "service p99_us table" for r in regressions), regressions
        assert "[lower-is-better]" in log.getvalue(), log.getvalue()

        compared, regressions = compare(
            svc_old, svc_improved, "RH1-Fast", "TL2", 0.25, sink
        )
        assert compared == 4, compared
        assert not regressions, regressions

        # fences_per_commit gating: the durable scenario's persistence-cost
        # tables are lower-is-better too. RH1 paying more fences per commit
        # relative to TL2 must FAIL; the fence ratio holding (or dropping)
        # while throughput rides along must PASS.
        def durable_report(fpc_rh1, fpc_tl2, ops_rh1=300, ops_tl2=100):
            def tbl(metric, rh1, tl2):
                return {
                    "title": f"durable {metric} table",
                    "style": "sweep",
                    "x": "threads",
                    "primary_metric": metric,
                    "series": [
                        {
                            "name": name,
                            "points": [
                                {"x": t, "metrics": {metric: v * t}} for t in (1, 2)
                            ],
                        }
                        for name, v in (("RH1-Fast", rh1), ("TL2", tl2))
                    ],
                }

            return {
                "schema": "rhtm-bench-report/v1",
                "scenario": "durable",
                "substrate": "sim",
                "tables": [
                    tbl("fences_per_commit", fpc_rh1, fpc_tl2),
                    tbl("total_ops", ops_rh1, ops_tl2),
                ],
            }

        dur_old = os.path.join(tmp, "dur_old")
        dur_ok = os.path.join(tmp, "dur_ok")
        dur_bad = os.path.join(tmp, "dur_bad")
        for d in (dur_old, dur_ok, dur_bad):
            os.mkdir(d)

        def write_dur(dirname, rep):
            with open(os.path.join(dirname, "BENCH_durable.json"), "w") as f:
                json.dump(rep, f)

        # Baseline fence ratio 1.0 (the path-independent fence arithmetic);
        # "ok" halves RH1's fence bill, "bad" doubles it relative to TL2.
        write_dur(dur_old, durable_report(fpc_rh1=9, fpc_tl2=9))
        write_dur(dur_ok, durable_report(fpc_rh1=4.5, fpc_tl2=9))
        write_dur(dur_bad, durable_report(fpc_rh1=18, fpc_tl2=9))

        compared, regressions = compare(dur_old, dur_ok, "RH1-Fast", "TL2", 0.25, sink)
        assert compared == 4, compared
        assert not regressions, regressions

        log = io.StringIO()
        compared, regressions = compare(dur_old, dur_bad, "RH1-Fast", "TL2", 0.25, log)
        assert compared == 4, compared
        assert len(regressions) == 2, regressions
        assert all(r[1] == "durable fences_per_commit table" for r in regressions), regressions
        assert "[lower-is-better]" in log.getvalue(), log.getvalue()
        # wasted_speculation_pct gating: the contention scenario's
        # wasted-work view tables are lower-is-better. The adaptive policy
        # burning MORE speculation relative to the fixed baseline must FAIL;
        # burning less must PASS. Gated with the contention scenario's own
        # series pair (adaptive vs fixed), not RH1-Fast/TL2.
        def contention_report(w_adaptive, w_fixed, ops_adaptive=300, ops_fixed=100):
            def tbl(metric, adaptive, fixed):
                return {
                    "title": f"contention {metric} table",
                    "style": "sweep",
                    "x": "threads",
                    "primary_metric": metric,
                    "series": [
                        {
                            "name": name,
                            "points": [
                                {"x": t, "metrics": {metric: v * t}} for t in (1, 2)
                            ],
                        }
                        for name, v in (
                            ("RH1-Mix100/adaptive", adaptive),
                            ("RH1-Mix100/fixed", fixed),
                        )
                    ],
                }

            return {
                "schema": "rhtm-bench-report/v1",
                "scenario": "contention",
                "substrate": "sim",
                "tables": [
                    tbl("wasted_speculation_pct", w_adaptive, w_fixed),
                    tbl("total_ops", ops_adaptive, ops_fixed),
                ],
            }

        cm_old = os.path.join(tmp, "cm_old")
        cm_ok = os.path.join(tmp, "cm_ok")
        cm_bad = os.path.join(tmp, "cm_bad")
        for d in (cm_old, cm_ok, cm_bad):
            os.mkdir(d)

        def write_cm(dirname, rep):
            with open(os.path.join(dirname, "BENCH_contention.json"), "w") as f:
                json.dump(rep, f)

        # Baseline: adaptive wastes half of what fixed does (ratio 0.5);
        # "ok" drops the ratio further, "bad" pushes it past the bound.
        write_cm(cm_old, contention_report(w_adaptive=10, w_fixed=20))
        write_cm(cm_ok, contention_report(w_adaptive=5, w_fixed=20))
        write_cm(cm_bad, contention_report(w_adaptive=20, w_fixed=20))

        compared, regressions = compare(
            cm_old, cm_ok, "RH1-Mix100/adaptive", "RH1-Mix100/fixed", 0.25, sink
        )
        assert compared == 4, compared
        assert not regressions, regressions

        log = io.StringIO()
        compared, regressions = compare(
            cm_old, cm_bad, "RH1-Mix100/adaptive", "RH1-Mix100/fixed", 0.25, log
        )
        assert compared == 4, compared
        assert len(regressions) == 2, regressions
        assert all(
            r[1] == "contention wasted_speculation_pct table" for r in regressions
        ), regressions
        assert "[lower-is-better]" in log.getvalue(), log.getvalue()

        # cross_socket_penalty gating: the numa scenario's compact/scatter
        # placement-penalty tables are lower-is-better — RH1's cross-socket
        # penalty growing relative to TL2's must FAIL; shrinking (RH1 got
        # MORE placement-robust) must PASS, the exact inversion of the
        # throughput direction.
        def numa_report(pen_rh1, pen_tl2, ops_rh1=300, ops_tl2=100):
            def tbl(metric, rh1, tl2):
                return {
                    "title": f"numa {metric} table",
                    "style": "sweep",
                    "x": "threads",
                    "primary_metric": metric,
                    "series": [
                        {
                            "name": name,
                            "points": [
                                {"x": t, "metrics": {metric: v * t}} for t in (1, 2)
                            ],
                        }
                        for name, v in (("RH1-Fast", rh1), ("TL2", tl2))
                    ],
                }

            return {
                "schema": "rhtm-bench-report/v1",
                "scenario": "numa",
                "substrate": "sim",
                "tables": [
                    tbl("cross_socket_penalty", pen_rh1, pen_tl2),
                    tbl("total_ops", ops_rh1, ops_tl2),
                ],
            }

        numa_old = os.path.join(tmp, "numa_old")
        numa_ok = os.path.join(tmp, "numa_ok")
        numa_bad = os.path.join(tmp, "numa_bad")
        for d in (numa_old, numa_ok, numa_bad):
            os.mkdir(d)

        def write_numa(dirname, rep):
            with open(os.path.join(dirname, "BENCH_numa.json"), "w") as f:
                json.dump(rep, f)

        # Baseline: RH1 and TL2 pay the same placement penalty (ratio 1.0);
        # "ok" halves RH1's penalty, "bad" doubles it relative to TL2.
        write_numa(numa_old, numa_report(pen_rh1=2, pen_tl2=2))
        write_numa(numa_ok, numa_report(pen_rh1=1, pen_tl2=2))
        write_numa(numa_bad, numa_report(pen_rh1=4, pen_tl2=2))

        compared, regressions = compare(numa_old, numa_ok, "RH1-Fast", "TL2", 0.25, sink)
        assert compared == 4, compared
        assert not regressions, regressions

        log = io.StringIO()
        compared, regressions = compare(numa_old, numa_bad, "RH1-Fast", "TL2", 0.25, log)
        assert compared == 4, compared
        assert len(regressions) == 2, regressions
        assert all(
            r[1] == "numa cross_socket_penalty table" for r in regressions
        ), regressions
        assert "[lower-is-better]" in log.getvalue(), log.getvalue()

        # End-summary material: the summary out-param must report the gated
        # point/table counts and pick the single worst-moving point, and the
        # rendered line must carry the PASS/FAIL verdict.
        summary = {}
        compared, regressions = compare(
            old_dir, bad_dir, "RH1-Fast", "TL2", 0.25, sink, summary=summary
        )
        assert summary["points"] == compared == 3, summary
        assert summary["tables"] == {("BENCH_fig1_rbtree.json", "Figure 1")}, summary
        severity, name, _, _, change = summary["worst"]
        assert name == "BENCH_fig1_rbtree.json", summary
        assert abs(change - 0.5) < 1e-9 and abs(severity - 2.0) < 1e-9, summary
        line = summary_line(compared, summary, regressions)
        assert "3 points across 1 tables gated" in line, line
        assert "worst 0.50x" in line and "FAIL (3 regression(s))" in line, line
        summary = {}
        compared, regressions = compare(
            old_dir, ok_dir, "RH1-Fast", "TL2", 0.25, sink, summary=summary
        )
        line = summary_line(compared, summary, regressions)
        assert line.endswith("PASS"), line
        # The "ok" run preserves the throughput ratio (up to integer
        # rounding of 500/3), so the worst severity must sit well inside the
        # threshold's trip point of 1/(1-0.25).
        assert summary["worst"][0] < 1.0 / (1.0 - 0.25), summary
    print("self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old_dir", nargs="?", help="baseline bench-reports directory")
    parser.add_argument("new_dir", nargs="?", help="fresh bench-reports directory")
    parser.add_argument("--numerator", default="RH1-Fast")
    parser.add_argument("--denominator", default="TL2")
    parser.add_argument("--threshold", type=float, default=0.25)
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.old_dir or not args.new_dir:
        parser.print_usage(sys.stderr)
        return 2
    if not os.path.isdir(args.old_dir):
        # First run ever / expired artifact: nothing to gate against.
        print(f"no baseline directory '{args.old_dir}'; skipping gate")
        return 0

    print(
        f"gating {args.numerator}/{args.denominator} per (scenario, table, x), "
        f"threshold {args.threshold:.0%}:"
    )
    summary = {}
    compared, regressions = compare(
        args.old_dir, args.new_dir, args.numerator, args.denominator, args.threshold,
        summary=summary,
    )
    if compared == 0:
        print("summary: 0 points gated (no overlapping tables/series); PASS")
        return 0
    if regressions:
        print(f"\n{len(regressions)} gated regression(s) of {compared} compared points:")
        for name, title, x, old_r, new_r, change in regressions:
            print(f"  {name} | {title} | x={x}: {old_r:.3f} -> {new_r:.3f} ({change:.2f}x)")
    print(summary_line(compared, summary, regressions))
    return 1 if regressions else 0


def summary_line(compared, summary, regressions):
    """The machine-greppable one-line verdict the CI log ends on."""
    worst = summary.get("worst")
    worst_txt = "no movement"
    if worst is not None:
        _, name, title, x, change = worst
        worst_txt = f"worst {change:.2f}x at {name} | {title} | x={x}"
    verdict = f"FAIL ({len(regressions)} regression(s))" if regressions else "PASS"
    return (
        f"summary: {compared} points across {len(summary.get('tables', ()))} "
        f"tables gated; {worst_txt}; {verdict}"
    )


if __name__ == "__main__":
    sys.exit(main())
