#!/usr/bin/env python3
"""Validate and summarize a Chrome-trace-event JSON written by --trace.

The exporter (core/trace_export.h) emits one document per run:

    {"otherData": {"schema": "rhtm-trace/v1", "tsc_hz": ..., ...},
     "traceEvents": [...]}

with one Perfetto track per trace ring ("M" thread_name metadata), an "X"
complete slice per committed transaction named "tx:<tier>" (tier is the
ExecPath the commit landed on), "X" slices for durable phases
("dur:log|mark|apply", nested inside their transaction), and "i" instant
events for attempts, aborts, escalations and contention-manager decisions.

This script is the other half of the exporter's contract: it structurally
validates the document, then attributes transaction time to named tiers
and prints where the traced cycles went.

Usage:
    trace_summary.py TRACE.json            summarize (always validates)
    trace_summary.py TRACE.json --check    exit 1 unless the document is
                                           valid AND >= --min-attribution
                                           (default 95%) of in-transaction
                                           time is attributed to known tiers
    trace_summary.py --self-test

Exit status: 0 = ok; 1 = validation/attribution failure; 2 = usage error.
"""

import argparse
import json
import sys

SCHEMA = "rhtm-trace/v1"

# ExecPath::to_string (core/stats.h) — the tier names a commit slice may
# carry. An unknown tier is counted but not attributed, so a renamed enum
# shows up as lost attribution here instead of silently passing.
KNOWN_TIERS = {"htm", "rh1_fast", "rh1_slow", "rh2_slow", "rh2_slow_slow", "stm"}

# AbortCause::to_string — the cause names an abort instant may carry.
KNOWN_CAUSES = {
    "htm_conflict",
    "htm_capacity",
    "htm_explicit",
    "injected",
    "stm_validation",
    "stm_locked",
}


def validate(doc):
    """Returns a list of problems (empty = structurally valid)."""
    problems = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    other = doc.get("otherData")
    if not isinstance(other, dict):
        problems.append("missing otherData object")
    else:
        if other.get("schema") != SCHEMA:
            problems.append(
                f"otherData.schema is {other.get('schema')!r}, want {SCHEMA!r}"
            )
        if not isinstance(other.get("tsc_hz"), (int, float)) or other.get("tsc_hz") <= 0:
            problems.append("otherData.tsc_hz missing or nonpositive")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        problems.append("missing traceEvents array")
        return problems
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = e.get("ph")
        if ph not in ("X", "i", "M"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if ph == "M":
            if e.get("name") not in ("process_name", "thread_name"):
                problems.append(f"{where}: unknown metadata {e.get('name')!r}")
            continue
        for key in ("name", "ts", "pid", "tid"):
            if key not in e:
                problems.append(f"{where}: missing {key!r}")
        if not isinstance(e.get("ts"), (int, float)) or e.get("ts", -1) < 0:
            problems.append(f"{where}: bad ts {e.get('ts')!r}")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X slice with bad dur {dur!r}")
        name = e.get("name", "")
        if isinstance(name, str) and name.startswith("abort:"):
            cause = name.split(":", 1)[1]
            if cause not in KNOWN_CAUSES:
                problems.append(f"{where}: unknown abort cause {cause!r}")
    return problems


def summarize(doc):
    """Aggregates the events into the report printed by main().

    Returns a dict with: tier_us {tier: total slice us}, unknown_tier_us,
    durable_us {phase: us}, counts {category: n}, aborts {cause: n},
    threads {tid: {"tx_us":, "events":, "name":}}, span_us (first ts ->
    last ts+dur over non-metadata events), attribution (fraction of tx
    slice time on known tiers; 1.0 when there are no tx slices).
    """
    tier_us = {}
    unknown_tier_us = 0.0
    durable_us = {}
    counts = {}
    aborts = {}
    threads = {}
    t_min = None
    t_max = None
    for e in doc.get("traceEvents", []):
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") == "thread_name":
                tid = e.get("tid")
                threads.setdefault(tid, {"tx_us": 0.0, "events": 0, "name": ""})[
                    "name"
                ] = e.get("args", {}).get("name", "")
            continue
        tid = e.get("tid")
        slot = threads.setdefault(tid, {"tx_us": 0.0, "events": 0, "name": ""})
        slot["events"] += 1
        ts = float(e.get("ts", 0))
        end = ts + float(e.get("dur", 0)) if ph == "X" else ts
        t_min = ts if t_min is None else min(t_min, ts)
        t_max = end if t_max is None else max(t_max, end)
        cat = e.get("cat", "?")
        counts[cat] = counts.get(cat, 0) + 1
        name = e.get("name", "")
        if ph == "X" and name.startswith("tx:"):
            tier = name.split(":", 1)[1]
            dur = float(e.get("dur", 0))
            slot["tx_us"] += dur
            if tier in KNOWN_TIERS:
                tier_us[tier] = tier_us.get(tier, 0.0) + dur
            else:
                unknown_tier_us += dur
        elif ph == "X" and name.startswith("dur:"):
            phase = name.split(":", 1)[1]
            durable_us[phase] = durable_us.get(phase, 0.0) + float(e.get("dur", 0))
        elif name.startswith("abort:"):
            cause = name.split(":", 1)[1]
            aborts[cause] = aborts.get(cause, 0) + 1
    total_tx = sum(tier_us.values()) + unknown_tier_us
    return {
        "tier_us": tier_us,
        "unknown_tier_us": unknown_tier_us,
        "durable_us": durable_us,
        "counts": counts,
        "aborts": aborts,
        "threads": threads,
        "span_us": (t_max - t_min) if t_min is not None else 0.0,
        "attribution": sum(tier_us.values()) / total_tx if total_tx > 0 else 1.0,
    }


def print_summary(doc, summary, out=sys.stdout):
    other = doc.get("otherData", {})
    print(
        f"trace: {other.get('events', '?')} events, {other.get('rings', '?')} rings, "
        f"{other.get('dropped', 0)} dropped, tsc {other.get('tsc_hz', 0) / 1e9:.2f} GHz",
        file=out,
    )
    total_tx = sum(summary["tier_us"].values()) + summary["unknown_tier_us"]
    print(f"per-tier time attribution ({total_tx:.0f} us in committed transactions):",
          file=out)
    for tier in sorted(summary["tier_us"], key=summary["tier_us"].get, reverse=True):
        us = summary["tier_us"][tier]
        pct = 100.0 * us / total_tx if total_tx > 0 else 0.0
        print(f"  {tier:<14} {us:>12.0f} us  {pct:5.1f}%", file=out)
    if summary["unknown_tier_us"] > 0:
        print(f"  {'<unknown>':<14} {summary['unknown_tier_us']:>12.0f} us", file=out)
    if summary["durable_us"]:
        print("durable phases (inside the slices above):", file=out)
        for phase in ("log", "mark", "apply"):
            if phase in summary["durable_us"]:
                print(f"  dur:{phase:<10} {summary['durable_us'][phase]:>12.0f} us",
                      file=out)
    if summary["aborts"]:
        print("aborts by cause:", file=out)
        for cause, n in sorted(summary["aborts"].items(), key=lambda kv: -kv[1]):
            print(f"  {cause:<14} {n}", file=out)
    print("event counts by category:", file=out)
    for cat, n in sorted(summary["counts"].items(), key=lambda kv: -kv[1]):
        print(f"  {cat:<14} {n}", file=out)
    span = summary["span_us"]
    print(f"per-thread busy fraction (tx time / {span:.0f} us traced span):", file=out)
    for tid in sorted(summary["threads"]):
        t = summary["threads"][tid]
        busy = 100.0 * t["tx_us"] / span if span > 0 else 0.0
        label = t["name"] or f"tid {tid}"
        print(f"  {label:<24} {t['events']:>8} events  {busy:5.1f}% busy", file=out)
    print(f"attribution: {100.0 * summary['attribution']:.2f}% of in-transaction "
          f"time on named tiers", file=out)


def check(doc, summary, min_attribution, out=sys.stdout):
    """The --check gate: structural validity + attribution floor."""
    problems = validate(doc)
    for p in problems:
        print(f"INVALID: {p}", file=out)
    if summary["attribution"] < min_attribution:
        problems.append("attribution below floor")
        print(
            f"FAIL: {100.0 * summary['attribution']:.2f}% of in-transaction time "
            f"attributed to named tiers, need >= {100.0 * min_attribution:.0f}%",
            file=out,
        )
    return len(problems) == 0


def self_test():
    def ev(ph, name, cat, ts, tid=1, dur=None, args=None):
        e = {"ph": ph, "name": name, "cat": cat, "ts": ts, "pid": 1, "tid": tid}
        if dur is not None:
            e["dur"] = dur
        if args is not None:
            e["args"] = args
        return e

    doc = {
        "otherData": {"schema": SCHEMA, "tsc_hz": 3e9, "events": 7, "rings": 2,
                      "dropped": 3},
        "traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 1, "args": {"name": "rhtm"}},
            {"ph": "M", "name": "thread_name", "pid": 1, "tid": 1,
             "args": {"name": "ctx0 (dropped=3)"}},
            {"ph": "M", "name": "thread_name", "pid": 1, "tid": 2,
             "args": {"name": "ctx1"}},
            ev("X", "tx:rh1_fast", "tx", 0.0, tid=1, dur=60.0),
            ev("X", "dur:log", "durable", 10.0, tid=1, dur=5.0),
            ev("i", "abort:htm_capacity", "abort", 70.0, tid=1),
            ev("X", "tx:stm", "tx", 80.0, tid=1, dur=20.0),
            ev("X", "tx:rh1_slow", "tx", 0.0, tid=2, dur=20.0),
            ev("i", "cm:sw_enter", "cm", 5.0, tid=2),
        ],
    }
    assert validate(doc) == [], validate(doc)
    s = summarize(doc)
    assert s["tier_us"] == {"rh1_fast": 60.0, "stm": 20.0, "rh1_slow": 20.0}, s
    assert s["unknown_tier_us"] == 0.0
    assert s["durable_us"] == {"log": 5.0}
    assert s["aborts"] == {"htm_capacity": 1}
    assert s["counts"]["tx"] == 3 and s["counts"]["cm"] == 1, s["counts"]
    assert s["threads"][1]["tx_us"] == 80.0 and s["threads"][2]["tx_us"] == 20.0
    assert s["span_us"] == 100.0, s["span_us"]
    assert s["attribution"] == 1.0
    sink = open("/dev/null", "w") if sys.platform != "win32" else sys.stderr
    assert check(doc, s, 0.95, sink)
    print_summary(doc, s, sink)

    # An unknown tier eats attribution: 60us of 100us known -> 60%, and the
    # 95% gate must fail while the structure stays valid.
    bad = json.loads(json.dumps(doc))
    bad["traceEvents"].append(ev("X", "tx:warp_drive", "tx", 200.0, dur=40.0))
    s = summarize(bad)
    assert abs(s["attribution"] - 100.0 / 140.0) < 1e-9, s["attribution"]
    assert validate(bad) == []
    assert not check(bad, s, 0.95, sink)

    # Structural breakage: wrong schema, X without dur, unknown abort cause,
    # unknown phase — each must produce a distinct problem line.
    broken = {
        "otherData": {"schema": "wrong/v0", "tsc_hz": 0},
        "traceEvents": [
            {"ph": "X", "name": "tx:htm", "cat": "tx", "ts": 0, "pid": 1, "tid": 1},
            ev("i", "abort:gremlins", "abort", 1.0),
            {"ph": "Q", "name": "?", "ts": 0, "pid": 1, "tid": 1},
        ],
    }
    problems = validate(broken)
    assert any("schema" in p for p in problems), problems
    assert any("tsc_hz" in p for p in problems), problems
    assert any("bad dur" in p for p in problems), problems
    assert any("gremlins" in p for p in problems), problems
    assert any("unknown phase" in p for p in problems), problems

    # No transactions at all: attribution is vacuously 1.0 (an empty trace
    # from a scenario that only aborted must not fail the floor).
    empty = {"otherData": {"schema": SCHEMA, "tsc_hz": 3e9}, "traceEvents": []}
    s = summarize(empty)
    assert s["attribution"] == 1.0 and s["span_us"] == 0.0
    assert check(empty, s, 0.95, sink)
    print("self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", help="Chrome trace JSON from --trace")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless valid and above the attribution floor")
    parser.add_argument("--min-attribution", type=float, default=0.95,
                        help="fraction of tx time that must land on named tiers")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.trace:
        parser.print_usage(sys.stderr)
        return 2
    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"INVALID: cannot load {args.trace}: {e}", file=sys.stderr)
        return 1
    summary = summarize(doc)
    print_summary(doc, summary)
    if args.check:
        ok = check(doc, summary, args.min_attribution)
        print("check: PASS" if ok else "check: FAIL")
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
