#pragma once

// AccountStore — the transactional service layer's data plane: a fixed-shard
// account/KV store over TmUniverse cells, in the shape of the
// financial-transfer workloads (transfers + balance audits as transactions).
// Four operations, each one transaction:
//
//  * transfer        — 2 reads + 2 writes; insufficient funds = committed
//                      no-op returning false (progress accounting stays
//                      honest, conservation is unconditional).
//  * batch transfer  — K transfers applied inside ONE transaction (the
//                      open-loop driver's request batching maps straight
//                      onto this).
//  * balance read    — 1 read.
//  * audit           — sum of every balance (or of one shard): the long
//                      read-only transaction. Atomicity makes the invariant
//                      exact: every committed audit MUST observe the minted
//                      total, never a torn partial transfer
//                      (tests/account_store_test.cpp pins this per
//                      protocol).
//
// Accounts are laid out shard-major: shard s owns the contiguous account
// range [s * per_shard, (s + 1) * per_shard). The shard axis gives the
// service scenario a knob between short audits (one shard) and full audits
// (every account — a capacity-escalation driver on bounded-HTM substrates),
// and is the unit future NUMA sharding distributes.
//
// Conservation invariant: the sum of all balances equals total_minted() at
// every transaction boundary — transfers move value, nothing creates or
// destroys it.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cell.h"

namespace rhtm {

class AccountStore {
 public:
  struct Transfer {
    std::uint64_t from;
    std::uint64_t to;
    TmWord amount;
  };

  /// `accounts` is rounded up to a multiple of `shards` so every shard owns
  /// the same number of accounts; each starts with `initial` units.
  AccountStore(std::size_t accounts, TmWord initial, std::size_t shards = 16)
      : shards_(shards == 0 ? 1 : shards),
        per_shard_((accounts + shards_ - 1) / shards_ == 0
                       ? 1
                       : (accounts + shards_ - 1) / shards_),
        initial_(initial),
        balances_(shards_ * per_shard_) {
    for (auto& b : balances_) b.unsafe_write(initial);
  }

  [[nodiscard]] std::size_t accounts() const { return balances_.size(); }
  [[nodiscard]] std::size_t shards() const { return shards_; }
  [[nodiscard]] std::size_t shard_of(std::uint64_t account) const {
    return static_cast<std::size_t>(account) / per_shard_;
  }
  [[nodiscard]] TmWord total_minted() const {
    return initial_ * static_cast<TmWord>(balances_.size());
  }

  /// Moves `amount` from `from` to `to`. Insufficient funds (or a
  /// self-transfer) commit as a no-op returning false/true without touching
  /// any balance beyond the reads — conservation holds unconditionally.
  template <class Handle>
  bool transfer(Handle& h, std::uint64_t from, std::uint64_t to, TmWord amount) const {
    const TVar<TmWord>& src = balances_[static_cast<std::size_t>(from) % balances_.size()];
    const TVar<TmWord>& dst = balances_[static_cast<std::size_t>(to) % balances_.size()];
    if (&src == &dst) return true;  // self-transfer: trivially conserving
    const TmWord have = src.read(h);
    if (have < amount) return false;
    src.write(h, have - amount);
    dst.write(h, dst.read(h) + amount);
    return true;
  }

  /// Applies `n` transfers inside the caller's single transaction; each
  /// insufficient-funds item is skipped (not rolled up into all-or-nothing —
  /// the batch is a service-side amortization, not a composite contract).
  /// Returns how many applied.
  template <class Handle>
  std::size_t batch_transfer(Handle& h, const Transfer* items, std::size_t n) const {
    std::size_t applied = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (transfer(h, items[i].from, items[i].to, items[i].amount)) ++applied;
    }
    return applied;
  }

  template <class Handle>
  [[nodiscard]] TmWord balance(Handle& h, std::uint64_t account) const {
    return balances_[static_cast<std::size_t>(account) % balances_.size()].read(h);
  }

  /// Sum of every balance — the full-audit transaction. A committed audit
  /// must return total_minted() exactly.
  template <class Handle>
  [[nodiscard]] TmWord audit(Handle& h) const {
    TmWord sum = 0;
    for (const TVar<TmWord>& b : balances_) sum += b.read(h);
    return sum;
  }

  /// Sum of one shard's balances — the short-audit flavour.
  template <class Handle>
  [[nodiscard]] TmWord audit_shard(Handle& h, std::size_t shard) const {
    const std::size_t base = (shard % shards_) * per_shard_;
    TmWord sum = 0;
    for (std::size_t i = 0; i < per_shard_; ++i) sum += balances_[base + i].read(h);
    return sum;
  }

  /// Stable cell address of an account. The durable crash harness keys its
  /// recovered-redo-log oracle by cell address (tests/crash_harness.h): the
  /// parent process maps each logged address back to the account it belongs
  /// to when validating a crashed child's log.
  [[nodiscard]] const TmCell* account_cell(std::uint64_t account) const {
    return &balances_[static_cast<std::size_t>(account) % balances_.size()].cell();
  }

  /// Quiescent per-account read for tests (never concurrent with
  /// transactions).
  [[nodiscard]] TmWord unsafe_balance(std::uint64_t account) const {
    return balances_[static_cast<std::size_t>(account) % balances_.size()].unsafe_read();
  }

  /// Quiescent conservation check for tests (never concurrent with
  /// transactions).
  [[nodiscard]] TmWord unsafe_total() const {
    TmWord sum = 0;
    for (const TVar<TmWord>& b : balances_) sum += b.unsafe_read();
    return sum;
  }

 private:
  std::size_t shards_;
  std::size_t per_shard_;
  TmWord initial_;
  std::vector<TVar<TmWord>> balances_;
};

}  // namespace rhtm
