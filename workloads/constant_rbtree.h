#pragma once

// Constant red-black tree (paper §3.2): a pre-built balanced search tree
// whose SHAPE never changes — updates overwrite node values in place, so
// every run sees the identical pointer structure and results are
// repeatable. Keys are the odd numbers 1,3,...,2n-1; benches draw keys
// uniformly from [0, 2n), hitting ~50%. A lookup walks ~log2(n)
// transactional key reads; an update adds one transactional value write.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cell.h"
#include "core/rng.h"

namespace rhtm {

class ConstantRbTree {
 public:
  explicit ConstantRbTree(std::size_t n) : n_(n), nodes_(n) {
    root_ = build(0, static_cast<std::int64_t>(n) - 1);
  }

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Transactional search. On hit stores the node value into *out.
  template <class Handle>
  bool lookup(Handle& h, std::uint64_t key, TmWord* out) const {
    std::int32_t i = root_;
    while (i >= 0) {
      const Node& node = nodes_[static_cast<std::size_t>(i)];
      const TmWord k = node.key.read(h);
      if (k == key) {
        *out = node.value.read(h);
        return true;
      }
      i = key < k ? node.left : node.right;
    }
    return false;
  }

  /// Transactional update: overwrite the value of the matching node, or of
  /// the last node on the search path when the key is absent (the shape
  /// stays constant either way). Returns whether the key was present.
  template <class Handle>
  bool update(Handle& h, std::uint64_t key, TmWord value, Xoshiro256& /*rng*/) const {
    std::int32_t i = root_;
    std::int32_t last = root_;
    while (i >= 0) {
      const Node& node = nodes_[static_cast<std::size_t>(i)];
      const TmWord k = node.key.read(h);
      if (k == key) {
        node.value.write(h, value);
        return true;
      }
      last = i;
      i = key < k ? node.left : node.right;
    }
    if (last >= 0) nodes_[static_cast<std::size_t>(last)].value.write(h, value);
    return false;
  }

 private:
  struct Node {
    TVar<TmWord> key;
    TVar<TmWord> value;
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  /// Builds a perfectly balanced tree over the sorted key range [lo, hi].
  std::int32_t build(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) return -1;
    const std::int64_t mid = lo + (hi - lo) / 2;
    Node& node = nodes_[static_cast<std::size_t>(mid)];
    node.key.unsafe_write(static_cast<TmWord>(2 * mid + 1));
    node.value.unsafe_write(static_cast<TmWord>(mid));
    node.left = build(lo, mid - 1);
    node.right = build(mid + 1, hi);
    return static_cast<std::int32_t>(mid);
  }

  std::size_t n_;
  std::vector<Node> nodes_;
  std::int32_t root_;
};

}  // namespace rhtm
