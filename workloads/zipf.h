#pragma once

// Zipfian index generator (Gray et al.'s rejection-free inversion, the YCSB
// formulation): O(n) setup, O(1) sampling. theta in (0,1) is the skew —
// 0.99 is the YCSB default where ~10% of keys draw ~90% of accesses. Ranks
// are returned in order (0 is the hottest); callers that want the hot keys
// scattered across memory should apply their own permutation.
//
// Skewed access is exactly the regime where HyTM conclusions are most
// sensitive to workload shape (Alistarh et al.; Brown & Ravi): a few hot
// stripes concentrate both genuine conflicts and false sharing.

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "core/rng.h"

namespace rhtm {

class ZipfianGenerator {
 public:
  explicit ZipfianGenerator(std::size_t n, double theta = 0.99)
      : n_(n == 0 ? 1 : n), theta_(theta) {
    zetan_ = zeta(n_, theta_);
    const double zeta2 = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] double theta() const { return theta_; }

  /// Samples a rank in [0, n): rank 0 is drawn with the highest probability.
  [[nodiscard]] std::size_t next(Xoshiro256& rng) const {
    // 53-bit mantissa-exact uniform in [0, 1).
    const double u =
        static_cast<double>(rng.next_u64() >> 11) * (1.0 / 9007199254740992.0);
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto rank = static_cast<std::size_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank < n_ ? rank : n_ - 1;
  }

 private:
  static double zeta(std::size_t n, double theta) {
    double sum = 0;
    for (std::size_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }

  std::size_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
};

}  // namespace rhtm
