#pragma once

// Constant sorted linked list (paper §3.3, the heavy-contention case):
// every search scans the list prefix reading each node's key
// transactionally — n/2 reads on average — so all transactions share the
// prefix and conflict with any update that lands there. Keys are the odd
// numbers 1,3,...,2n-1; the shape (the next pointers) never changes.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cell.h"

namespace rhtm {

class ConstantSortedList {
 public:
  explicit ConstantSortedList(std::size_t n) : nodes_(n) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes_[i].key.unsafe_write(static_cast<TmWord>(2 * i + 1));
      nodes_[i].value.unsafe_write(static_cast<TmWord>(i));
      nodes_[i].next = i + 1 < n ? static_cast<std::int32_t>(i + 1) : -1;
    }
  }

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  template <class Handle>
  bool search(Handle& h, std::uint64_t key, TmWord* out) const {
    std::int32_t i = nodes_.empty() ? -1 : 0;
    while (i >= 0) {
      const Node& node = nodes_[static_cast<std::size_t>(i)];
      const TmWord k = node.key.read(h);
      if (k == key) {
        *out = node.value.read(h);
        return true;
      }
      if (k > key) return false;
      i = node.next;
    }
    return false;
  }

  /// Scan to the insertion point and overwrite the value there (of the
  /// matching node, or the first node past `key`). Constant shape.
  template <class Handle>
  bool update(Handle& h, std::uint64_t key, TmWord value) const {
    std::int32_t i = nodes_.empty() ? -1 : 0;
    std::int32_t last = i;
    while (i >= 0) {
      const Node& node = nodes_[static_cast<std::size_t>(i)];
      const TmWord k = node.key.read(h);
      if (k == key) {
        node.value.write(h, value);
        return true;
      }
      if (k > key) break;
      last = i;
      i = node.next;
    }
    if (last >= 0) nodes_[static_cast<std::size_t>(last)].value.write(h, value);
    return false;
  }

 private:
  struct Node {
    TVar<TmWord> key;
    TVar<TmWord> value;
    std::int32_t next = -1;
  };

  std::vector<Node> nodes_;
};

}  // namespace rhtm
