#pragma once

// Phase schedule + phased measurement driver — long-running workloads whose
// operation mix and transaction size change on a timed cadence *within one
// run*: read-mostly -> write-burst -> long-transaction snapshot. The paper
// (and the seed benches) measure each mix in isolation, which hides how a
// protocol behaves when the workload it tuned itself against shifts under
// it (PhasedTm's global mode switch and HybridTm's adaptive retry policy
// are exactly such tuners). The phased driver keeps per-phase TxStats, so
// a scenario can report each phase as its own row.
//
// The schedule is wall-clock-driven: phase i owns the window
// [boundary[i-1], boundary[i]) of the total run, boundaries being the
// normalized cumulative weights. Every thread evaluates the phase from its
// own elapsed time before each operation, so threads cross a boundary
// within one operation of each other and no cross-thread coordination is
// added to the measured path.

#include <cstddef>
#include <vector>

#include "workloads/driver.h"

namespace rhtm {

/// One phase of a schedule. The driver interprets only `name` and `weight`;
/// the mix knobs (write_percent, long_op_percent, long_op_scale) are
/// carried through to the workload's op lambda, which decides what they
/// mean (e.g. long_op_scale = snapshot length in nodes).
struct Phase {
  const char* name;
  double weight = 1.0;            ///< relative share of the total run time
  unsigned write_percent = 0;     ///< % of ops that mutate
  unsigned long_op_percent = 0;   ///< % of ops that run the long transaction
  std::size_t long_op_scale = 0;  ///< size knob for the long transaction
};

class PhaseSchedule {
 public:
  explicit PhaseSchedule(std::vector<Phase> phases) : phases_(std::move(phases)) {
    if (phases_.empty()) phases_.push_back({"all", 1.0, 0, 0, 0});
    double total = 0;
    for (const Phase& p : phases_) total += p.weight > 0 ? p.weight : 0;
    // No positive weight anywhere: fall back to an equal split (weight 1
    // each) rather than collapsing every window to zero width.
    const bool equal_split = total <= 0;
    if (equal_split) total = static_cast<double>(phases_.size());
    double acc = 0;
    for (const Phase& p : phases_) {
      acc += (equal_split ? 1.0 : (p.weight > 0 ? p.weight : 0)) / total;
      boundaries_.push_back(acc);
    }
    boundaries_.back() = 1.0;  // absorb rounding: the last phase owns the tail
  }

  [[nodiscard]] std::size_t size() const { return phases_.size(); }
  [[nodiscard]] const Phase& phase(std::size_t i) const { return phases_[i]; }

  /// Fraction of the total run each phase owns.
  [[nodiscard]] double fraction(std::size_t i) const {
    return boundaries_[i] - (i == 0 ? 0.0 : boundaries_[i - 1]);
  }

  /// Phase index owning elapsed-fraction `frac` (clamped into [0, 1]).
  [[nodiscard]] std::size_t phase_at(double frac) const {
    for (std::size_t i = 0; i + 1 < boundaries_.size(); ++i) {
      if (frac < boundaries_[i]) return i;
    }
    return boundaries_.size() - 1;
  }

 private:
  std::vector<Phase> phases_;
  std::vector<double> boundaries_;  ///< cumulative end fraction per phase
};

/// One ThroughputResult per phase; `seconds` of each is the phase's nominal
/// window, so ops_per_sec composes per phase.
struct PhasedResult {
  std::vector<ThroughputResult> per_phase;

  [[nodiscard]] ThroughputResult total() const {
    ThroughputResult t;
    for (const ThroughputResult& r : per_phase) {
      t.total_ops += r.total_ops;
      t.seconds += r.seconds;
      t.stats.merge(r.stats);
    }
    return t;
  }
};

/// Drives `op(tm, ctx, rng, tid, phase_index, phase)` — one transaction per
/// call — on `threads` threads for `total_seconds`, switching phases on the
/// schedule's cadence and attributing ops + TxStats to the phase that
/// issued them. A body over the shared worker-pool substrate
/// (workloads/driver.h) — pinning, ThreadCtx wiring and per-thread seeding
/// are identical to the closed-loop and open-loop drivers'.
template <class Tm, class Op>
PhasedResult run_phased(Tm& tm, unsigned threads, double total_seconds,
                        const PhaseSchedule& schedule, Op&& op,
                        PinMode pin = PinMode::kNone) {
  struct Slot {
    std::uint64_t ops = 0;
    TxStats stats;
  };
  const std::size_t phases = schedule.size();
  std::vector<std::vector<Slot>> slots(threads, std::vector<Slot>(phases));
  run_worker_pool(tm, threads, pin, [&](auto& ctx, Xoshiro256& rng, unsigned tid) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto total = std::chrono::duration<double>(total_seconds);
    std::size_t cur = 0;
    TxStats flushed;  // ctx.stats snapshot at the last phase transition
    for (;;) {
      const auto elapsed = std::chrono::steady_clock::now() - t0;
      if (elapsed >= total) break;
      const std::size_t idx = schedule.phase_at(
          std::chrono::duration<double>(elapsed).count() / total_seconds);
      if (idx != cur) {
        slots[tid][cur].stats.merge(tx_stats_delta(ctx.stats, flushed));
        flushed = ctx.stats;
        cur = idx;
      }
      op(tm, ctx, rng, tid, idx, schedule.phase(idx));
      ++slots[tid][idx].ops;
    }
    slots[tid][cur].stats.merge(tx_stats_delta(ctx.stats, flushed));
  });

  PhasedResult r;
  r.per_phase.resize(phases);
  for (std::size_t i = 0; i < phases; ++i) {
    r.per_phase[i].seconds = total_seconds * schedule.fraction(i);
    for (unsigned tid = 0; tid < threads; ++tid) {
      r.per_phase[i].total_ops += slots[tid][i].ops;
      r.per_phase[i].stats.merge(slots[tid][i].stats);
    }
  }
  return r;
}

}  // namespace rhtm
