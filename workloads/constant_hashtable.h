#pragma once

// Constant hash table (paper §3.3): short transactions with highly
// distributed access. Fixed open-addressed layout built once; queries probe
// a 4-slot bucket reading stored keys transactionally, updates overwrite a
// value word in place. ~2-5 transactional reads + at most one write per op.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cell.h"

namespace rhtm {

class ConstantHashTable {
 public:
  static constexpr std::size_t kBucketWidth = 4;
  static constexpr TmWord kEmptyKey = ~TmWord{0};

  /// Stores the keys 0..n-1 (benches query keys in [0, 2n): ~50% hit rate).
  explicit ConstantHashTable(std::size_t n)
      : bucket_mask_(bucket_count_for(n) - 1), slots_((bucket_mask_ + 1) * kBucketWidth) {
    for (auto& s : slots_) s.key.unsafe_write(kEmptyKey);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t base = bucket_of(k) * kBucketWidth;
      for (std::size_t i = 0; i < kBucketWidth; ++i) {
        Slot& s = slots_[base + i];
        if (s.key.unsafe_read() == kEmptyKey) {
          s.key.unsafe_write(static_cast<TmWord>(k));
          s.value.unsafe_write(static_cast<TmWord>(k));
          break;
        }
        // bucket full: key k is simply not stored (the shape stays constant)
      }
    }
  }

  template <class Handle>
  bool query(Handle& h, std::uint64_t key, TmWord* out) const {
    const std::size_t base = bucket_of(key) * kBucketWidth;
    for (std::size_t i = 0; i < kBucketWidth; ++i) {
      const Slot& s = slots_[base + i];
      const TmWord k = s.key.read(h);
      if (k == key) {
        *out = s.value.read(h);
        return true;
      }
      if (k == kEmptyKey) return false;
    }
    return false;
  }

  /// Overwrites the value for `key` if present; otherwise writes the first
  /// slot of the bucket (a constant-shape "touch"). Returns presence.
  template <class Handle>
  bool update(Handle& h, std::uint64_t key, TmWord value) const {
    const std::size_t base = bucket_of(key) * kBucketWidth;
    for (std::size_t i = 0; i < kBucketWidth; ++i) {
      const Slot& s = slots_[base + i];
      const TmWord k = s.key.read(h);
      if (k == key) {
        s.value.write(h, value);
        return true;
      }
      if (k == kEmptyKey) break;
    }
    slots_[base].value.write(h, value);
    return false;
  }

 private:
  struct Slot {
    TVar<TmWord> key;
    TVar<TmWord> value;
  };

  static std::size_t bucket_count_for(std::size_t n) {
    std::size_t want = n / 2 + 1;  // ~2 occupied slots per 4-wide bucket
    std::size_t count = 1;
    while (count < want) count <<= 1;
    return count;
  }

  [[nodiscard]] std::size_t bucket_of(std::uint64_t key) const {
    return static_cast<std::size_t>(key * 0x9e3779b97f4a7c15ull >> 32) & bucket_mask_;
  }

  std::size_t bucket_mask_;
  std::vector<Slot> slots_;
};

}  // namespace rhtm
