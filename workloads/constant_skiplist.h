#pragma once

// Constant transactional skiplist: a deterministic (perfect) skiplist whose
// SHAPE never changes — level l links every 2^l-th node, so node 0 sits on
// every level and acts as the head. Keys are the odd numbers 1,3,...,2n-1;
// searches descend the tower reading each probed key transactionally
// (~2·log2 n reads per op — deeper than the hash table, shallower than the
// sorted list's O(n) scans); updates overwrite the floor node's value word
// in place. This fills the read-set-size gap between the existing constant
// workloads while staying repeatable across runs.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cell.h"

namespace rhtm {

class ConstantSkipList {
 public:
  explicit ConstantSkipList(std::size_t n) : nodes_(n == 0 ? 1 : n) {
    const std::size_t count = nodes_.size();
    levels_ = 1;
    while ((std::size_t{1} << levels_) < count) ++levels_;
    for (std::size_t i = 0; i < count; ++i) {
      nodes_[i].key.unsafe_write(static_cast<TmWord>(2 * i + 1));
      nodes_[i].value.unsafe_write(static_cast<TmWord>(i));
    }
    next_.assign(levels_, std::vector<std::int32_t>(count, -1));
    for (unsigned l = 0; l < levels_; ++l) {
      const std::size_t stride = std::size_t{1} << l;
      for (std::size_t i = 0; i + stride < count; i += stride) {
        next_[l][i] = static_cast<std::int32_t>(i + stride);
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] unsigned levels() const { return levels_; }

  /// Transactional search. On hit stores the node value into *out.
  template <class Handle>
  bool search(Handle& h, std::uint64_t key, TmWord* out) const {
    const std::size_t i = find_floor(h, key);
    const Node& node = nodes_[i];
    if (node.key.read(h) == key) {
      *out = node.value.read(h);
      return true;
    }
    return false;
  }

  /// Transactional update: overwrite the value of the matching node, or of
  /// the floor node when the key is absent (the shape stays constant either
  /// way). Returns whether the key was present.
  template <class Handle>
  bool update(Handle& h, std::uint64_t key, TmWord value) const {
    const std::size_t i = find_floor(h, key);
    const Node& node = nodes_[i];
    const bool hit = node.key.read(h) == key;
    node.value.write(h, value);
    return hit;
  }

 private:
  struct Node {
    TVar<TmWord> key;
    TVar<TmWord> value;
  };

  /// Standard skiplist descent: from the head (node 0, present on every
  /// level), walk forward while the next key is <= `key`, dropping one
  /// level whenever the next node overshoots. Returns the greatest node
  /// with key <= `key` (or node 0 when every key is larger).
  template <class Handle>
  std::size_t find_floor(Handle& h, std::uint64_t key) const {
    std::size_t i = 0;
    for (int l = static_cast<int>(levels_) - 1; l >= 0; --l) {
      for (;;) {
        const std::int32_t nxt = next_[static_cast<std::size_t>(l)][i];
        if (nxt < 0) break;
        if (nodes_[static_cast<std::size_t>(nxt)].key.read(h) > key) break;
        i = static_cast<std::size_t>(nxt);
      }
    }
    return i;
  }

  std::vector<Node> nodes_;
  std::vector<std::vector<std::int32_t>> next_;  ///< next_[level][node], constant
  unsigned levels_ = 1;
};

}  // namespace rhtm
