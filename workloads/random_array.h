#pragma once

// Random array (paper §3.3, Fig. 3 right): transactions of a configurable
// length touching uniformly random words of a large array — the knob for
// sweeping transaction length and write fraction independently of any data
// structure's access pattern.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cell.h"
#include "core/rng.h"

namespace rhtm {

class RandomArray {
 public:
  explicit RandomArray(std::size_t n) : cells_(n) {
    for (std::size_t i = 0; i < n; ++i) cells_[i].unsafe_write(static_cast<TmWord>(i));
  }

  [[nodiscard]] std::size_t size() const { return cells_.size(); }

  /// One transaction body: `len` accesses at uniformly random indices, each
  /// a write with probability write_percent/100, otherwise a read
  /// accumulated into the returned checksum.
  template <class Handle>
  TmWord op(Handle& h, Xoshiro256& rng, unsigned len, unsigned write_percent) const {
    return op_indexed(h, rng, len, write_percent, [&](Xoshiro256& r) {
      return static_cast<std::size_t>(r.below(cells_.size()));
    });
  }

  /// Same transaction body with a caller-provided index distribution
  /// (`index(rng) -> std::size_t` in [0, size())) — e.g. a Zipfian sampler
  /// for skewed mixes.
  template <class Handle, class IndexFn>
  TmWord op_indexed(Handle& h, Xoshiro256& rng, unsigned len, unsigned write_percent,
                    IndexFn&& index) const {
    TmWord sum = 0;
    for (unsigned i = 0; i < len; ++i) {
      const std::size_t idx = index(rng);
      if (rng.percent_chance(write_percent)) {
        cells_[idx].write(h, sum + i);
      } else {
        sum += cells_[idx].read(h);
      }
    }
    return sum;
  }

 private:
  std::vector<TVar<TmWord>> cells_;
};

}  // namespace rhtm
