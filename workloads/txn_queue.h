#pragma once

// Transactional MPMC ring queue — the producer/consumer workload of the
// dynamic-workload subsystem. Enqueue and dequeue are each one transaction
// over three TVars (head, tail, one slot), so every protocol's conflict
// behaviour on a *pointer-chasing-free but inherently serializing* hot spot
// becomes measurable: all enqueuers conflict on `tail`, all dequeuers on
// `head`, and the paper's uninstrumented-read advantage shows up in how
// cheaply a protocol discovers "queue unchanged, retry not needed".
//
// Values are conserved: an item enqueued by a committed transaction is
// dequeued by exactly one committed transaction (no loss, no duplication —
// tests/txn_queue_test.cpp pins this per protocol on the atomic
// substrates). head_ and tail_ are monotonically increasing positions; a
// slot index is position % capacity. Full/empty conditions make the
// operation a committed no-op returning false (the transaction still
// commits — progress accounting stays honest).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cell.h"

namespace rhtm {

class TxnQueue {
 public:
  explicit TxnQueue(std::size_t capacity) : cap_(capacity == 0 ? 1 : capacity),
                                            slots_(cap_) {}

  [[nodiscard]] std::size_t capacity() const { return cap_; }

  /// Transactional enqueue; false = queue full (the transaction commits as
  /// a no-op).
  template <class Handle>
  bool enqueue(Handle& h, TmWord v) const {
    const TmWord tail = tail_.read(h);
    const TmWord head = head_.read(h);
    if (tail - head >= cap_) return false;
    slots_[static_cast<std::size_t>(tail % cap_)].write(h, v);
    tail_.write(h, tail + 1);
    return true;
  }

  /// Transactional dequeue; false = queue empty.
  template <class Handle>
  bool dequeue(Handle& h, TmWord* out) const {
    const TmWord head = head_.read(h);
    const TmWord tail = tail_.read(h);
    if (head == tail) return false;
    *out = slots_[static_cast<std::size_t>(head % cap_)].read(h);
    head_.write(h, head + 1);
    return true;
  }

  /// Transactional occupancy (reads both cursors).
  template <class Handle>
  [[nodiscard]] TmWord size(Handle& h) const {
    return tail_.read(h) - head_.read(h);
  }

  [[nodiscard]] TmWord unsafe_size() const {
    return tail_.unsafe_read() - head_.unsafe_read();
  }

  /// Rewinds both cursors and refills `fill` placeholder items (capped at
  /// capacity), so every bench series starts from the same occupancy.
  /// Non-transactional: quiescent use only.
  void unsafe_reset(std::size_t fill) {
    head_.unsafe_write(0);
    tail_.unsafe_write(0);
    UnsafeHandle h;
    if (fill > cap_) fill = cap_;
    for (std::size_t i = 0; i < fill; ++i) (void)enqueue(h, static_cast<TmWord>(i));
  }
  /// Total items ever enqueued / dequeued by committed transactions.
  [[nodiscard]] TmWord unsafe_enqueued() const { return tail_.unsafe_read(); }
  [[nodiscard]] TmWord unsafe_dequeued() const { return head_.unsafe_read(); }

 private:
  std::size_t cap_;
  // Each cursor on its own cache line: enqueuers and dequeuers of a
  // non-empty, non-full queue must not false-share (or false-conflict on
  // the rtm substrate) through adjacent words.
  alignas(64) TVar<TmWord> head_{0};
  alignas(64) TVar<TmWord> tail_{0};
  alignas(64) std::vector<TVar<TmWord>> slots_;
};

}  // namespace rhtm
