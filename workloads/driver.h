#pragma once

// Measurement drivers: multi-threaded throughput, the single-thread cycle
// breakdown (paper Fig. 2 bottom), and a footprint-sweep helper for
// capacity-path experiments.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "core/rhtm.h"

namespace rhtm {

struct ThroughputResult {
  std::uint64_t total_ops = 0;
  double seconds = 0;
  TxStats stats;

  /// aborts / (aborts + commits) — the paper's abort-ratio metric.
  [[nodiscard]] double abort_ratio() const {
    const double a = static_cast<double>(stats.aborts);
    const double c = static_cast<double>(stats.commits);
    return a + c > 0 ? a / (a + c) : 0.0;
  }
};

/// Drives `op(tm, ctx, rng, tid)` — one transaction per call — on `threads`
/// threads for `seconds`, aggregating per-thread TxStats.
template <class Tm, class Op>
ThroughputResult run_throughput(Tm& tm, unsigned threads, double seconds, Op&& op) {
  struct PerThread {
    std::uint64_t ops = 0;
    TxStats stats;
  };
  std::vector<PerThread> slots(threads);
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      typename Tm::ThreadCtx ctx(tm);
      Xoshiro256 rng(0x853c49e6748fea9bull ^ (static_cast<std::uint64_t>(tid) + 1) *
                                                 0x9e3779b97f4a7c15ull);
      while (!go.load(std::memory_order_acquire)) {
        detail::cpu_relax();
      }
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::duration<double>(seconds);
      std::uint64_t ops = 0;
      do {
        op(tm, ctx, rng, tid);
        ++ops;
      } while (std::chrono::steady_clock::now() < deadline);
      slots[tid].ops = ops;
      slots[tid].stats = ctx.stats;
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const auto t1 = std::chrono::steady_clock::now();

  ThroughputResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const PerThread& s : slots) {
    r.total_ops += s.ops;
    r.stats.merge(s.stats);
  }
  return r;
}

/// Single-thread cycle breakdown (paper Fig. 2 bottom). Percentages follow
/// the paper's table semantics: read/write = time inside the access
/// barriers (zero by construction for barrier-free paths), commit = begin/
/// commit machinery (time inside atomically() minus time inside the body),
/// private = body time not spent in barriers, intertx = everything between
/// transactions.
struct BreakdownResult {
  double read_pct = 0;
  double write_pct = 0;
  double commit_pct = 0;
  double private_pct = 0;
  double intertx_pct = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t aborts = 0;
  std::uint64_t commits = 0;
};

/// `fn(tm, ctx, rng, stats, body_cycles)` must run one transaction through a
/// TimedHandle, accumulating the rdtsc span of each body execution into
/// `body_cycles` (see bench/fig2_breakdown.cpp).
template <class Tm, class Fn>
BreakdownResult run_breakdown(Tm& tm, double seconds, Fn&& fn) {
  typename Tm::ThreadCtx ctx(tm);
  ctx.stats.timing = true;
  Xoshiro256 rng(0x9e3779b97f4a7c15ull);
  std::uint64_t body_cycles = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  const std::uint64_t c0 = rdtsc();
  do {
    fn(tm, ctx, rng, ctx.stats, body_cycles);
  } while (std::chrono::steady_clock::now() < deadline);
  const std::uint64_t total = rdtsc() - c0;

  const TxStats& s = ctx.stats;
  BreakdownResult b;
  if (total > 0) {
    const auto pct = [&](std::uint64_t cycles) {
      return 100.0 * static_cast<double>(cycles) / static_cast<double>(total);
    };
    const std::uint64_t barrier = s.read_cycles + s.write_cycles;
    const std::uint64_t commit = s.tx_cycles > body_cycles ? s.tx_cycles - body_cycles : 0;
    const std::uint64_t priv = body_cycles > barrier ? body_cycles - barrier : 0;
    const std::uint64_t intertx = total > s.tx_cycles ? total - s.tx_cycles : 0;
    b.read_pct = pct(s.read_cycles);
    b.write_pct = pct(s.write_cycles);
    b.commit_pct = pct(commit);
    b.private_pct = pct(priv);
    b.intertx_pct = pct(intertx);
  }
  b.reads = s.reads;
  b.writes = s.writes;
  b.aborts = s.aborts;
  b.commits = s.commits;
  return b;
}

/// Runs `op` `ops` times single-threaded and returns the TxStats delta —
/// the building block for footprint sweeps that classify which execution
/// path (fast / RH1-slow / RH2 / slow-slow) ends up committing.
template <class Tm, class Op>
TxStats run_capacity_pressure(Tm& tm, typename Tm::ThreadCtx& ctx, int ops, Op&& op) {
  const TxStats before = ctx.stats;
  Xoshiro256 rng(0xda3e39cb94b95bdbull);
  for (int i = 0; i < ops; ++i) {
    op(tm, ctx, rng, 0u);
  }
  TxStats delta = ctx.stats;
  // Convert to a delta (arrays subtract element-wise).
  delta.commits -= before.commits;
  delta.aborts -= before.aborts;
  delta.reads -= before.reads;
  delta.writes -= before.writes;
  delta.read_cycles -= before.read_cycles;
  delta.write_cycles -= before.write_cycles;
  delta.tx_cycles -= before.tx_cycles;
  for (std::size_t i = 0; i < static_cast<std::size_t>(ExecPath::kCount); ++i) {
    delta.commits_by_path[i] -= before.commits_by_path[i];
    delta.attempts_by_path[i] -= before.attempts_by_path[i];
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(AbortCause::kCount); ++i) {
    delta.aborts_by_cause[i] -= before.aborts_by_cause[i];
  }
  return delta;
}

}  // namespace rhtm
