#pragma once

// Measurement drivers: multi-threaded throughput, the single-thread cycle
// breakdown (paper Fig. 2 bottom), a footprint-sweep helper for
// capacity-path experiments, and the thread-affinity (pinning) helper the
// NUMA/topology sweeps build on.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "core/rhtm.h"

namespace rhtm {

// ------------------------------------------------------------ thread pinning --

/// Thread-affinity policy for the measurement drivers:
///  * none    — leave placement to the OS scheduler (the default).
///  * compact — fill one socket's CPUs before moving to the next
///              (Topology::compact_cpu when discovery succeeds).
///  * scatter — round-robin across sockets first (Topology::scatter_cpu):
///              thread t lands on socket t % socket_count, agreeing with
///              the stripe-shard home-socket rule in core/stripe.h.
/// When topology discovery falls back to single-node, both modes degrade
/// to the index-striding pin_cpu_for below (scatter warns once — on an SMT
/// box the naive stride interleaves hyperthread siblings, not sockets).
enum class PinMode : std::uint8_t { kNone, kCompact, kScatter };

[[nodiscard]] constexpr const char* to_string(PinMode m) {
  switch (m) {
    case PinMode::kNone: return "none";
    case PinMode::kCompact: return "compact";
    case PinMode::kScatter: return "scatter";
  }
  return "?";
}

/// Parses a canonical pin-mode name. Returns false on an unknown name.
[[nodiscard]] inline bool parse_pin_mode(const char* name, PinMode* out) {
  for (const PinMode m : {PinMode::kNone, PinMode::kCompact, PinMode::kScatter}) {
    if (std::strcmp(name, to_string(m)) == 0) {
      *out = m;
      return true;
    }
  }
  return false;
}

/// The CPU id a pin mode assigns to worker `tid` on an `ncpu`-CPU host.
/// Both modes are permutations of [0, ncpu) over any ncpu consecutive
/// tids, so no CPU is doubly assigned before every CPU is used once.
[[nodiscard]] inline unsigned pin_cpu_for(PinMode mode, unsigned tid, unsigned ncpu) {
  if (ncpu == 0) return 0;
  const unsigned t = tid % ncpu;
  if (mode == PinMode::kScatter) {
    // Even tids walk the lower half [0, ceil(N/2)), odd tids the upper
    // half [ceil(N/2), N) — a bijection for odd N too.
    const unsigned upper = (ncpu + 1) / 2;
    return t % 2 == 0 ? t / 2 : upper + t / 2;
  }
  return t;  // compact (and the don't-care value for none)
}

/// Pins the calling thread per `mode`. With a discovered topology the
/// target is the topology-derived absolute CPU (compact_cpu / scatter_cpu)
/// whenever that CPU is in this process's allowed set — so pinning and
/// stripe sharding agree on socket geometry. Otherwise (single-node
/// fallback, taskset masks excluding the target) the pin_cpu_for index
/// selects into the CPUs this process is actually *allowed* to run on
/// (sched_getaffinity), not into [0, N) — so pinning still works under
/// container cpusets whose masks do not start at CPU 0. Where unsupported
/// (non-Linux builds, or a failing affinity syscall) it warns once per
/// process and becomes a no-op — measurements still run, just unpinned.
inline void pin_current_thread(PinMode mode, unsigned tid) {
  if (mode == PinMode::kNone) return;
  static std::atomic<bool> warned{false};
  const auto warn_once = [&](const char* why) {
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr, "warning: --pin=%s unsupported (%s); running unpinned\n",
                   to_string(mode), why);
    }
  };
#if defined(__linux__)
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof allowed, &allowed) != 0) {
    warn_once("sched_getaffinity failed");
    return;
  }
  std::vector<unsigned> cpus;
  for (unsigned c = 0; c < CPU_SETSIZE; ++c) {
    if (CPU_ISSET(c, &allowed)) cpus.push_back(c);
  }
  if (cpus.empty()) {
    warn_once("empty affinity mask");
    return;
  }
  const Topology& topo = Topology::system();
  if (mode == PinMode::kScatter && !topo.discovered()) {
    static std::atomic<bool> warned_fallback{false};
    if (!warned_fallback.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "warning: --pin=scatter without discovered NUMA topology; "
                   "falling back to index striding (hyperthread siblings may "
                   "interleave before sockets fill)\n");
    }
  }
  unsigned target = cpus[pin_cpu_for(mode, tid, static_cast<unsigned>(cpus.size()))];
  if (topo.discovered()) {
    const unsigned want =
        mode == PinMode::kScatter ? topo.scatter_cpu(tid) : topo.compact_cpu(tid);
    if (want < CPU_SETSIZE && CPU_ISSET(want, &allowed)) target = want;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(target, &set);
  if (pthread_setaffinity_np(pthread_self(), sizeof set, &set) != 0) {
    warn_once("pthread_setaffinity_np failed");
  }
#else
  (void)tid;
  warn_once("no thread-affinity API on this platform");
#endif
}

struct ThroughputResult {
  std::uint64_t total_ops = 0;
  double seconds = 0;
  TxStats stats;

  /// aborts / (aborts + commits) — the paper's abort-ratio metric.
  [[nodiscard]] double abort_ratio() const {
    const double a = static_cast<double>(stats.aborts);
    const double c = static_cast<double>(stats.commits);
    return a + c > 0 ? a / (a + c) : 0.0;
  }
};

// ----------------------------------------------------- worker-pool substrate --

/// The deterministic per-thread driver seed: every measurement driver seeds
/// worker `tid`'s rng identically, so closed-loop and open-loop runs of the
/// same workload draw the same per-thread streams.
[[nodiscard]] inline std::uint64_t driver_thread_seed(unsigned tid) {
  return 0x853c49e6748fea9bull ^
         (static_cast<std::uint64_t>(tid) + 1) * 0x9e3779b97f4a7c15ull;
}

/// THE multi-thread measurement substrate, shared by every driver
/// (closed-loop run_throughput, the phased driver, the open-loop driver):
/// spawns `threads` workers, applies the pin policy, gives each a protocol
/// ThreadCtx over `tm` and a deterministically-seeded rng, releases them on
/// one start flag (no worker runs ahead while later ones are still being
/// spawned), joins, and returns the wall-clock seconds between the release
/// and the last join. `body(ctx, rng, tid)` is one worker's whole run.
template <class Tm, class Body>
double run_worker_pool(Tm& tm, unsigned threads, PinMode pin, Body&& body) {
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      pin_current_thread(pin, tid);
      typename Tm::ThreadCtx ctx(tm);
      // Register this worker's counters with the active metrics sampler (a
      // no-op when --timeline is off). Constructed after ctx so it
      // unregisters — folding the final counts into the sampler's retired
      // accumulator — before the stats it points at are destroyed.
      timeseries::ScopedStatsSource ts_source(&ctx.stats);
      Xoshiro256 rng(driver_thread_seed(tid));
      while (!go.load(std::memory_order_acquire)) {
        detail::cpu_relax();
      }
      body(ctx, rng, tid);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Element-wise `now - before` over every TxStats counter: the per-phase /
/// per-window accounting primitive shared by run_capacity_pressure and the
/// phased driver (workloads/phase_schedule.h).
[[nodiscard]] inline TxStats tx_stats_delta(const TxStats& now, const TxStats& before) {
  TxStats d = now;
  d.commits -= before.commits;
  d.aborts -= before.aborts;
  d.reads -= before.reads;
  d.writes -= before.writes;
  d.read_cycles -= before.read_cycles;
  d.write_cycles -= before.write_cycles;
  d.tx_cycles -= before.tx_cycles;
  for (std::size_t i = 0; i < static_cast<std::size_t>(ExecPath::kCount); ++i) {
    d.commits_by_path[i] -= before.commits_by_path[i];
    d.attempts_by_path[i] -= before.attempts_by_path[i];
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(AbortCause::kCount); ++i) {
    d.aborts_by_cause[i] -= before.aborts_by_cause[i];
  }
  return d;
}

/// Drives `op(tm, ctx, rng, tid)` — one transaction per call — on `threads`
/// threads for `seconds`, aggregating per-thread TxStats. A body over the
/// shared worker-pool substrate: the deadline is checked between ops, so a
/// slow op overshoots by at most one op.
template <class Tm, class Op>
ThroughputResult run_throughput(Tm& tm, unsigned threads, double seconds, Op&& op,
                                PinMode pin = PinMode::kNone) {
  struct PerThread {
    std::uint64_t ops = 0;
    TxStats stats;
  };
  std::vector<PerThread> slots(threads);
  const double wall =
      run_worker_pool(tm, threads, pin, [&](auto& ctx, Xoshiro256& rng, unsigned tid) {
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
        std::uint64_t ops = 0;
        do {
          op(tm, ctx, rng, tid);
          ++ops;
        } while (std::chrono::steady_clock::now() < deadline);
        slots[tid].ops = ops;
        slots[tid].stats = ctx.stats;
      });

  ThroughputResult r;
  r.seconds = wall;
  for (const PerThread& s : slots) {
    r.total_ops += s.ops;
    r.stats.merge(s.stats);
  }
  return r;
}

/// Single-thread cycle breakdown (paper Fig. 2 bottom). Percentages follow
/// the paper's table semantics: read/write = time inside the access
/// barriers (zero by construction for barrier-free paths), commit = begin/
/// commit machinery (time inside atomically() minus time inside the body),
/// private = body time not spent in barriers, intertx = everything between
/// transactions.
struct BreakdownResult {
  double read_pct = 0;
  double write_pct = 0;
  double commit_pct = 0;
  double private_pct = 0;
  double intertx_pct = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t aborts = 0;
  std::uint64_t commits = 0;
};

/// `fn(tm, ctx, rng, stats, body_cycles)` must run one transaction through a
/// TimedHandle, accumulating the rdtsc span of each body execution into
/// `body_cycles` (see bench/fig2_breakdown.cpp).
template <class Tm, class Fn>
BreakdownResult run_breakdown(Tm& tm, double seconds, Fn&& fn) {
  typename Tm::ThreadCtx ctx(tm);
  ctx.stats.timing = true;
  Xoshiro256 rng(0x9e3779b97f4a7c15ull);
  std::uint64_t body_cycles = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  const std::uint64_t c0 = rdtsc();
  do {
    fn(tm, ctx, rng, ctx.stats, body_cycles);
  } while (std::chrono::steady_clock::now() < deadline);
  const std::uint64_t total = rdtsc() - c0;

  const TxStats& s = ctx.stats;
  BreakdownResult b;
  if (total > 0) {
    const auto pct = [&](std::uint64_t cycles) {
      return 100.0 * static_cast<double>(cycles) / static_cast<double>(total);
    };
    const std::uint64_t barrier = s.read_cycles + s.write_cycles;
    const std::uint64_t commit = s.tx_cycles > body_cycles ? s.tx_cycles - body_cycles : 0;
    const std::uint64_t priv = body_cycles > barrier ? body_cycles - barrier : 0;
    const std::uint64_t intertx = total > s.tx_cycles ? total - s.tx_cycles : 0;
    b.read_pct = pct(s.read_cycles);
    b.write_pct = pct(s.write_cycles);
    b.commit_pct = pct(commit);
    b.private_pct = pct(priv);
    b.intertx_pct = pct(intertx);
  }
  b.reads = s.reads;
  b.writes = s.writes;
  b.aborts = s.aborts;
  b.commits = s.commits;
  return b;
}

/// Runs `op` `ops` times single-threaded and returns the TxStats delta —
/// the building block for footprint sweeps that classify which execution
/// path (fast / RH1-slow / RH2 / slow-slow) ends up committing.
template <class Tm, class Op>
TxStats run_capacity_pressure(Tm& tm, typename Tm::ThreadCtx& ctx, int ops, Op&& op) {
  const TxStats before = ctx.stats;
  Xoshiro256 rng(0xda3e39cb94b95bdbull);
  for (int i = 0; i < ops; ++i) {
    op(tm, ctx, rng, 0u);
  }
  return tx_stats_delta(ctx.stats, before);
}

}  // namespace rhtm
