#pragma once

// TimedHandle — a transparent wrapper over any protocol handle that counts
// every access and (per template flags) attributes its rdtsc span to the
// read/write barrier buckets of the breakdown instrumentation. A path whose
// accesses are not timed (kTimeReads/kTimeWrites = false) reports zero
// barrier time by construction; its accesses land in "private" time.

#include "core/cell.h"
#include "core/stats.h"

namespace rhtm {

template <class Inner, bool kTimeReads, bool kTimeWrites>
class TimedHandle {
 public:
  TimedHandle(Inner& inner, TxStats& stats) : inner_(inner), stats_(stats) {}

  TmWord load(const TmCell& c) {
    ++stats_.reads;
    if constexpr (kTimeReads) {
      const std::uint64_t t0 = rdtsc();
      const TmWord v = inner_.load(c);
      stats_.read_cycles += rdtsc() - t0;
      return v;
    } else {
      return inner_.load(c);
    }
  }

  void store(TmCell& c, TmWord v) {
    ++stats_.writes;
    if constexpr (kTimeWrites) {
      const std::uint64_t t0 = rdtsc();
      inner_.store(c, v);
      stats_.write_cycles += rdtsc() - t0;
    } else {
      inner_.store(c, v);
    }
  }

 private:
  Inner& inner_;
  TxStats& stats_;
};

}  // namespace rhtm
