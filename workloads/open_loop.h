#pragma once

// Open-loop measurement driver — traffic arrives at a RATE, not at the
// speed the system can absorb. Every closed-loop driver in this repo
// (run_throughput, run_phased) issues the next transaction the moment the
// previous one finishes, which measures throughput but structurally cannot
// see queueing delay: a production service is judged on p99/p999 latency
// under an arrival rate, where one slow software commit or abort-retry
// storm stalls the queue behind it.
//
// Model: the offered load `rate_per_sec` is partitioned evenly across the
// workers; each worker owns an independent arrival process (Poisson —
// exponential inter-arrival gaps — or deterministic fixed-gap) drawn from
// its own seeded stream, and a BOUNDED admission queue of arrival
// timestamps:
//
//   arrivals (virtual schedule)          service (real transactions)
//   t=a0, a1, a2, ... ---> [bounded FIFO] ---> batch of <=K per transaction
//                            |   full => drop (counted, request shed)
//
// Per-request latency is measured arrival -> commit: the recorded value is
// (commit wall time) - (scheduled arrival time), so time spent waiting in
// the admission queue IS included. Arrival timestamps advance on the
// virtual schedule regardless of service progress — the driver is immune to
// coordinated omission: if the system stalls, the backlog's requests keep
// their early arrival stamps and the stall lands in the tail percentiles.
//
// Generation stops at the run deadline; the worker then drains what was
// admitted, so the accounting is exact:  offered = admitted + dropped and
// admitted = completed (tests/open_loop_test.cpp pins all of it, plus the
// arrival process statistics, against oracles).

#include <chrono>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/latency_histogram.h"
#include "workloads/driver.h"

namespace rhtm {

/// Inter-arrival gap generator: Poisson process (exponential gaps of mean
/// 1/rate) or deterministic fixed-rate (constant gap). Gaps are in
/// nanoseconds on the virtual arrival clock.
class ArrivalSampler {
 public:
  ArrivalSampler(double rate_per_sec, bool deterministic)
      : mean_gap_ns_(rate_per_sec > 0 ? 1e9 / rate_per_sec : 1e18),
        deterministic_(deterministic) {}

  [[nodiscard]] std::uint64_t next_gap_ns(Xoshiro256& rng) {
    if (deterministic_) {
      return static_cast<std::uint64_t>(std::llround(mean_gap_ns_));
    }
    // U uniform in (0, 1]: 53 high bits of the draw, +1 to exclude zero.
    const double u =
        (static_cast<double>(rng.next_u64() >> 11) + 1.0) * 0x1.0p-53;
    return static_cast<std::uint64_t>(-std::log(u) * mean_gap_ns_);
  }

 private:
  double mean_gap_ns_;
  bool deterministic_;
};

struct OpenLoopOptions {
  double rate_per_sec = 10'000;  ///< offered load, total across all workers
  double seconds = 1.0;          ///< arrival-generation window
  unsigned threads = 1;
  std::size_t queue_capacity = 4096;  ///< per-worker admission queue bound
  unsigned batch = 1;                 ///< requests served per transaction (K)
  bool deterministic = false;         ///< fixed-gap arrivals instead of Poisson
  std::uint64_t seed = 0x6f2d7a5c3b1e49d8ull;  ///< arrival-stream seed
  PinMode pin = PinMode::kNone;
};

struct OpenLoopResult {
  std::uint64_t offered = 0;    ///< arrivals generated inside the window
  std::uint64_t admitted = 0;   ///< accepted into an admission queue
  std::uint64_t dropped = 0;    ///< shed on a full queue (offered - admitted)
  std::uint64_t completed = 0;  ///< served by a committed transaction
  double gen_seconds = 0;       ///< the nominal generation window
  double seconds = 0;           ///< wall clock including the post-window drain
  LatencyHistogram latency;     ///< arrival -> commit, nanoseconds
  TxStats stats;

  [[nodiscard]] double offered_per_sec() const {
    return gen_seconds > 0 ? static_cast<double>(offered) / gen_seconds : 0.0;
  }
  [[nodiscard]] double achieved_per_sec() const {
    return seconds > 0 ? static_cast<double>(completed) / seconds : 0.0;
  }
  [[nodiscard]] double drop_rate() const {
    return offered != 0 ? static_cast<double>(dropped) / static_cast<double>(offered)
                        : 0.0;
  }
};

/// Drives `service(tm, ctx, rng, tid, k)` — ONE transaction serving `k`
/// admitted requests (k <= opt.batch) — under open-loop arrivals. Built on
/// the same worker-pool substrate as the closed-loop drivers: identical
/// pinning, ThreadCtx wiring and per-thread base seeding.
template <class Tm, class Service>
OpenLoopResult run_open_loop(Tm& tm, const OpenLoopOptions& opt, Service&& service) {
  struct PerThread {
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t dropped = 0;
    std::uint64_t completed = 0;
    LatencyHistogram latency;
    TxStats stats;
  };
  const unsigned threads = opt.threads == 0 ? 1 : opt.threads;
  const std::size_t cap = opt.queue_capacity == 0 ? 1 : opt.queue_capacity;
  const unsigned batch = opt.batch == 0 ? 1 : opt.batch;
  const double worker_rate = opt.rate_per_sec / static_cast<double>(threads);
  const auto run_ns = static_cast<std::uint64_t>(opt.seconds * 1e9);
  std::vector<PerThread> slots(threads);

  OpenLoopResult r;
  r.gen_seconds = opt.seconds;
  r.seconds = run_worker_pool(tm, threads, opt.pin, [&](auto& ctx, Xoshiro256& rng,
                                                        unsigned tid) {
    PerThread& slot = slots[tid];
    // The arrival stream is seeded independently of the service rng so the
    // schedule is a pure function of (opt.seed, tid) — per-thread streams
    // are distinct, and a fixed seed reproduces the exact schedule.
    Xoshiro256 arrival_rng(opt.seed ^ driver_thread_seed(tid));
    ArrivalSampler sampler(worker_rate, opt.deterministic);
    // Bounded admission ring of arrival timestamps (ns on this worker's
    // clock). head==tail means empty; occupancy is kept <= cap.
    std::vector<std::uint64_t> pending(cap + 1);
    std::size_t head = 0, tail = 0, occupancy = 0;
    // Admission-queue depth for the metrics sampler's timeline (no-op when
    // --timeline is off); refreshed after each admit sweep / service batch.
    timeseries::ScopedDepthGauge depth_gauge;
    const auto t0 = std::chrono::steady_clock::now();
    const auto now_ns = [&] {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    };
    std::uint64_t next_arrival = sampler.next_gap_ns(arrival_rng);
    bool generating = next_arrival <= run_ns;
    for (;;) {
      const std::uint64_t now = now_ns();
      // Admit every arrival due by now (and inside the window). A stalled
      // service admits/drops the whole backlog here in one sweep, so the
      // virtual schedule never falls behind the real clock.
      while (generating && next_arrival <= now) {
        ++slot.offered;
        if (occupancy < cap) {
          pending[tail] = next_arrival;
          tail = (tail + 1) % pending.size();
          ++occupancy;
          ++slot.admitted;
        } else {
          ++slot.dropped;
        }
        next_arrival += sampler.next_gap_ns(arrival_rng);
        if (next_arrival > run_ns) generating = false;
      }
      depth_gauge.set(occupancy);
      if (now >= run_ns) generating = false;
      if (occupancy == 0) {
        if (!generating) break;  // window closed and queue drained: done
        // Idle until the next scheduled arrival: sleep while it is far,
        // spin when it is near (sleep granularity would skew admission).
        const std::uint64_t wait = next_arrival > now ? next_arrival - now : 0;
        if (wait > 200'000) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        } else {
          detail::cpu_relax();
        }
        continue;
      }
      const auto k = static_cast<std::size_t>(
          occupancy < batch ? occupancy : static_cast<std::size_t>(batch));
      service(tm, ctx, rng, tid, static_cast<unsigned>(k));
      const std::uint64_t commit = now_ns();
      for (std::size_t i = 0; i < k; ++i) {
        const std::uint64_t arrival = pending[head];
        head = (head + 1) % pending.size();
        slot.latency.record(commit > arrival ? commit - arrival : 0);
      }
      occupancy -= k;
      depth_gauge.set(occupancy);
      slot.completed += k;
    }
    slot.stats = ctx.stats;
  });

  for (const PerThread& s : slots) {
    r.offered += s.offered;
    r.admitted += s.admitted;
    r.dropped += s.dropped;
    r.completed += s.completed;
    r.latency.merge(s.latency);
    r.stats.merge(s.stats);
  }
  return r;
}

}  // namespace rhtm
