#pragma once

// Mutating red-black tree — the dynamic counterpart of ConstantRbTree.
// Inserts and deletes really restructure the tree (CLRS rotations and
// recoloring executed through the transactional handle), so the footprint
// of an update transaction varies with where the rebalance terminates and
// the capacity escalation chain (fast -> RH1-slow -> RH2 -> slow-slow) is
// exercised by the workload itself rather than by ablation knobs. This is
// exactly the structurally-mutating shape Brown & Ravi and Alistarh et al.
// argue HyTM methodology must not hide.
//
// Representation: an index-based node pool (nil = -1) whose every field —
// key, value, child/parent links, color — is a TVar, plus a transactional
// free list threaded through the `right` link and a transactional size
// counter. Allocation and reclamation happen *inside* the enclosing
// transaction, so an aborted insert/erase rolls its pool mutation back on
// the atomic substrates.
//
// Termination under HtmEmul: the emulated substrate has no rollback or
// conflict detection, so concurrent runs can leave the structure
// inconsistent between operations (a documented modelling infidelity —
// see SubstrateTraits<HtmEmul>::kAtomic). Every loop in this file is
// therefore step-bounded: on a corrupted structure an operation gives up
// and returns instead of chasing a pointer cycle forever. On the atomic
// substrates (sim, rtm) the bounds are unreachable for any pool that fits
// in memory and the structure stays a valid red-black tree under
// concurrent transactional mutation (tests/mutating_tree_test.cpp).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/cell.h"

namespace rhtm {

class MutatingRbTree {
 public:
  static constexpr std::int32_t kNil = -1;

  /// Pool capacity = the maximum number of live keys. Every node starts on
  /// the free list; the tree starts empty.
  explicit MutatingRbTree(std::size_t capacity) : nodes_(capacity) {
    for (std::size_t i = 0; i < capacity; ++i) {
      nodes_[i].right.unsafe_write(i + 1 < capacity ? static_cast<std::int32_t>(i + 1)
                                                    : kNil);
    }
    free_head_.unsafe_write(capacity > 0 ? 0 : kNil);
  }

  [[nodiscard]] std::size_t capacity() const { return nodes_.size(); }
  [[nodiscard]] std::size_t unsafe_size() const {
    return static_cast<std::size_t>(size_.unsafe_read());
  }

  /// Transactional lookup; on hit stores the value into *out (if non-null).
  template <class Handle>
  bool lookup(Handle& h, std::uint64_t key, TmWord* out = nullptr) const {
    std::int32_t i = root_.read(h);
    for (unsigned step = 0; step < kMaxSteps && in_pool(i); ++step) {
      const Node& n = node(i);
      const TmWord k = n.key.read(h);
      if (k == key) {
        if (out != nullptr) *out = n.value.read(h);
        return true;
      }
      i = key < k ? n.left.read(h) : n.right.read(h);
    }
    return false;
  }

  /// Transactional insert. Returns true when the key was newly inserted;
  /// when the key is already present its value is overwritten and false is
  /// returned. A full pool (or a step-bound bail-out on a corrupted
  /// emulated structure) also returns false.
  template <class Handle>
  bool insert(Handle& h, std::uint64_t key, TmWord value) {
    std::int32_t parent = kNil;
    std::int32_t i = root_.read(h);
    bool went_left = false;
    unsigned step = 0;
    while (in_pool(i)) {
      if (++step > kMaxSteps) return false;
      const Node& n = node(i);
      const TmWord k = n.key.read(h);
      if (k == key) {
        n.value.write(h, value);
        return false;
      }
      parent = i;
      went_left = key < k;
      i = went_left ? n.left.read(h) : n.right.read(h);
    }
    const std::int32_t z = alloc(h);
    if (z == kNil) return false;  // pool exhausted
    const Node& zn = node(z);
    zn.key.write(h, key);
    zn.value.write(h, value);
    zn.left.write(h, kNil);
    zn.right.write(h, kNil);
    zn.parent.write(h, parent);
    zn.color.write(h, kRed);
    if (!in_pool(parent)) {
      root_.write(h, z);
    } else if (went_left) {
      node(parent).left.write(h, z);
    } else {
      node(parent).right.write(h, z);
    }
    size_.write(h, size_.read(h) + 1);
    insert_fixup(h, z);
    return true;
  }

  /// Transactional erase. Returns whether the key was present.
  template <class Handle>
  bool erase(Handle& h, std::uint64_t key) {
    // Find the node carrying the key.
    std::int32_t z = root_.read(h);
    unsigned step = 0;
    while (in_pool(z)) {
      if (++step > kMaxSteps) return false;
      const TmWord k = node(z).key.read(h);
      if (k == key) break;
      z = key < k ? node(z).left.read(h) : node(z).right.read(h);
    }
    if (!in_pool(z)) return false;

    // Two children: move the successor's payload into z, then unlink the
    // successor (which has no left child) instead.
    if (in_pool(node(z).left.read(h)) && in_pool(node(z).right.read(h))) {
      std::int32_t s = node(z).right.read(h);
      for (step = 0; step < kMaxSteps; ++step) {
        const std::int32_t l = node(s).left.read(h);
        if (!in_pool(l)) break;
        s = l;
      }
      node(z).key.write(h, node(s).key.read(h));
      node(z).value.write(h, node(s).value.read(h));
      z = s;
    }

    // z now has at most one child; splice it out.
    const std::int32_t zl = node(z).left.read(h);
    const std::int32_t c = in_pool(zl) ? zl : node(z).right.read(h);
    const std::int32_t p = node(z).parent.read(h);
    if (in_pool(c)) node(c).parent.write(h, p);
    if (!in_pool(p)) {
      root_.write(h, c);
    } else if (node(p).left.read(h) == z) {
      node(p).left.write(h, c);
    } else {
      node(p).right.write(h, c);
    }
    const bool was_black = node(z).color.read(h) == kBlack;
    free_node(h, z);
    size_.write(h, size_.read(h) - 1);
    if (was_black) erase_fixup(h, c, p);
    return true;
  }

  /// Transactional in-order scan from the leftmost node, visiting at most
  /// `max_nodes` keys and accumulating them into *checksum. Returns the
  /// number of keys visited. This is the long-transaction op of the phased
  /// scenario: its read set scales with the live tree, which is what pushes
  /// the protocols down their capacity escalation chains.
  template <class Handle>
  std::size_t scan_inorder(Handle& h, std::size_t max_nodes, std::uint64_t* checksum) const {
    std::size_t visited = 0;
    std::uint64_t sum = 0;
    std::int32_t i = root_.read(h);
    // Descend to the leftmost node, then successor-walk via parent links.
    unsigned step = 0;
    std::int32_t cur = kNil;
    while (in_pool(i)) {
      if (++step > kMaxSteps) break;
      cur = i;
      i = node(i).left.read(h);
    }
    const unsigned kWalkBound = kMaxSteps * 64;
    for (unsigned walk = 0; in_pool(cur) && visited < max_nodes && walk < kWalkBound;
         ++walk) {
      sum += node(cur).key.read(h);
      ++visited;
      cur = successor(h, cur);
    }
    if (checksum != nullptr) *checksum += sum;
    return visited;
  }

  // ------------------------------------------------------------ validation --
  /// Full red-black + conservation audit over the quiescent structure
  /// (unsafe reads; callers must have joined every mutator thread):
  /// BST order, parent links, root blackness, no red-red edge, equal black
  /// height on every path, size counter == reachable nodes, and
  /// reachable + free-list == pool (no leak, no double-use, no cycle).
  bool validate(std::string* why = nullptr) const {
    UnsafeHandle h;
    const auto fail = [&](const std::string& msg) {
      if (why != nullptr) *why = msg;
      return false;
    };
    std::vector<bool> seen(nodes_.size(), false);
    const std::int32_t root = root_.read(h);
    if (root != kNil && !in_pool(root)) return fail("root index out of pool");
    if (in_pool(root)) {
      if (node(root).color.read(h) != kBlack) return fail("root is red");
      if (node(root).parent.read(h) != kNil) return fail("root has a parent");
    }
    std::size_t count = 0;
    const int bh = audit(h, root, kNil, nullptr, nullptr, seen, &count, fail);
    if (bh < 0) return false;
    if (count != unsafe_size()) {
      return fail("size counter " + std::to_string(unsafe_size()) + " != reachable " +
                  std::to_string(count));
    }
    std::size_t free_count = 0;
    std::int32_t f = free_head_.read(h);
    while (in_pool(f)) {
      if (seen[static_cast<std::size_t>(f)]) {
        return fail("free-list node also reachable (or free-list cycle)");
      }
      seen[static_cast<std::size_t>(f)] = true;
      ++free_count;
      f = node(f).right.read(h);
    }
    if (f != kNil) return fail("free-list link out of pool");
    if (count + free_count != nodes_.size()) {
      return fail("pool leak: " + std::to_string(count) + " live + " +
                  std::to_string(free_count) + " free != " + std::to_string(nodes_.size()));
    }
    return true;
  }

 private:
  static constexpr TmWord kRed = 0;
  static constexpr TmWord kBlack = 1;
  /// Step bound on every traversal/fixup loop: far above any valid tree's
  /// height (2·log2(capacity+1) < 128 up to 2^63 nodes) yet finite, so a
  /// structure corrupted by the non-atomic emulated substrate can never
  /// hang an operation.
  static constexpr unsigned kMaxSteps = 512;

  struct Node {
    TVar<TmWord> key;
    TVar<TmWord> value;
    TVar<std::int32_t> left{kNil};
    TVar<std::int32_t> right{kNil};
    TVar<std::int32_t> parent{kNil};
    TVar<TmWord> color{kBlack};
  };

  [[nodiscard]] bool in_pool(std::int32_t i) const {
    return i >= 0 && static_cast<std::size_t>(i) < nodes_.size();
  }
  [[nodiscard]] const Node& node(std::int32_t i) const {
    return nodes_[static_cast<std::size_t>(i)];
  }

  // ------------------------------------------------------------- free list --
  template <class Handle>
  std::int32_t alloc(Handle& h) {
    const std::int32_t i = free_head_.read(h);
    if (!in_pool(i)) return kNil;
    free_head_.write(h, node(i).right.read(h));
    return i;
  }

  template <class Handle>
  void free_node(Handle& h, std::int32_t i) {
    node(i).right.write(h, free_head_.read(h));
    free_head_.write(h, i);
  }

  // -------------------------------------------------------------- rotations --
  template <class Handle>
  void rotate_left(Handle& h, std::int32_t x) {
    const std::int32_t y = node(x).right.read(h);
    if (!in_pool(y)) return;
    const std::int32_t yl = node(y).left.read(h);
    node(x).right.write(h, yl);
    if (in_pool(yl)) node(yl).parent.write(h, x);
    const std::int32_t p = node(x).parent.read(h);
    node(y).parent.write(h, p);
    if (!in_pool(p)) {
      root_.write(h, y);
    } else if (node(p).left.read(h) == x) {
      node(p).left.write(h, y);
    } else {
      node(p).right.write(h, y);
    }
    node(y).left.write(h, x);
    node(x).parent.write(h, y);
  }

  template <class Handle>
  void rotate_right(Handle& h, std::int32_t x) {
    const std::int32_t y = node(x).left.read(h);
    if (!in_pool(y)) return;
    const std::int32_t yr = node(y).right.read(h);
    node(x).left.write(h, yr);
    if (in_pool(yr)) node(yr).parent.write(h, x);
    const std::int32_t p = node(x).parent.read(h);
    node(y).parent.write(h, p);
    if (!in_pool(p)) {
      root_.write(h, y);
    } else if (node(p).left.read(h) == x) {
      node(p).left.write(h, y);
    } else {
      node(p).right.write(h, y);
    }
    node(y).right.write(h, x);
    node(x).parent.write(h, y);
  }

  // ---------------------------------------------------------------- fixups --
  template <class Handle>
  void insert_fixup(Handle& h, std::int32_t z) {
    for (unsigned step = 0; step < kMaxSteps; ++step) {
      const std::int32_t p = node(z).parent.read(h);
      if (!in_pool(p) || node(p).color.read(h) != kRed) break;
      const std::int32_t g = node(p).parent.read(h);
      if (!in_pool(g)) break;
      if (node(g).left.read(h) == p) {
        const std::int32_t u = node(g).right.read(h);
        if (in_pool(u) && node(u).color.read(h) == kRed) {
          node(p).color.write(h, kBlack);
          node(u).color.write(h, kBlack);
          node(g).color.write(h, kRed);
          z = g;
        } else {
          if (node(p).right.read(h) == z) {
            z = p;
            rotate_left(h, z);
          }
          const std::int32_t p2 = node(z).parent.read(h);
          if (!in_pool(p2)) break;
          node(p2).color.write(h, kBlack);
          const std::int32_t g2 = node(p2).parent.read(h);
          if (!in_pool(g2)) break;
          node(g2).color.write(h, kRed);
          rotate_right(h, g2);
        }
      } else {
        const std::int32_t u = node(g).left.read(h);
        if (in_pool(u) && node(u).color.read(h) == kRed) {
          node(p).color.write(h, kBlack);
          node(u).color.write(h, kBlack);
          node(g).color.write(h, kRed);
          z = g;
        } else {
          if (node(p).left.read(h) == z) {
            z = p;
            rotate_right(h, z);
          }
          const std::int32_t p2 = node(z).parent.read(h);
          if (!in_pool(p2)) break;
          node(p2).color.write(h, kBlack);
          const std::int32_t g2 = node(p2).parent.read(h);
          if (!in_pool(g2)) break;
          node(g2).color.write(h, kRed);
          rotate_left(h, g2);
        }
      }
    }
    const std::int32_t r = root_.read(h);
    if (in_pool(r)) node(r).color.write(h, kBlack);
  }

  /// CLRS delete-fixup with an explicit parent because x may be nil.
  template <class Handle>
  void erase_fixup(Handle& h, std::int32_t x, std::int32_t xp) {
    for (unsigned step = 0; step < kMaxSteps; ++step) {
      if (!in_pool(xp)) break;  // x is the root
      if (in_pool(x) && node(x).color.read(h) == kRed) break;
      if (node(xp).left.read(h) == x) {
        std::int32_t w = node(xp).right.read(h);
        if (!in_pool(w)) break;  // emul-corruption bail-out
        if (node(w).color.read(h) == kRed) {
          node(w).color.write(h, kBlack);
          node(xp).color.write(h, kRed);
          rotate_left(h, xp);
          w = node(xp).right.read(h);
          if (!in_pool(w)) break;
        }
        const std::int32_t wl = node(w).left.read(h);
        const std::int32_t wr = node(w).right.read(h);
        const bool wl_black = !in_pool(wl) || node(wl).color.read(h) == kBlack;
        const bool wr_black = !in_pool(wr) || node(wr).color.read(h) == kBlack;
        if (wl_black && wr_black) {
          node(w).color.write(h, kRed);
          x = xp;
          xp = node(x).parent.read(h);
        } else {
          if (wr_black) {
            if (in_pool(wl)) node(wl).color.write(h, kBlack);
            node(w).color.write(h, kRed);
            rotate_right(h, w);
            w = node(xp).right.read(h);
            if (!in_pool(w)) break;
          }
          node(w).color.write(h, node(xp).color.read(h));
          node(xp).color.write(h, kBlack);
          const std::int32_t wr2 = node(w).right.read(h);
          if (in_pool(wr2)) node(wr2).color.write(h, kBlack);
          rotate_left(h, xp);
          x = root_.read(h);
          break;
        }
      } else {
        std::int32_t w = node(xp).left.read(h);
        if (!in_pool(w)) break;
        if (node(w).color.read(h) == kRed) {
          node(w).color.write(h, kBlack);
          node(xp).color.write(h, kRed);
          rotate_right(h, xp);
          w = node(xp).left.read(h);
          if (!in_pool(w)) break;
        }
        const std::int32_t wl = node(w).left.read(h);
        const std::int32_t wr = node(w).right.read(h);
        const bool wl_black = !in_pool(wl) || node(wl).color.read(h) == kBlack;
        const bool wr_black = !in_pool(wr) || node(wr).color.read(h) == kBlack;
        if (wl_black && wr_black) {
          node(w).color.write(h, kRed);
          x = xp;
          xp = node(x).parent.read(h);
        } else {
          if (wl_black) {
            if (in_pool(wr)) node(wr).color.write(h, kBlack);
            node(w).color.write(h, kRed);
            rotate_left(h, w);
            w = node(xp).left.read(h);
            if (!in_pool(w)) break;
          }
          node(w).color.write(h, node(xp).color.read(h));
          node(xp).color.write(h, kBlack);
          const std::int32_t wl2 = node(w).left.read(h);
          if (in_pool(wl2)) node(wl2).color.write(h, kBlack);
          rotate_right(h, xp);
          x = root_.read(h);
          break;
        }
      }
    }
    if (in_pool(x)) node(x).color.write(h, kBlack);
  }

  template <class Handle>
  std::int32_t successor(Handle& h, std::int32_t i) const {
    std::int32_t r = node(i).right.read(h);
    if (in_pool(r)) {
      for (unsigned step = 0; step < kMaxSteps; ++step) {
        const std::int32_t l = node(r).left.read(h);
        if (!in_pool(l)) return r;
        r = l;
      }
      return kNil;
    }
    std::int32_t p = node(i).parent.read(h);
    for (unsigned step = 0; step < kMaxSteps && in_pool(p); ++step) {
      if (node(p).left.read(h) == i) return p;
      i = p;
      p = node(p).parent.read(h);
    }
    return kNil;
  }

  /// Recursive audit helper for validate(): returns the subtree's black
  /// height, or -1 after calling `fail`. Bounds are *exclusive* and null =
  /// unbounded, so duplicate keys and the extreme key values cannot slip
  /// through lo/hi ± 1 arithmetic. The `seen` bitmap turns any cycle into
  /// a detected failure instead of unbounded recursion.
  template <class Fail>
  int audit(UnsafeHandle& h, std::int32_t i, std::int32_t expect_parent,
            const std::uint64_t* lo, const std::uint64_t* hi, std::vector<bool>& seen,
            std::size_t* count, const Fail& fail) const {
    if (i == kNil) return 1;  // nil leaves are black
    if (!in_pool(i)) return fail("link out of pool"), -1;
    if (seen[static_cast<std::size_t>(i)]) return fail("cycle / shared node"), -1;
    seen[static_cast<std::size_t>(i)] = true;
    ++*count;
    const Node& n = node(i);
    if (n.parent.read(h) != expect_parent) return fail("bad parent link"), -1;
    const TmWord k = n.key.read(h);
    if ((lo != nullptr && k <= *lo) || (hi != nullptr && k >= *hi)) {
      return fail("BST order violated"), -1;
    }
    const TmWord color = n.color.read(h);
    if (color != kRed && color != kBlack) return fail("bad color word"), -1;
    const std::int32_t l = n.left.read(h);
    const std::int32_t r = n.right.read(h);
    if (color == kRed) {
      if (in_pool(l) && node(l).color.read(h) == kRed) return fail("red-red edge"), -1;
      if (in_pool(r) && node(r).color.read(h) == kRed) return fail("red-red edge"), -1;
    }
    const int bl = audit(h, l, i, lo, &k, seen, count, fail);
    if (bl < 0) return -1;
    const int br = audit(h, r, i, &k, hi, seen, count, fail);
    if (br < 0) return -1;
    if (bl != br) return fail("black-height mismatch"), -1;
    return bl + (color == kBlack ? 1 : 0);
  }

  std::vector<Node> nodes_;
  TVar<std::int32_t> root_{kNil};
  TVar<std::int32_t> free_head_{kNil};
  TVar<TmWord> size_{0};
};

/// Pre-populates `tree` with the even keys of [0, capacity) — the
/// half-occupancy steady state of an equal insert/erase mix over a fixed
/// key domain, shared by every scenario that benches this tree.
/// Non-transactional: single-threaded initialization only.
inline void populate_even_keys(MutatingRbTree& tree) {
  UnsafeHandle h;
  for (std::size_t k = 0; k < tree.capacity(); k += 2) {
    tree.insert(h, static_cast<std::uint64_t>(k), static_cast<TmWord>(k));
  }
}

}  // namespace rhtm
