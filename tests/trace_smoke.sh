#!/bin/sh
# Trace smoke: run the contention scenario with the flight recorder and the
# metrics sampler on, then have scripts/trace_summary.py --check validate the
# Chrome JSON (structure + >=95% of in-transaction time attributed to named
# tiers) and assert the timeline landed in the BENCH json.
#
# Usage: trace_smoke.sh <run_all> <trace_summary.py> <workdir>
set -e
bin="$1"
summary="$2"
work="$3"
mkdir -p "$work"
trace="$work/trace_contention.json"
rm -f "$trace" "$work/BENCH_contention.json"

"$bin" --scenario=contention --substrate=sim --cm=adaptive \
       --seconds=0.02 --threads=2 \
       --trace="$trace" --timeline=10 --json-dir="$work"

test -s "$trace" || { echo "no trace written"; exit 1; }

python3 "$summary" "$trace" --check

# The sampler must have produced a timeline array in the report.
grep -q '"timeline"' "$work/BENCH_contention.json" || {
  echo "BENCH_contention.json has no timeline field"
  exit 1
}
# Provenance must be stamped (any value, including "unknown", but present).
grep -q '"git_sha"' "$work/BENCH_contention.json" || {
  echo "BENCH_contention.json has no git_sha provenance"
  exit 1
}
echo "trace smoke passed"
