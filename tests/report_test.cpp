// Round-trips the JSON bench-report emitter (core/report.h): a report is
// serialized, re-parsed by a minimal JSON parser, and every field compared
// against the source. Also covers string escaping, integral-vs-float number
// formatting, empty containers, and the write_json file path.

#include "core/report.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "test_common.h"

namespace rhtm::test {
namespace {

// ------------------------------------------------- a minimal JSON parser --
// Just enough JSON (objects, arrays, strings, numbers, literals) to parse
// the emitter's own output. Throws std::runtime_error on malformed input.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // preserves order

  [[nodiscard]] const JsonValue* get(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) throw std::runtime_error(std::string("expected ") + c);
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = s_[pos_] == 't';
        pos_ += v.boolean ? 4 : 5;
        return v;
      }
      case 'n': {
        pos_ += 4;
        return {};
      }
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      std::string key = (peek(), string());
      expect(':');
      v.object.emplace_back(std::move(key), value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) throw std::runtime_error("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) throw std::runtime_error("bad \\u");
            const unsigned code = static_cast<unsigned>(
                std::stoul(s_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            if (code > 0x7f) throw std::runtime_error("non-ascii \\u unsupported");
            out += static_cast<char>(code);
            break;
          }
          default: throw std::runtime_error("bad escape char");
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= s_.size()) throw std::runtime_error("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------------ tests --

report::BenchReport sample_report() {
  report::BenchReport rep;
  rep.scenario = "report_test_scenario";
  rep.substrate = "sim";
  rep.seconds = 0.01;
  rep.wall_seconds = 1.5;
  rep.set_meta("workload", "unit \"quoted\" \\ and\nnewline\ttab");
  rep.set_meta("write_percent", "20");

  report::TableData& sweep = rep.add_table("sweep table");
  report::SeriesData& htm = sweep.add_series("HTM");
  htm.add_point(1).set("total_ops", 12345).set("abort_ratio", 0.0625);
  htm.add_point(2).set("total_ops", 9007199254740992.0).set("abort_ratio", 0.5);
  report::SeriesData& tl2 = sweep.add_series("TL2");
  tl2.add_point(1).set("total_ops", 42);

  report::TableData& wide = rep.add_table("wide table", report::TableStyle::kWide,
                                          "tx_words", "fast_pct");
  wide.add_series("RH1").add_point(32).set("fast_pct", 99.125).set("rh2_pct", 0);

  // Open-loop service shape: latency percentiles, drop accounting and
  // offered-vs-achieved rate, fractional and integral mixed.
  report::TableData& open = rep.add_table("open-loop table", report::TableStyle::kSweep,
                                          "offered_rate", "achieved_per_sec");
  open.add_series("RH1-Fast")
      .add_point(20000)
      .set("offered_per_sec", 19987.25)
      .set("achieved_per_sec", 19501.5)
      .set("drop_rate", 0.0243)
      .set("p50_us", 12.5)
      .set("p99_us", 181.375)
      .set("p999_us", 905.0)
      .set("dropped", 486);
  return rep;
}

void expect_number(const JsonValue& v, double want) {
  CHECK(v.kind == JsonValue::Kind::kNumber);
  CHECK(v.number == want);
}

void expect_string(const JsonValue* v, const std::string& want) {
  CHECK(v != nullptr);
  if (v != nullptr) {
    CHECK(v->kind == JsonValue::Kind::kString);
    CHECK(v->string == want);
  }
}

void test_roundtrip() {
  const report::BenchReport rep = sample_report();
  const std::string json = rep.to_json();
  JsonValue root;
  try {
    root = JsonParser(json).parse();
  } catch (const std::exception& e) {
    std::printf("    parse error: %s\n%s\n", e.what(), json.c_str());
    CHECK(false);
    return;
  }

  expect_string(root.get("schema"), report::kSchemaId);
  expect_string(root.get("scenario"), rep.scenario);
  expect_string(root.get("substrate"), rep.substrate);
  expect_number(*root.get("seconds"), rep.seconds);
  expect_number(*root.get("wall_seconds"), rep.wall_seconds);

  const JsonValue* meta = root.get("meta");
  CHECK(meta != nullptr && meta->kind == JsonValue::Kind::kObject);
  CHECK_EQ(meta->object.size(), rep.meta.size());
  for (const auto& [k, v] : rep.meta) expect_string(meta->get(k), v);

  const JsonValue* tables = root.get("tables");
  CHECK(tables != nullptr && tables->kind == JsonValue::Kind::kArray);
  CHECK_EQ(tables->array.size(), rep.tables.size());
  for (std::size_t t = 0; t < rep.tables.size(); ++t) {
    const report::TableData& want = rep.tables[t];
    const JsonValue& got = tables->array[t];
    expect_string(got.get("title"), want.title);
    expect_string(got.get("x"), want.x_name);
    expect_string(got.get("primary_metric"), want.primary_metric);
    expect_string(got.get("style"),
                  want.style == report::TableStyle::kSweep ? "sweep" : "wide");
    const JsonValue* series = got.get("series");
    CHECK(series != nullptr && series->kind == JsonValue::Kind::kArray);
    CHECK_EQ(series->array.size(), want.series.size());
    for (std::size_t s = 0; s < want.series.size(); ++s) {
      const report::SeriesData& ws = want.series[s];
      const JsonValue& gs = series->array[s];
      expect_string(gs.get("name"), ws.name);
      const JsonValue* points = gs.get("points");
      CHECK(points != nullptr && points->kind == JsonValue::Kind::kArray);
      CHECK_EQ(points->array.size(), ws.points.size());
      for (std::size_t p = 0; p < ws.points.size(); ++p) {
        const report::Point& wp = ws.points[p];
        const JsonValue& gp = points->array[p];
        expect_number(*gp.get("x"), wp.x);
        const JsonValue* metrics = gp.get("metrics");
        CHECK(metrics != nullptr && metrics->kind == JsonValue::Kind::kObject);
        CHECK_EQ(metrics->object.size(), wp.metrics.size());
        for (const report::Metric& m : wp.metrics) {
          const JsonValue* gm = metrics->get(m.name);
          CHECK(gm != nullptr);
          if (gm != nullptr) expect_number(*gm, m.value);
        }
      }
    }
  }
}

void test_integral_formatting() {
  // Integral doubles must serialize without a decimal point so the JSON
  // totals are textually identical to the printed table's %lld cells.
  std::string out;
  report::json_number(out, 123456789.0);
  CHECK(out == "123456789");
  out.clear();
  report::json_number(out, 0.0625);
  CHECK(out == "0.0625");
  out.clear();
  report::json_number(out, -17.0);
  CHECK(out == "-17");
  out.clear();
  report::json_number(out, std::nan(""));
  CHECK(out == "0");  // JSON cannot carry NaN; degrade deterministically
}

void test_escaping() {
  std::string out;
  report::json_escape(out, "a\"b\\c\nd\te\x01" "f");
  CHECK(out == "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
}

void test_empty_report() {
  report::BenchReport rep;
  rep.scenario = "empty";
  rep.substrate = "emul";
  const JsonValue root = JsonParser(rep.to_json()).parse();
  const JsonValue* tables = root.get("tables");
  CHECK(tables != nullptr && tables->kind == JsonValue::Kind::kArray);
  CHECK(tables->array.empty());
  const JsonValue* meta = root.get("meta");
  CHECK(meta != nullptr && meta->object.empty());
}

void test_write_json_file() {
  const report::BenchReport rep = sample_report();
  const std::string path = rep.write_json(".");
  CHECK(path == "./BENCH_report_test_scenario.json");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  CHECK(f != nullptr);
  if (f != nullptr) {
    std::string content;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
    std::fclose(f);
    CHECK(content == rep.to_json());
  }
  std::remove(path.c_str());
}

void test_open_loop_fields_roundtrip() {
  // The service scenario's tail-latency fields must survive the JSON path
  // bit-exactly: fractional microsecond percentiles and sub-1 drop rates
  // are where a %g/precision regression would silently corrupt the gate.
  const report::BenchReport rep = sample_report();
  const JsonValue root = JsonParser(rep.to_json()).parse();
  const JsonValue* tables = root.get("tables");
  CHECK(tables != nullptr && tables->array.size() == 3);
  const JsonValue& open = tables->array[2];
  expect_string(open.get("x"), "offered_rate");
  expect_string(open.get("primary_metric"), "achieved_per_sec");
  const JsonValue& point = open.get("series")->array[0].get("points")->array[0];
  const JsonValue* metrics = point.get("metrics");
  CHECK(metrics != nullptr);
  expect_number(*metrics->get("offered_per_sec"), 19987.25);
  expect_number(*metrics->get("achieved_per_sec"), 19501.5);
  expect_number(*metrics->get("drop_rate"), 0.0243);
  expect_number(*metrics->get("p50_us"), 12.5);
  expect_number(*metrics->get("p99_us"), 181.375);
  expect_number(*metrics->get("p999_us"), 905.0);
  expect_number(*metrics->get("dropped"), 486);
}

void test_socket_field_roundtrip() {
  // Point::socket carries per-socket sweep geometry (the numa scenario). It
  // is emitted only when >= 0, so every report that never sets it stays
  // byte-identical to the previous schema — older readers see no new key.
  report::BenchReport rep = sample_report();
  CHECK(rep.to_json().find("\"socket\"") == std::string::npos);

  report::TableData& per = rep.add_table("per-socket table");
  per.add_series("TL2/socket0").add_point(2).set("total_ops", 777);
  per.series.back().points.back().socket = 0;
  per.add_series("TL2/socket1").add_point(2).set("total_ops", 778);
  per.series.back().points.back().socket = 1;

  const JsonValue root = JsonParser(rep.to_json()).parse();
  const JsonValue* tables = root.get("tables");
  CHECK(tables != nullptr && !tables->array.empty());
  const JsonValue& table = tables->array.back();
  for (int s = 0; s < 2; ++s) {
    const JsonValue& point =
        table.get("series")->array[static_cast<std::size_t>(s)].get("points")->array[0];
    expect_number(*point.get("x"), 2);
    const JsonValue* socket = point.get("socket");
    CHECK(socket != nullptr);
    if (socket != nullptr) expect_number(*socket, s);
    expect_number(*point.get("metrics")->get("total_ops"), 777 + s);
  }
  // Points that never set a socket still emit none, even in the same report.
  const JsonValue& plain =
      tables->array[0].get("series")->array[0].get("points")->array[0];
  CHECK(plain.get("socket") == nullptr);
}

void test_point_set_overwrites() {
  report::Point p;
  p.set("total_ops", 1).set("total_ops", 2);
  CHECK_EQ(p.metrics.size(), 1u);
  CHECK(*p.find("total_ops") == 2);
  CHECK(p.find("missing") == nullptr);
}

void test_timeline_roundtrip() {
  // An empty timeline (--timeline off, the default) must emit NO field at
  // all — the schema stays byte-identical for older readers.
  report::BenchReport rep = sample_report();
  CHECK(rep.to_json().find("\"timeline\"") == std::string::npos);

  report::Point& p0 = rep.timeline.emplace_back();
  p0.x = 0.25;
  p0.set("ops_per_sec", 120000.5).set("abort_rate", 0.125).set("queue_depth", 17);
  report::Point& p1 = rep.timeline.emplace_back();
  p1.x = 0.5;
  p1.set("ops_per_sec", 98000).set("commits_rh1_fast", 24500);

  const JsonValue root = JsonParser(rep.to_json()).parse();
  const JsonValue* timeline = root.get("timeline");
  CHECK(timeline != nullptr && timeline->kind == JsonValue::Kind::kArray);
  CHECK_EQ(timeline->array.size(), rep.timeline.size());
  for (std::size_t i = 0; i < rep.timeline.size(); ++i) {
    const report::Point& want = rep.timeline[i];
    const JsonValue& got = timeline->array[i];
    expect_number(*got.get("t"), want.x);
    const JsonValue* metrics = got.get("metrics");
    CHECK(metrics != nullptr && metrics->kind == JsonValue::Kind::kObject);
    CHECK_EQ(metrics->object.size(), want.metrics.size());
    for (const report::Metric& m : want.metrics) {
      const JsonValue* gm = metrics->get(m.name);
      CHECK(gm != nullptr);
      if (gm != nullptr) expect_number(*gm, m.value);
    }
  }
  // The tables array must be untouched by the timeline's presence.
  const JsonValue* tables = root.get("tables");
  CHECK(tables != nullptr && tables->array.size() == rep.tables.size());
}

}  // namespace
}  // namespace rhtm::test

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      {"roundtrip", rhtm::test::test_roundtrip},
      {"integral_formatting", rhtm::test::test_integral_formatting},
      {"escaping", rhtm::test::test_escaping},
      {"empty_report", rhtm::test::test_empty_report},
      {"write_json_file", rhtm::test::test_write_json_file},
      {"open_loop_fields_roundtrip", rhtm::test::test_open_loop_fields_roundtrip},
      {"socket_field_roundtrip", rhtm::test::test_socket_field_roundtrip},
      {"point_set_overwrites", rhtm::test::test_point_set_overwrites},
      {"timeline_roundtrip", rhtm::test::test_timeline_roundtrip},
  });
}
