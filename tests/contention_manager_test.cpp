// ContentionManager (core/contention.h) unit tests.
//
// The load-bearing one is fixed-policy bit-compatibility: the kFixed policy
// must reproduce the historical RH1 retry decisions EXACTLY, including RNG
// consumption — every pre-existing benchmark series is the baseline the
// adaptive policy is judged against, so the refactor must not perturb it.
// We replay the old decision procedure (capacity threshold, then the
// Mixed-N coin) against the manager with twin-seeded RNGs and require
// identical decisions and identical post-run RNG states.

#include "core/contention.h"
#include "test_common.h"

namespace rhtm {
namespace {

constexpr AbortCause kCauses[] = {AbortCause::kHtmConflict, AbortCause::kHtmCapacity,
                                  AbortCause::kHtmExplicit, AbortCause::kInjected};

/// The pre-ContentionManager RH1 decision procedure, verbatim: per abort,
/// deterministic capacity escalation first, else the Mixed-N coin.
struct OldRh1Decider {
  unsigned slow_retry_percent;
  unsigned capacity_retries;
  unsigned capacity_fails = 0;  // per-transaction

  void start_tx() { capacity_fails = 0; }

  bool go_slow(AbortCause cause, Xoshiro256& rng) {
    if (cause == AbortCause::kHtmCapacity && ++capacity_fails >= capacity_retries) {
      return true;
    }
    return slow_retry_percent > 0 && rng.percent_chance(slow_retry_percent);
  }
};

/// Twin replay: same seed, same synthetic abort stream, decisions AND RNG
/// states must match transaction by transaction.
void fixed_bit_compat_one(unsigned pct, unsigned capacity_retries, std::uint64_t seed) {
  CmConfig cfg;  // policy = kFixed
  ContentionManager cm(cfg, ContentionManager::Limits{pct, 0, capacity_retries});
  OldRh1Decider old{pct, capacity_retries};
  Xoshiro256 rng_new(seed);
  Xoshiro256 rng_old(seed);
  Xoshiro256 stream(seed ^ 0xabcdef);  // drives the synthetic abort causes

  for (int tx = 0; tx < 2000; ++tx) {
    CHECK(!cm.start_in_software());  // fixed never skips hardware
    old.start_tx();
    for (int attempt = 0; attempt < 32; ++attempt) {
      if (stream.percent_chance(40)) {  // this attempt commits
        cm.on_hardware_commit();
        break;
      }
      const AbortCause cause = kCauses[stream.below(4)];
      const bool d_new = cm.give_up_hardware(cause, rng_new);
      const bool d_old = old.go_slow(cause, rng_old);
      CHECK_EQ(d_new, d_old);
      if (d_new != d_old) return;  // stop before the streams diverge further
      if (d_new) break;            // escalated to software
    }
  }
  // Identical RNG consumption throughout => identical next draws.
  CHECK_EQ(rng_new.next_u64(), rng_old.next_u64());
}

void fixed_bit_compat() {
  for (const unsigned pct : {0u, 10u, 100u}) {
    for (const unsigned cap : {1u, 2u, 3u}) {
      fixed_bit_compat_one(pct, cap, 0x1234u + pct * 131 + cap);
    }
  }
}

/// The fixed attempt budget (StandardHytm / HybridNorec semantics): give up
/// after exactly max_hw_attempts aborts, coin untouched (percent = 0 there).
void fixed_attempt_budget() {
  ContentionManager cm(CmConfig{}, ContentionManager::Limits{0, 3, 100});
  Xoshiro256 rng(7);
  const std::uint64_t before = [&] { Xoshiro256 copy = rng; return copy.next_u64(); }();
  CHECK(!cm.start_in_software());
  CHECK(!cm.give_up_hardware(AbortCause::kHtmConflict, rng));
  CHECK(!cm.give_up_hardware(AbortCause::kHtmConflict, rng));
  CHECK(cm.give_up_hardware(AbortCause::kHtmConflict, rng));  // attempt 3 of 3
  CHECK_EQ(rng.next_u64(), before);  // no coin drawn with percent == 0
}

/// Capacity escalation is deterministic under EVERY policy.
void capacity_escalation_all_policies() {
  for (const CmPolicy policy :
       {CmPolicy::kFixed, CmPolicy::kAdaptive, CmPolicy::kAggressive}) {
    CmConfig cfg;
    cfg.policy = policy;
    cfg.adapt_min_attempts = 4;  // keep adaptive from escalating first
    cfg.adapt_max_attempts = 8;
    ContentionManager cm(cfg, ContentionManager::Limits{0, 0, 2});
    Xoshiro256 rng(11);
    CHECK(!cm.start_in_software());
    CHECK(!cm.give_up_hardware(AbortCause::kHtmCapacity, rng));
    CHECK(cm.give_up_hardware(AbortCause::kHtmCapacity, rng));  // 2nd of 2
  }
}

/// hw_threshold() is monotonically non-increasing as abort density rises,
/// non-decreasing as it decays, and always within [adapt_min, adapt_max].
void threshold_monotonicity() {
  CmConfig cfg;
  cfg.policy = CmPolicy::kAdaptive;
  ContentionManager cm(cfg, ContentionManager::Limits{});
  Xoshiro256 rng(3);
  CHECK_EQ(cm.hw_threshold(), cfg.adapt_max_attempts);  // quiet start
  unsigned prev = cm.hw_threshold();
  for (int i = 0; i < 64; ++i) {
    (void)cm.start_in_software();
    (void)cm.give_up_hardware(AbortCause::kHtmConflict, rng);
    const unsigned t = cm.hw_threshold();
    CHECK(t <= prev);
    CHECK(t >= cfg.adapt_min_attempts && t <= cfg.adapt_max_attempts);
    prev = t;
  }
  CHECK_EQ(prev, cfg.adapt_min_attempts);  // saturated contention
  for (int i = 0; i < 256; ++i) {
    cm.on_hardware_commit();
    const unsigned t = cm.hw_threshold();
    CHECK(t >= prev);
    CHECK(t >= cfg.adapt_min_attempts && t <= cfg.adapt_max_attempts);
    prev = t;
  }
  CHECK_EQ(prev, cfg.adapt_max_attempts);  // fully decayed
}

/// Same seed + same call sequence -> identical decisions and state.
void seeded_determinism() {
  CmConfig cfg;
  cfg.policy = CmPolicy::kAdaptive;
  ContentionManager a(cfg, ContentionManager::Limits{});
  ContentionManager b(cfg, ContentionManager::Limits{});
  Xoshiro256 rng_a(99);
  Xoshiro256 rng_b(99);
  Xoshiro256 stream(42);
  for (int i = 0; i < 4000; ++i) {
    const bool sw_a = a.start_in_software();
    const bool sw_b = b.start_in_software();
    CHECK_EQ(sw_a, sw_b);
    if (sw_a) continue;
    const AbortCause cause = kCauses[stream.below(4)];
    if (stream.percent_chance(30)) {
      a.on_hardware_commit();
      b.on_hardware_commit();
    } else {
      CHECK_EQ(a.give_up_hardware(cause, rng_a), b.give_up_hardware(cause, rng_b));
    }
    CHECK_EQ(a.abort_ewma_bp(), b.abort_ewma_bp());
    CHECK_EQ(a.failure_streak(), b.failure_streak());
    CHECK_EQ(a.hw_threshold(), b.hw_threshold());
  }
  CHECK_EQ(rng_a.next_u64(), rng_b.next_u64());
}

/// Hammering one manager must not move another's state (all state is
/// per-instance; the protocols hold one per ThreadCtx).
void per_thread_independence() {
  CmConfig cfg;
  cfg.policy = CmPolicy::kAdaptive;
  ContentionManager hot(cfg, ContentionManager::Limits{});
  ContentionManager idle(cfg, ContentionManager::Limits{});
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    (void)hot.start_in_software();
    (void)hot.give_up_hardware(AbortCause::kHtmConflict, rng);
  }
  CHECK(hot.abort_ewma_bp() > 0);
  CHECK_EQ(idle.abort_ewma_bp(), 0u);
  CHECK_EQ(idle.failure_streak(), 0u);
  CHECK(!idle.start_in_software());
}

/// Adaptive software mode: sw_streak consecutive failures send transactions
/// straight to software; every probe_period-th transaction re-probes
/// hardware; a hardware commit (and only a hardware commit) ends the mode.
void adaptive_software_mode() {
  CmConfig cfg;
  cfg.policy = CmPolicy::kAdaptive;
  cfg.sw_streak = 4;
  cfg.probe_period = 8;
  ContentionManager cm(cfg, ContentionManager::Limits{});
  Xoshiro256 rng(17);
  while (cm.failure_streak() < cfg.sw_streak) {
    CHECK(!cm.start_in_software());
    (void)cm.give_up_hardware(AbortCause::kHtmConflict, rng);
  }
  unsigned software = 0;
  unsigned probes = 0;
  for (int tx = 0; tx < 16; ++tx) {
    if (cm.start_in_software()) {
      ++software;
      cm.on_software_commit();  // software success does NOT break the streak
    } else {
      ++probes;
      (void)cm.give_up_hardware(AbortCause::kHtmConflict, rng);  // probe fails
    }
  }
  CHECK_EQ(probes, 2u);      // 16 transactions / probe_period 8
  CHECK_EQ(software, 14u);
  cm.on_hardware_commit();   // a probe finally commits in hardware
  CHECK_EQ(cm.failure_streak(), 0u);
  CHECK(!cm.start_in_software());
}

/// Aggressive: no coin (RNG untouched), gives up exactly at the ceiling.
void aggressive_budget() {
  CmConfig cfg;
  cfg.policy = CmPolicy::kAggressive;
  cfg.aggressive_attempts = 5;
  ContentionManager cm(cfg, ContentionManager::Limits{100, 1, 100});
  Xoshiro256 rng(23);
  const std::uint64_t before = [&] { Xoshiro256 copy = rng; return copy.next_u64(); }();
  CHECK(!cm.start_in_software());
  for (unsigned i = 1; i < cfg.aggressive_attempts; ++i) {
    CHECK(!cm.give_up_hardware(AbortCause::kHtmConflict, rng));
  }
  CHECK(cm.give_up_hardware(AbortCause::kHtmConflict, rng));
  CHECK_EQ(rng.next_u64(), before);  // never drew the Mixed-N coin
}

/// Config sanitisation: a zero/inverted adaptive range is clamped sane.
void config_clamping() {
  CmConfig cfg;
  cfg.policy = CmPolicy::kAdaptive;
  cfg.adapt_min_attempts = 0;
  cfg.adapt_max_attempts = 0;
  ContentionManager cm(cfg, ContentionManager::Limits{});
  CHECK_EQ(cm.hw_threshold(), 1u);  // min clamped to 1, max raised to min
}

void policy_names_round_trip() {
  for (const CmPolicy p :
       {CmPolicy::kFixed, CmPolicy::kAdaptive, CmPolicy::kAggressive}) {
    CmPolicy parsed{};
    CHECK(parse_cm_policy(to_string(p), &parsed));
    CHECK_EQ(static_cast<int>(parsed), static_cast<int>(p));
  }
  CmPolicy parsed{};
  CHECK(!parse_cm_policy("bogus", &parsed));
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      TestCase{"fixed_bit_compat", rhtm::fixed_bit_compat},
      TestCase{"fixed_attempt_budget", rhtm::fixed_attempt_budget},
      TestCase{"capacity_escalation_all_policies", rhtm::capacity_escalation_all_policies},
      TestCase{"threshold_monotonicity", rhtm::threshold_monotonicity},
      TestCase{"seeded_determinism", rhtm::seeded_determinism},
      TestCase{"per_thread_independence", rhtm::per_thread_independence},
      TestCase{"adaptive_software_mode", rhtm::adaptive_software_mode},
      TestCase{"aggressive_budget", rhtm::aggressive_budget},
      TestCase{"config_clamping", rhtm::config_clamping},
      TestCase{"policy_names_round_trip", rhtm::policy_names_round_trip},
  });
}
