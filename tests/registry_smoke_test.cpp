// Registry smoke test: every registered scenario (this binary links ALL of
// bench/'s scenario TUs) runs one tiny measurement point on the simulated
// substrate and must produce a well-formed report — at least one table,
// every table non-empty, and some nonzero primary metric. Also pins the
// registry contract itself: unique names, and the full scenario set the
// acceptance criteria enumerate.

#include <set>
#include <string>

#include "bench/registry.h"
#include "test_common.h"

namespace rhtm::test {
namespace {

bench::Options tiny_options() {
  bench::Options opt;
  opt.seconds = 0.002;
  opt.calib_seconds = 0.002;
  opt.threads = {1, 2};
  opt.substrate = SubstrateKind::kSim;  // HtmSim: real conflict/capacity semantics
  opt.write_json = false;
  return opt;
}

void test_registry_contents() {
  const auto scenarios = bench::Registry::instance().sorted();
  CHECK(scenarios.size() >= 24);
  std::set<std::string> names;
  for (const bench::Scenario& s : scenarios) {
    CHECK(s.name != nullptr && s.paper_ref != nullptr && s.summary != nullptr);
    CHECK(s.run != nullptr);
    CHECK(names.insert(s.name).second);  // unique
  }
  for (const char* required :
       {"fig1_rbtree", "fig2_rbtree_mix", "fig2_breakdown", "fig3_hashtable",
        "fig3_sortedlist", "fig3_randomarray", "ext_hybrids", "ablation_clock",
        "ablation_stripes", "ablation_capacity", "ablation_readmask", "ablation_policy",
        "micro_htm", "micro_barriers", "skiplist", "zipfian_mix", "mutating_tree", "queue",
        "phased", "commit_path", "service", "durable", "contention", "numa"}) {
    CHECK(names.count(required) == 1);
  }
}

void test_every_scenario_runs_under_sim() {
  const bench::Options opt = tiny_options();
  for (const bench::Scenario& s : bench::Registry::instance().sorted()) {
    std::printf("    running %s\n", s.name);
    report::BenchReport rep = s.run(opt);
    CHECK(!rep.tables.empty());
    CHECK(!rep.substrate.empty());
    bool any_nonzero_primary = false;
    for (const report::TableData& table : rep.tables) {
      CHECK(!table.series.empty());
      bool any_point = false;
      for (const report::SeriesData& series : table.series) {
        CHECK(!series.name.empty());
        for (const report::Point& p : series.points) {
          any_point = true;
          CHECK(!p.metrics.empty());
          const double* primary = p.find(table.primary_metric);
          if (primary != nullptr && *primary != 0) any_nonzero_primary = true;
        }
      }
      CHECK(any_point);
    }
    if (!any_nonzero_primary) std::printf("    (all-zero primary metric in %s)\n", s.name);
    CHECK(any_nonzero_primary);
  }
}

}  // namespace
}  // namespace rhtm::test

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      {"registry_contents", rhtm::test::test_registry_contents},
      {"every_scenario_runs_under_sim", rhtm::test::test_every_scenario_runs_under_sim},
  });
}
