// MutatingRbTree invariants: the tree must remain a valid red-black tree
// (BST order, parent links, no red-red edge, uniform black height) AND
// conserve its node pool (live + free == capacity, size counter exact)
// under transactional mutation — sequentially against a std::set oracle
// for every protocol, and under concurrent insert/erase/lookup churn.
//
// Substrate coverage mirrors protocol_invariants_test: the concurrent legs
// run on HtmSim (software-validated commits) and on HtmRtm when the host
// has usable TSX (the software fallbacks otherwise — the invariants must
// hold either way). HtmEmul is excluded from the *concurrent* legs by
// design: it has no conflict detection or rollback
// (SubstrateTraits<HtmEmul>::kAtomic is false), so concurrent structural
// mutation on it is a modelling device; the tree's step-bounded loops only
// guarantee such runs terminate, not that the structure stays valid.

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/rhtm.h"
#include "test_common.h"
#include "workloads/mutating_rbtree.h"

namespace rhtm {
namespace {

using rhtm::test::TestCase;

constexpr std::size_t kDomain = 512;

// ------------------------------------------------------- sequential oracle --

/// Random insert/erase/lookup through `tm`, mirrored into a std::set; the
/// tree must agree with the oracle op-by-op and validate() at the end.
template <class Tm>
void sequential_oracle(Tm& tm, std::uint64_t seed) {
  MutatingRbTree tree(kDomain);
  std::set<std::uint64_t> oracle;
  typename Tm::ThreadCtx ctx(tm);
  Xoshiro256 rng(seed);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t key = rng.below(kDomain);
    const unsigned coin = static_cast<unsigned>(rng.below(3));
    if (coin == 0) {
      bool inserted = false;
      tm.atomically(ctx, [&](auto& tx) { inserted = tree.insert(tx, key, key * 3); });
      CHECK_EQ(inserted, oracle.insert(key).second);
    } else if (coin == 1) {
      bool erased = false;
      tm.atomically(ctx, [&](auto& tx) { erased = tree.erase(tx, key); });
      CHECK_EQ(erased, oracle.erase(key) != 0);
    } else {
      bool found = false;
      TmWord value = 0;
      tm.atomically(ctx, [&](auto& tx) { found = tree.lookup(tx, key, &value); });
      CHECK_EQ(found, oracle.count(key) != 0);
      if (found) CHECK_EQ(value, key * 3);
    }
  }
  CHECK_EQ(tree.unsafe_size(), oracle.size());
  std::string why;
  const bool valid = tree.validate(&why);
  if (!valid) std::printf("    invalid tree: %s\n", why.c_str());
  CHECK(valid);
}

template <class H>
void sequential_all_protocols() {
  TmUniverse<H> u;
  {
    Tl2<H> tm(u);
    sequential_oracle(tm, 1);
  }
  {
    HtmOnly<H> tm(u);
    sequential_oracle(tm, 2);
  }
  {
    typename StandardHytm<H>::Config cfg;
    cfg.hardware_only = true;
    StandardHytm<H> tm(u, cfg);
    sequential_oracle(tm, 3);
  }
  {
    typename HybridTm<H>::Config cfg;
    cfg.slow_retry_percent = 100;
    HybridTm<H> tm(u, cfg);
    sequential_oracle(tm, 4);
  }
  {
    // Force the RH2 visible-read path so rotations run through Rh2Handle.
    typename HybridTm<H>::Config cfg;
    cfg.force_rh2 = true;
    HybridTm<H> tm(u, cfg);
    sequential_oracle(tm, 5);
  }
  {
    HybridNorec<H> tm(u);
    sequential_oracle(tm, 6);
  }
  {
    PhasedTm<H> tm(u);
    sequential_oracle(tm, 7);
  }
}

// ------------------------------------------------------- concurrent churn --

template <class Tm>
void concurrent_churn(Tm& tm) {
  MutatingRbTree tree(kDomain);
  {
    UnsafeHandle h;
    for (std::size_t k = 0; k < kDomain; k += 2) CHECK(tree.insert(h, k, k));
    std::string why;
    CHECK(tree.validate(&why));
  }
  constexpr unsigned kThreads = 4;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      typename Tm::ThreadCtx ctx(tm);
      Xoshiro256 rng(100 + t);
      for (int i = 0; i < 3000; ++i) {
        const std::uint64_t key = rng.below(kDomain);
        const unsigned coin = static_cast<unsigned>(rng.below(3));
        if (coin == 0) {
          tm.atomically(ctx, [&](auto& tx) { (void)tree.insert(tx, key, key); });
        } else if (coin == 1) {
          tm.atomically(ctx, [&](auto& tx) { (void)tree.erase(tx, key); });
        } else {
          TmWord sink = 0;
          tm.atomically(ctx, [&](auto& tx) { (void)tree.lookup(tx, key, &sink); });
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  std::string why;
  const bool valid = tree.validate(&why);
  if (!valid) std::printf("    invalid tree after churn: %s\n", why.c_str());
  CHECK(valid);
}

template <class H>
void concurrent_all_protocols() {
  TmUniverse<H> u;
  {
    Tl2<H> tm(u);
    concurrent_churn(tm);
  }
  {
    HtmOnly<H> tm(u);
    concurrent_churn(tm);
  }
  {
    typename StandardHytm<H>::Config cfg;
    cfg.hardware_only = true;
    StandardHytm<H> tm(u, cfg);
    concurrent_churn(tm);
  }
  for (const unsigned slow_percent : {0u, 100u}) {
    typename HybridTm<H>::Config cfg;
    cfg.slow_retry_percent = slow_percent;
    HybridTm<H> tm(u, cfg);
    concurrent_churn(tm);
  }
  {
    HybridNorec<H> tm(u);
    concurrent_churn(tm);
  }
  {
    PhasedTm<H> tm(u);
    concurrent_churn(tm);
  }
}

// A transaction that aborts mid-rebalance must leave no trace: run inserts
// under a capacity budget too small for the descent, then check nothing
// changed (the atomic substrates roll speculative stores back).
template <class H>
void aborted_insert_rolls_back() {
  UniverseConfig ucfg;
  ucfg.htm.max_read_set = 4;  // a descent into a 64-node tree cannot fit
  ucfg.htm.max_write_set = 4;
  TmUniverse<H> u(ucfg);
  MutatingRbTree tree(128);
  UnsafeHandle uh;
  for (std::size_t k = 0; k < 128; k += 2) CHECK(tree.insert(uh, k, k));
  const std::size_t size_before = tree.unsafe_size();

  // HybridTm with hardware-only retries disabled from escalating: force
  // the fast path only via slow_retry_percent = 0 — capacity aborts still
  // escalate to the software path, which succeeds; the INTERMEDIATE
  // hardware attempts must have rolled back (validate catches half-applied
  // rotations).
  typename HybridTm<H>::Config cfg;
  cfg.slow_retry_percent = 0;
  HybridTm<H> tm(u, cfg);
  typename HybridTm<H>::ThreadCtx ctx(tm);
  for (std::uint64_t key = 1; key < 128; key += 8) {
    tm.atomically(ctx, [&](auto& tx) { (void)tree.insert(tx, key, key); });
  }
  CHECK_EQ(tree.unsafe_size(), size_before + 16);
  std::string why;
  const bool valid = tree.validate(&why);
  if (!valid) std::printf("    invalid tree after capacity aborts: %s\n", why.c_str());
  CHECK(valid);
  // The escalation was real: some commits landed beyond the fast path.
  std::uint64_t fast = ctx.stats.commits_by_path[static_cast<std::size_t>(ExecPath::kRh1Fast)];
  CHECK(fast < ctx.stats.commits);
}

void test_sequential_sim() { sequential_all_protocols<HtmSim>(); }

void test_sequential_emul_single_thread() {
  // Single-threaded emulation is exact (no concurrency, injection off):
  // the full oracle must hold there too.
  sequential_all_protocols<HtmEmul>();
}

void test_concurrent_sim() { concurrent_all_protocols<HtmSim>(); }

void test_concurrent_rtm_when_viable() {
#if defined(__RTM__)
  if (HtmRtm::hardware_viable()) {
    concurrent_all_protocols<HtmRtm>();
    return;
  }
#endif
  std::printf("    (no usable RTM on this host; sim leg covers the contract)\n");
}

void test_aborted_insert_rolls_back() { aborted_insert_rolls_back<HtmSim>(); }

void test_pool_exhaustion_is_clean() {
  MutatingRbTree tree(8);
  UnsafeHandle h;
  for (std::uint64_t k = 0; k < 8; ++k) CHECK(tree.insert(h, k, k));
  CHECK(!tree.insert(h, 99, 99));  // full pool refuses, does not corrupt
  CHECK_EQ(tree.unsafe_size(), 8u);
  CHECK(tree.validate());
  CHECK(tree.erase(h, 3));
  CHECK(tree.insert(h, 99, 99));  // freed node is reusable
  CHECK(tree.validate());
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      {"sequential_oracle_all_protocols_sim", rhtm::test_sequential_sim},
      {"sequential_oracle_all_protocols_emul_1t", rhtm::test_sequential_emul_single_thread},
      {"concurrent_churn_all_protocols_sim", rhtm::test_concurrent_sim},
      {"concurrent_churn_rtm_when_viable", rhtm::test_concurrent_rtm_when_viable},
      {"aborted_insert_rolls_back", rhtm::test_aborted_insert_rolls_back},
      {"pool_exhaustion_is_clean", rhtm::test_pool_exhaustion_is_clean},
  });
}
