// Open-loop driver oracles: the Poisson arrival process hits its configured
// mean (and exponential shape) within statistical bounds, per-thread arrival
// streams are independent yet reproducible under a fixed seed, drop
// accounting is exact when the offered rate saturates a bounded queue, the
// deterministic-rate mode offers an exactly computable arrival count, and
// recorded latency is arrival->commit (never below the service time, and
// including queueing delay when a backlog builds).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "core/rhtm.h"
#include "test_common.h"
#include "workloads/open_loop.h"

namespace rhtm {
namespace {

// -------------------------------------------------------- arrival process --

void test_poisson_mean_and_shape() {
  // rate 1e6/s => mean gap 1000 ns. 200K draws: the sample mean's sigma is
  // 1000/sqrt(200K) ~= 2.2 ns, so +-10 is a >4-sigma bound; the truncation
  // to integer ns shaves at most 1 ns off the mean.
  constexpr int kDraws = 200'000;
  ArrivalSampler sampler(1e6, /*deterministic=*/false);
  Xoshiro256 rng(12345);
  double sum = 0;
  int above_mean = 0;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t gap = sampler.next_gap_ns(rng);
    sum += static_cast<double>(gap);
    if (gap >= 1000) ++above_mean;
  }
  const double mean = sum / kDraws;
  CHECK(mean > 990.0 && mean < 1010.0);
  // Exponential shape: P(gap >= mean) = e^-1 ~= 0.3679 (sigma ~= 0.0011, so
  // +-0.01 is a ~9-sigma bound — this fails for uniform or normal gaps).
  const double frac = static_cast<double>(above_mean) / kDraws;
  CHECK(frac > 0.3679 - 0.01 && frac < 0.3679 + 0.01);
}

void test_arrival_streams_seeded() {
  ArrivalSampler sampler(1e6, /*deterministic=*/false);
  const std::uint64_t seed = 0xabcdef12345ull;
  // Same (seed, tid) reproduces the exact gap sequence ...
  Xoshiro256 a(seed ^ driver_thread_seed(0));
  Xoshiro256 b(seed ^ driver_thread_seed(0));
  for (int i = 0; i < 1000; ++i) CHECK_EQ(sampler.next_gap_ns(a), sampler.next_gap_ns(b));
  // ... while distinct tids get distinct streams (same seed).
  Xoshiro256 t0(seed ^ driver_thread_seed(0));
  Xoshiro256 t1(seed ^ driver_thread_seed(1));
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (sampler.next_gap_ns(t0) != sampler.next_gap_ns(t1)) ++differing;
  }
  CHECK(differing > 90);
}

// ------------------------------------------------------------ driver runs --

void test_deterministic_rate_exact() {
  // Deterministic gap = 100 us, window 0.05 s, one worker: arrivals land at
  // k * 100'000 ns for k = 1..500 — offered is EXACTLY 500, and a fast
  // service admits and completes every one of them.
  TmUniverse<HtmSim> u;
  Tl2<HtmSim> tm(u);
  TVar<TmWord> cell;
  OpenLoopOptions opt;
  opt.rate_per_sec = 10'000;
  opt.seconds = 0.05;
  opt.threads = 1;
  opt.deterministic = true;
  const OpenLoopResult r =
      run_open_loop(tm, opt, [&](auto& tmr, auto& ctx, Xoshiro256&, unsigned, unsigned k) {
        tmr.atomically(ctx, [&](auto& tx) { cell.write(tx, cell.read(tx) + k); });
      });
  CHECK_EQ(r.offered, 500u);
  CHECK_EQ(r.dropped, 0u);
  CHECK_EQ(r.admitted, 500u);
  CHECK_EQ(r.completed, 500u);
  CHECK_EQ(r.latency.count(), 500u);
  // Every request was applied by a committed transaction exactly once.
  CHECK_EQ(cell.unsafe_read(), 500u);
  // batch=1: one committed transaction per completed request.
  CHECK_EQ(r.stats.commits, 500u);
  CHECK(r.offered_per_sec() > 9'999.0 && r.offered_per_sec() < 10'001.0);
}

void test_poisson_run_reproducible_offered() {
  // The arrival schedule is a pure function of (seed, tid): two runs under
  // the same seed offer the identical arrival count even though wall-clock
  // service timing differs; a different seed (almost surely) does not.
  TmUniverse<HtmSim> u;
  Tl2<HtmSim> tm(u);
  TVar<TmWord> cell;
  OpenLoopOptions opt;
  opt.rate_per_sec = 40'000;
  opt.seconds = 0.05;
  opt.threads = 2;
  const auto service = [&](auto& tmr, auto& ctx, Xoshiro256&, unsigned, unsigned k) {
    tmr.atomically(ctx, [&](auto& tx) { cell.write(tx, cell.read(tx) + k); });
  };
  const OpenLoopResult r1 = run_open_loop(tm, opt, service);
  const OpenLoopResult r2 = run_open_loop(tm, opt, service);
  CHECK_EQ(r1.offered, r2.offered);
  // ~2000 expected arrivals, sigma ~= sqrt(2000) ~= 45: a 5-sigma corridor.
  CHECK(r1.offered > 2000 - 225 && r1.offered < 2000 + 225);
  opt.seed ^= 0x5555aaaa5555aaaaull;
  const OpenLoopResult r3 = run_open_loop(tm, opt, service);
  CHECK(r3.offered != r1.offered);
}

void test_drop_accounting_saturating() {
  // Offered 20K/s deterministic against a ~1 ms service on a capacity-4
  // queue: the worker can serve only ~50 of the 1000 offered, so the queue
  // saturates and sheds — and the books must balance EXACTLY:
  // offered = admitted + dropped, admitted = completed (post-window drain),
  // one latency sample per completion.
  TmUniverse<HtmSim> u;
  Tl2<HtmSim> tm(u);
  TVar<TmWord> cell;
  OpenLoopOptions opt;
  opt.rate_per_sec = 20'000;
  opt.seconds = 0.05;
  opt.threads = 1;
  opt.deterministic = true;
  opt.queue_capacity = 4;
  const OpenLoopResult r =
      run_open_loop(tm, opt, [&](auto& tmr, auto& ctx, Xoshiro256&, unsigned, unsigned k) {
        tmr.atomically(ctx, [&](auto& tx) { cell.write(tx, cell.read(tx) + k); });
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      });
  CHECK_EQ(r.offered, 1000u);
  CHECK(r.dropped > 0);
  CHECK_EQ(r.admitted + r.dropped, r.offered);
  CHECK_EQ(r.completed, r.admitted);
  CHECK_EQ(r.latency.count(), r.completed);
  CHECK_EQ(cell.unsafe_read(), r.completed);
  CHECK(r.drop_rate() > 0.0 && r.drop_rate() < 1.0);
}

void test_latency_includes_queueing() {
  // Service time 2 ms against a 1 ms deterministic gap: every recorded
  // latency is at least the service time (commit happens after service),
  // and the growing backlog pushes the max far beyond one service time —
  // the queueing-delay component the closed-loop drivers cannot see.
  TmUniverse<HtmSim> u;
  Tl2<HtmSim> tm(u);
  TVar<TmWord> cell;
  OpenLoopOptions opt;
  opt.rate_per_sec = 1'000;
  opt.seconds = 0.02;
  opt.threads = 1;
  opt.deterministic = true;
  const OpenLoopResult r =
      run_open_loop(tm, opt, [&](auto& tmr, auto& ctx, Xoshiro256&, unsigned, unsigned k) {
        tmr.atomically(ctx, [&](auto& tx) { cell.write(tx, cell.read(tx) + k); });
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      });
  CHECK_EQ(r.offered, 20u);
  CHECK_EQ(r.completed, 20u);
  CHECK(r.latency.min() >= 2'000'000);  // >= one service time
  CHECK(r.latency.max() >= 6'000'000);  // >= service + real queueing delay
  CHECK(r.seconds >= r.gen_seconds);    // wall clock includes the drain
}

void test_batching_coalesces_backlog() {
  // Gap 50 us against a ~300 us service with batch K=4: the backlog forces
  // multi-request transactions. Completions must equal the sum of the k's
  // handed to the service, some call must actually coalesce (k > 1), and no
  // call may exceed K.
  TmUniverse<HtmSim> u;
  Tl2<HtmSim> tm(u);
  TVar<TmWord> cell;
  std::atomic<unsigned> max_k{0};
  std::atomic<std::uint64_t> sum_k{0};
  OpenLoopOptions opt;
  opt.rate_per_sec = 20'000;
  opt.seconds = 0.05;
  opt.threads = 1;
  opt.deterministic = true;
  opt.batch = 4;
  const OpenLoopResult r =
      run_open_loop(tm, opt, [&](auto& tmr, auto& ctx, Xoshiro256&, unsigned, unsigned k) {
        unsigned seen = max_k.load(std::memory_order_relaxed);
        while (k > seen && !max_k.compare_exchange_weak(seen, k)) {
        }
        sum_k.fetch_add(k, std::memory_order_relaxed);
        tmr.atomically(ctx, [&](auto& tx) { cell.write(tx, cell.read(tx) + k); });
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      });
  CHECK_EQ(r.offered, 1000u);
  CHECK_EQ(r.completed, r.admitted);
  CHECK_EQ(sum_k.load(), r.completed);
  CHECK(max_k.load() > 1);
  CHECK(max_k.load() <= 4);
  CHECK_EQ(cell.unsafe_read(), r.completed);
  // With batching the transaction count is strictly below the completions.
  CHECK(r.stats.commits < r.completed);
}

void test_multi_thread_partitions_rate() {
  // 4 workers share the offered rate: per-worker deterministic gap is
  // 4/rate, so the total offered count is exact (4 * floor(window/gap)).
  TmUniverse<HtmSim> u;
  Tl2<HtmSim> tm(u);
  TVar<TmWord> cell;
  OpenLoopOptions opt;
  opt.rate_per_sec = 40'000;
  opt.seconds = 0.02;
  opt.threads = 4;
  opt.deterministic = true;
  const OpenLoopResult r =
      run_open_loop(tm, opt, [&](auto& tmr, auto& ctx, Xoshiro256&, unsigned, unsigned k) {
        tmr.atomically(ctx, [&](auto& tx) { cell.write(tx, cell.read(tx) + k); });
      });
  CHECK_EQ(r.offered, 4u * 200u);
  CHECK_EQ(r.completed, r.offered);
  CHECK_EQ(cell.unsafe_read(), r.completed);
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      {"poisson_mean_and_shape", rhtm::test_poisson_mean_and_shape},
      {"arrival_streams_seeded", rhtm::test_arrival_streams_seeded},
      {"deterministic_rate_exact", rhtm::test_deterministic_rate_exact},
      {"poisson_run_reproducible_offered", rhtm::test_poisson_run_reproducible_offered},
      {"drop_accounting_saturating", rhtm::test_drop_accounting_saturating},
      {"latency_includes_queueing", rhtm::test_latency_includes_queueing},
      {"batching_coalesces_backlog", rhtm::test_batching_coalesces_backlog},
      {"multi_thread_partitions_rate", rhtm::test_multi_thread_partitions_rate},
  });
}
