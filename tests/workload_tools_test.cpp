// Workload-tooling coverage: the Zipfian generator's empirical frequency
// ranking and range, TimedHandle's access counting / barrier-cycle
// attribution, the shared run_worker_pool substrate (tid coverage, pinned
// per-thread seeding, live ThreadCtx wiring), the throughput and phased
// drivers' deadline behaviour and stats attribution after the worker-pool
// refactor, the phase schedule's windowing, and the pin-mode helper.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/rhtm.h"
#include "test_common.h"
#include "workloads/driver.h"
#include "workloads/phase_schedule.h"
#include "workloads/timed_handle.h"
#include "workloads/zipf.h"

namespace rhtm {
namespace {

// ------------------------------------------------------------------- zipf --

void test_zipf_in_range_and_ranked() {
  constexpr std::size_t kN = 64;
  constexpr std::size_t kDraws = 200'000;
  ZipfianGenerator zipf(kN, 0.99);
  Xoshiro256 rng(42);
  std::vector<std::uint64_t> counts(kN, 0);
  for (std::size_t i = 0; i < kDraws; ++i) {
    const std::size_t r = zipf.next(rng);
    CHECK(r < kN);  // always in range
    ++counts[r];
  }
  // Theoretical ordering: P(rank i) ~ 1/(i+1)^theta is strictly decreasing.
  // Pin the exact order over the head (where the mass is concentrated and
  // sampling noise is negligible at 200K draws) ...
  for (std::size_t i = 0; i + 1 < 8; ++i) CHECK(counts[i] > counts[i + 1]);
  // ... and the coarse ordering over the tail via quartile masses.
  std::uint64_t quartile[4] = {};
  for (std::size_t i = 0; i < kN; ++i) quartile[i / (kN / 4)] += counts[i];
  CHECK(quartile[0] > quartile[1]);
  CHECK(quartile[1] > quartile[2]);
  CHECK(quartile[2] > quartile[3]);
  // Head probability matches the closed form P(0) = 1/zeta_n within noise.
  double zetan = 0;
  for (std::size_t i = 1; i <= kN; ++i) zetan += 1.0 / std::pow(double(i), 0.99);
  const double expected = static_cast<double>(kDraws) / zetan;
  CHECK(counts[0] > expected * 0.9);
  CHECK(counts[0] < expected * 1.1);
}

void test_zipf_theta_skew() {
  // Higher theta = more skew: the hottest rank's share must grow with it.
  constexpr std::size_t kN = 1024;
  constexpr std::size_t kDraws = 100'000;
  std::uint64_t hot[2] = {};
  const double thetas[2] = {0.5, 0.99};
  for (int t = 0; t < 2; ++t) {
    ZipfianGenerator zipf(kN, thetas[t]);
    Xoshiro256 rng(7);
    for (std::size_t i = 0; i < kDraws; ++i) {
      if (zipf.next(rng) == 0) ++hot[t];
    }
  }
  CHECK(hot[1] > 2 * hot[0]);
}

// ----------------------------------------------------------- timed handle --

/// Inner handle standing in for a protocol: counts calls, returns a marker.
struct RecordingInner {
  int loads = 0;
  int stores = 0;
  TmWord load(const TmCell&) {
    ++loads;
    return 42;
  }
  void store(TmCell&, TmWord) { ++stores; }
};

void test_timed_handle_counts_and_attributes() {
  TmCell cell;
  TxStats stats;
  RecordingInner inner;
  {
    TimedHandle<RecordingInner, true, true> h(inner, stats);
    for (int i = 0; i < 10; ++i) CHECK_EQ(h.load(cell), 42u);
    for (int i = 0; i < 4; ++i) h.store(cell, 1);
  }
  CHECK_EQ(stats.reads, 10u);
  CHECK_EQ(stats.writes, 4u);
  CHECK_EQ(inner.loads, 10);
  CHECK_EQ(inner.stores, 4);
  CHECK(stats.read_cycles > 0);
  CHECK(stats.write_cycles > 0);

  // Untimed flavor: same counts, zero barrier cycles by construction.
  TxStats untimed;
  RecordingInner inner2;
  TimedHandle<RecordingInner, false, false> h2(inner2, untimed);
  (void)h2.load(cell);
  h2.store(cell, 1);
  CHECK_EQ(untimed.reads, 1u);
  CHECK_EQ(untimed.writes, 1u);
  CHECK_EQ(untimed.read_cycles, 0u);
  CHECK_EQ(untimed.write_cycles, 0u);
}

// ------------------------------------------------------------ worker pool --

/// run_worker_pool is the shared substrate under run_throughput, run_phased
/// and run_open_loop: every tid in [0, threads) runs exactly once with a
/// usable ThreadCtx, the per-thread rng seeding is the pinned
/// driver_thread_seed formula, and the returned wall time covers the run.
void test_run_worker_pool_substrate() {
  TmUniverse<HtmSim> u;
  Tl2<HtmSim> tm(u);
  TVar<TmWord> cell;
  constexpr unsigned kThreads = 4;
  std::atomic<unsigned> tid_mask{0};
  std::uint64_t first_draw[kThreads] = {};
  const double wall =
      run_worker_pool(tm, kThreads, PinMode::kNone, [&](auto& ctx, Xoshiro256& rng,
                                                        unsigned tid) {
        tid_mask.fetch_or(1u << tid, std::memory_order_relaxed);
        first_draw[tid] = rng.next_u64();
        tm.atomically(ctx, [&](auto& tx) { cell.write(tx, cell.read(tx) + 1); });
      });
  CHECK(wall > 0.0);
  CHECK_EQ(tid_mask.load(), (1u << kThreads) - 1);  // every tid ran once
  CHECK_EQ(cell.unsafe_read(), kThreads);           // every ctx was live
  // Seeding is deterministic and per-thread distinct.
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    Xoshiro256 expect(driver_thread_seed(tid));
    CHECK_EQ(first_draw[tid], expect.next_u64());
    for (unsigned other = 0; other < tid; ++other) {
      CHECK(first_draw[tid] != first_draw[other]);
    }
  }
}

/// The closed-loop drivers must behave identically after the worker-pool
/// refactor: one commit per op, ops attributed to the right thread slots,
/// and the cell total equal to the commit total.
void test_run_throughput_stats_attribution() {
  TmUniverse<HtmSim> u;
  Tl2<HtmSim> tm(u);
  TVar<TmWord> cell;
  const ThroughputResult r =
      run_throughput(tm, 2, 0.02, [&](auto& tmr, auto& ctx, Xoshiro256&, unsigned) {
        tmr.atomically(ctx, [&](auto& tx) { cell.write(tx, cell.read(tx) + 1); });
      });
  CHECK(r.total_ops > 0);
  CHECK_EQ(cell.unsafe_read(), r.stats.commits);
  // Each op is exactly one committed transaction.
  CHECK_EQ(r.stats.commits, r.total_ops);
  CHECK(r.seconds > 0.0);
}

// ------------------------------------------------- drivers stop on time --

/// A slow op (2 ms sleep per transaction) must not let the driver overshoot
/// its deadline by more than the op granularity — the deadline is checked
/// between ops, so the bound is seconds + O(one op), not seconds exactly.
void test_run_throughput_deadline_under_slow_op() {
  TmUniverse<HtmSim> u;
  Tl2<HtmSim> tm(u);
  TVar<TmWord> cell;
  const auto t0 = std::chrono::steady_clock::now();
  const ThroughputResult r = run_throughput(tm, 2, 0.02, [&](auto& tmr, auto& ctx, Xoshiro256&,
                                                             unsigned) {
    tmr.atomically(ctx, [&](auto& tx) { cell.write(tx, cell.read(tx) + 1); });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  CHECK(r.total_ops >= 2);          // both threads ran at least one op
  CHECK(r.total_ops <= 2 * 60);     // ... but nowhere near an unbounded run
  CHECK(wall < 2.0);                // 0.02 s budget + op granularity + CI slack
}

void test_run_phased_deadline_and_phase_accounting() {
  TmUniverse<HtmSim> u;
  Tl2<HtmSim> tm(u);
  TVar<TmWord> cell;
  const PhaseSchedule schedule({
      {"reads", 0.5, 0, 0, 0},
      {"writes", 0.5, 100, 0, 0},
  });
  CHECK_EQ(schedule.size(), 2u);
  const auto t0 = std::chrono::steady_clock::now();
  const PhasedResult r = run_phased(
      tm, 2, 0.1, schedule,
      [&](auto& tmr, auto& ctx, Xoshiro256&, unsigned, std::size_t idx, const Phase& phase) {
        CHECK_EQ(phase.write_percent, idx == 0 ? 0u : 100u);
        if (phase.write_percent != 0) {
          tmr.atomically(ctx, [&](auto& tx) { cell.write(tx, cell.read(tx) + 1); });
        } else {
          TmWord sink = 0;
          tmr.atomically(ctx, [&](auto& tx) { sink = cell.read(tx); });
          (void)sink;
        }
      });
  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  CHECK(wall < 5.0);
  CHECK_EQ(r.per_phase.size(), 2u);
  // Each phase got its nominal half of the run and did real work.
  CHECK(r.per_phase[0].seconds > 0.049 && r.per_phase[0].seconds < 0.051);
  CHECK(r.per_phase[0].total_ops > 0);
  CHECK(r.per_phase[1].total_ops > 0);
  // Stats landed in the right phase: all the cell writes are phase-1
  // commits, and phase totals add up.
  CHECK(r.per_phase[1].stats.commits > 0);
  const ThroughputResult total = r.total();
  CHECK_EQ(total.total_ops, r.per_phase[0].total_ops + r.per_phase[1].total_ops);
  CHECK_EQ(cell.unsafe_read(), r.per_phase[1].stats.commits);
}

void test_phase_schedule_windows() {
  const PhaseSchedule s({{"a", 1.0, 0, 0, 0}, {"b", 3.0, 0, 0, 0}});
  CHECK_EQ(s.phase_at(0.0), 0u);
  CHECK_EQ(s.phase_at(0.24), 0u);
  CHECK_EQ(s.phase_at(0.26), 1u);
  CHECK_EQ(s.phase_at(0.999), 1u);
  CHECK_EQ(s.phase_at(1.5), 1u);  // clamped
  CHECK(s.fraction(0) > 0.249 && s.fraction(0) < 0.251);
  const PhaseSchedule empty({});
  CHECK_EQ(empty.size(), 1u);  // degenerate schedule = one all-run phase
  CHECK_EQ(empty.phase_at(0.5), 0u);
  // All-nonpositive weights degrade to an equal split, not zero windows.
  const PhaseSchedule zeros({{"a", 0.0, 0, 0, 0}, {"b", 0.0, 0, 0, 0}});
  CHECK(zeros.fraction(0) > 0.49 && zeros.fraction(0) < 0.51);
  CHECK_EQ(zeros.phase_at(0.25), 0u);
  CHECK_EQ(zeros.phase_at(0.75), 1u);
}

// -------------------------------------------------------------- pin modes --

void test_pin_mode_helpers() {
  PinMode m = PinMode::kNone;
  CHECK(parse_pin_mode("compact", &m) && m == PinMode::kCompact);
  CHECK(parse_pin_mode("scatter", &m) && m == PinMode::kScatter);
  CHECK(parse_pin_mode("none", &m) && m == PinMode::kNone);
  CHECK(!parse_pin_mode("bogus", &m));
  CHECK(std::string(to_string(PinMode::kScatter)) == "scatter");

  // compact fills adjacent CPUs; scatter alternates across the id halves.
  CHECK_EQ(pin_cpu_for(PinMode::kCompact, 0, 8), 0u);
  CHECK_EQ(pin_cpu_for(PinMode::kCompact, 3, 8), 3u);
  CHECK_EQ(pin_cpu_for(PinMode::kCompact, 9, 8), 1u);
  CHECK_EQ(pin_cpu_for(PinMode::kScatter, 0, 8), 0u);
  CHECK_EQ(pin_cpu_for(PinMode::kScatter, 1, 8), 4u);
  CHECK_EQ(pin_cpu_for(PinMode::kScatter, 2, 8), 1u);
  CHECK_EQ(pin_cpu_for(PinMode::kScatter, 3, 8), 5u);
  // Both modes are permutations of [0, ncpu) over ncpu consecutive tids —
  // including odd CPU counts — and stay in range on degenerate hosts.
  for (const unsigned ncpu : {1u, 3u, 5u, 8u}) {
    for (const PinMode mode : {PinMode::kCompact, PinMode::kScatter}) {
      std::vector<bool> used(ncpu, false);
      for (unsigned tid = 0; tid < ncpu; ++tid) {
        const unsigned cpu = pin_cpu_for(mode, tid, ncpu);
        CHECK(cpu < ncpu);
        CHECK(!used[cpu]);
        used[cpu] = true;
      }
    }
  }

  // Pinning the current thread must never crash, whatever the platform.
  pin_current_thread(PinMode::kNone, 0);
  pin_current_thread(PinMode::kCompact, 0);
  pin_current_thread(PinMode::kScatter, 1);
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      {"zipf_in_range_and_ranked", rhtm::test_zipf_in_range_and_ranked},
      {"zipf_theta_skew", rhtm::test_zipf_theta_skew},
      {"timed_handle_counts_and_attributes", rhtm::test_timed_handle_counts_and_attributes},
      {"run_worker_pool_substrate", rhtm::test_run_worker_pool_substrate},
      {"run_throughput_stats_attribution", rhtm::test_run_throughput_stats_attribution},
      {"run_throughput_deadline_under_slow_op",
       rhtm::test_run_throughput_deadline_under_slow_op},
      {"run_phased_deadline_and_phase_accounting",
       rhtm::test_run_phased_deadline_and_phase_accounting},
      {"phase_schedule_windows", rhtm::test_phase_schedule_windows},
      {"pin_mode_helpers", rhtm::test_pin_mode_helpers},
  });
}
