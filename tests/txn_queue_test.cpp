// TxnQueue conservation: an item enqueued by a committed transaction is
// dequeued by exactly one committed transaction — no loss, no duplication,
// per-producer FIFO — for every protocol, under concurrent producers and
// consumers on the atomic substrates (HtmSim always, HtmRtm when the host
// has usable TSX). Sequential FIFO/full/empty semantics are pinned first.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/rhtm.h"
#include "test_common.h"
#include "workloads/txn_queue.h"

namespace rhtm {
namespace {

// ------------------------------------------------------------- sequential --

template <class Tm>
void sequential_fifo(Tm& tm) {
  TxnQueue q(4);
  typename Tm::ThreadCtx ctx(tm);
  const auto enq = [&](TmWord v) {
    bool ok = false;
    tm.atomically(ctx, [&](auto& tx) { ok = q.enqueue(tx, v); });
    return ok;
  };
  const auto deq = [&](TmWord* out) {
    bool ok = false;
    tm.atomically(ctx, [&](auto& tx) { ok = q.dequeue(tx, out); });
    return ok;
  };
  TmWord v = 0;
  CHECK(!deq(&v));  // empty
  for (TmWord i = 1; i <= 4; ++i) CHECK(enq(i * 10));
  CHECK(!enq(99));  // full
  CHECK_EQ(q.unsafe_size(), 4u);
  for (TmWord i = 1; i <= 4; ++i) {
    CHECK(deq(&v));
    CHECK_EQ(v, i * 10);  // FIFO
  }
  CHECK(!deq(&v));
  // Wrap-around: the ring reuses slots correctly past one revolution.
  for (TmWord i = 0; i < 10; ++i) {
    CHECK(enq(100 + i));
    CHECK(deq(&v));
    CHECK_EQ(v, 100 + i);
  }
}

template <class H>
void sequential_all_protocols() {
  TmUniverse<H> u;
  {
    Tl2<H> tm(u);
    sequential_fifo(tm);
  }
  {
    HtmOnly<H> tm(u);
    sequential_fifo(tm);
  }
  {
    typename StandardHytm<H>::Config cfg;
    cfg.hardware_only = true;
    StandardHytm<H> tm(u, cfg);
    sequential_fifo(tm);
  }
  {
    typename HybridTm<H>::Config cfg;
    cfg.slow_retry_percent = 100;
    HybridTm<H> tm(u, cfg);
    sequential_fifo(tm);
  }
  {
    HybridNorec<H> tm(u);
    sequential_fifo(tm);
  }
  {
    PhasedTm<H> tm(u);
    sequential_fifo(tm);
  }
}

// ------------------------------------------------------------- concurrent --

/// kProducers threads each enqueue kPerProducer tagged items ((producer <<
/// 32) | seq); kConsumers threads drain until everything produced is
/// consumed. Afterwards: every item seen exactly once, and each consumer's
/// view of each producer is strictly seq-ascending (global FIFO implies
/// per-producer order within one consumer).
template <class Tm>
void concurrent_conservation(Tm& tm) {
  constexpr unsigned kProducers = 2;
  constexpr unsigned kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 2000;
  TxnQueue q(64);  // small ring: full/empty no-ops genuinely happen

  std::atomic<std::uint64_t> consumed_total{0};
  std::atomic<bool> deadline_hit{false};
  std::vector<std::vector<TmWord>> consumed(kConsumers);
  std::vector<std::thread> threads;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);

  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      typename Tm::ThreadCtx ctx(tm);
      for (std::uint64_t seq = 0; seq < kPerProducer;) {
        bool ok = false;
        const TmWord item = (static_cast<TmWord>(p) << 32) | seq;
        tm.atomically(ctx, [&](auto& tx) { ok = q.enqueue(tx, item); });
        if (ok) {
          ++seq;
        } else if (std::chrono::steady_clock::now() > deadline) {
          deadline_hit.store(true);
          return;
        }
      }
    });
  }
  for (unsigned c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      typename Tm::ThreadCtx ctx(tm);
      consumed[c].reserve(kPerProducer);
      while (consumed_total.load(std::memory_order_acquire) <
             kProducers * kPerProducer) {
        bool ok = false;
        TmWord item = 0;
        tm.atomically(ctx, [&](auto& tx) { ok = q.dequeue(tx, &item); });
        if (ok) {
          consumed[c].push_back(item);
          consumed_total.fetch_add(1, std::memory_order_acq_rel);
        } else if (std::chrono::steady_clock::now() > deadline) {
          deadline_hit.store(true);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  CHECK(!deadline_hit.load());
  CHECK_EQ(consumed_total.load(), kProducers * kPerProducer);
  CHECK_EQ(q.unsafe_size(), 0u);
  CHECK_EQ(q.unsafe_enqueued(), kProducers * kPerProducer);

  // Exactly-once: mark every (producer, seq) off a bitmap.
  std::vector<std::vector<bool>> seen(kProducers, std::vector<bool>(kPerProducer, false));
  std::uint64_t duplicates = 0;
  for (const auto& items : consumed) {
    std::uint64_t last_seq[kProducers];
    bool any[kProducers] = {};
    for (unsigned p = 0; p < kProducers; ++p) last_seq[p] = 0;
    for (const TmWord item : items) {
      const auto p = static_cast<unsigned>(item >> 32);
      const std::uint64_t seq = item & 0xffffffffull;
      CHECK(p < kProducers && seq < kPerProducer);
      if (seen[p][seq]) ++duplicates;
      seen[p][seq] = true;
      // Per-producer FIFO within this consumer's stream.
      if (any[p]) CHECK(seq > last_seq[p]);
      any[p] = true;
      last_seq[p] = seq;
    }
  }
  CHECK_EQ(duplicates, 0u);
  std::uint64_t missing = 0;
  for (const auto& per_producer : seen) {
    for (const bool s : per_producer) {
      if (!s) ++missing;
    }
  }
  CHECK_EQ(missing, 0u);
}

template <class H>
void concurrent_all_protocols() {
  TmUniverse<H> u;
  {
    Tl2<H> tm(u);
    concurrent_conservation(tm);
  }
  {
    HtmOnly<H> tm(u);
    concurrent_conservation(tm);
  }
  {
    typename StandardHytm<H>::Config cfg;
    cfg.hardware_only = true;
    StandardHytm<H> tm(u, cfg);
    concurrent_conservation(tm);
  }
  for (const unsigned slow_percent : {0u, 100u}) {
    typename HybridTm<H>::Config cfg;
    cfg.slow_retry_percent = slow_percent;
    HybridTm<H> tm(u, cfg);
    concurrent_conservation(tm);
  }
  {
    HybridNorec<H> tm(u);
    concurrent_conservation(tm);
  }
  {
    PhasedTm<H> tm(u);
    concurrent_conservation(tm);
  }
}

void test_sequential_sim() { sequential_all_protocols<HtmSim>(); }
void test_sequential_emul() { sequential_all_protocols<HtmEmul>(); }
void test_concurrent_sim() { concurrent_all_protocols<HtmSim>(); }

void test_concurrent_rtm_when_viable() {
#if defined(__RTM__)
  if (HtmRtm::hardware_viable()) {
    concurrent_all_protocols<HtmRtm>();
    return;
  }
#endif
  std::printf("    (no usable RTM on this host; sim leg covers the contract)\n");
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      {"sequential_fifo_all_protocols_sim", rhtm::test_sequential_sim},
      {"sequential_fifo_all_protocols_emul_1t", rhtm::test_sequential_emul},
      {"concurrent_conservation_all_protocols_sim", rhtm::test_concurrent_sim},
      {"concurrent_conservation_rtm_when_viable", rhtm::test_concurrent_rtm_when_viable},
  });
}
