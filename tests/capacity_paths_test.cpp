// The RH1 -> RH2 -> slow-slow escalation chain (ablation A3's mechanism):
// on a small simulated hardware budget, growing transaction footprints must
// fall off the fast path, survive on the reduced commit to ~the metadata
// ratio, then land on RH2 / slow-slow — and still commit correctly.

#include <vector>

#include "core/rhtm.h"
#include "workloads/driver.h"
#include "test_common.h"

namespace rhtm {
namespace {

std::uint64_t commits_on(const TxStats& s, ExecPath p) {
  return s.commits_by_path[static_cast<std::size_t>(p)];
}

void escalation_chain() {
  UniverseConfig ucfg;
  ucfg.htm.max_read_set = 64;
  ucfg.htm.max_write_set = 64;
  ucfg.htm.line_shift = 3;           // one word per line: exact accounting
  ucfg.stripe.granularity_log2 = 5;  // 4 words per stripe
  TmUniverse<HtmSim> u(ucfg);
  SimHybridTm::Config cfg;
  cfg.slow_retry_percent = 100;
  SimHybridTm tm(u, cfg);
  SimHybridTm::ThreadCtx ctx(tm);

  std::vector<TVar<TmWord>> data(4096);

  const auto sweep = [&](std::size_t len) {
    return run_capacity_pressure(tm, ctx, 20,
                                 [&](auto& m, auto& c, Xoshiro256&, unsigned) {
                                   m.atomically(c, [&](auto& tx) {
                                     TmWord sum = 0;
                                     for (std::size_t w = 0; w < len; ++w) {
                                       sum += data[w].read(tx);
                                       if (w % 16 == 0) data[w].write(tx, sum);
                                     }
                                   });
                                 });
  };

  // Small footprint: all fast.
  const TxStats small = sweep(16);
  CHECK_EQ(commits_on(small, ExecPath::kRh1Fast), 20u);

  // Past the read budget (64 words) but within the reduced commit's
  // metadata budget (64 stripes = 256 words): RH1 slow.
  const TxStats mid = sweep(160);
  CHECK_EQ(commits_on(mid, ExecPath::kRh1Fast), 0u);
  CHECK_EQ(commits_on(mid, ExecPath::kRh1Slow), 20u);

  // Past the reduced commit too (> 256 words of read footprint): RH2 or the
  // all-software slow-slow path.
  const TxStats big = sweep(1024);
  CHECK_EQ(commits_on(big, ExecPath::kRh1Fast), 0u);
  CHECK_EQ(commits_on(big, ExecPath::kRh1Slow), 0u);
  CHECK_EQ(commits_on(big, ExecPath::kRh2Slow) + commits_on(big, ExecPath::kRh2SlowSlow), 20u);
}

void oversized_transactions_still_commit() {
  TmUniverse<HtmSim> u;  // default 512-entry write budget
  SimHybridTm::Config cfg;
  cfg.slow_retry_percent = 100;
  SimHybridTm tm(u, cfg);
  SimHybridTm::ThreadCtx ctx(tm);

  std::vector<TVar<TmWord>> cells(2048);
  tm.atomically(ctx, [&](auto& tx) {
    for (std::size_t i = 0; i < 700; ++i) cells[i].write(tx, i + 1);  // > write budget
  });
  for (std::size_t i = 0; i < 700; ++i) CHECK_EQ(cells[i].unsafe_read(), i + 1);
  CHECK_EQ(ctx.stats.commits, 1u);
  CHECK_EQ(commits_on(ctx.stats, ExecPath::kRh1Fast), 0u);
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      TestCase{"escalation_chain", rhtm::escalation_chain},
      TestCase{"oversized_transactions_still_commit", rhtm::oversized_transactions_still_commit},
  });
}
