// The RH1 -> RH2 -> slow-slow escalation chain (ablation A3's mechanism):
// on a small hardware budget, growing transaction footprints must fall off
// the fast path, survive on the reduced commit to ~the metadata ratio, then
// land on RH2 / slow-slow — and still commit correctly.
//
// Parametrized over the substrate axis: the tier thresholds are asserted
// exactly on HtmSim (distinct-line accounting) and HtmEmul (access
// counting — ReadSet's consecutive-stripe dedup keeps the linear sweeps in
// the same tiers). On HtmRtm the configured budgets are still enforced by
// the substrate's counters, but real hardware also aborts for reasons of
// its own (interrupts, cache geometry), so the rtm leg asserts the
// one-directional guarantees: over-budget footprints never commit on the
// fast path, and everything still commits. On a host without usable RTM
// every hardware attempt fails, so all commits must land on the
// all-software slow-slow path — the graceful-fallback contract.
//
// HtmEmul runs only the tiers up to RH1-slow: escalation past the reduced
// commit requires an aborted hardware commit to roll back its partial
// stripe stamps, which the emulation cannot do (its aborted stores stick,
// so software validation would never succeed again). That boundary is the
// substrate's documented fidelity limit, not a protocol bug — see the
// substrate-layer section of docs/ARCHITECTURE.md.

#include <vector>

#include "core/rhtm.h"
#include "workloads/driver.h"
#include "test_common.h"

namespace rhtm {
namespace {

std::uint64_t commits_on(const TxStats& s, ExecPath p) {
  return s.commits_by_path[static_cast<std::size_t>(p)];
}

template <class H>
void escalation_chain_impl(bool strict_tiers, bool run_big = true) {
  UniverseConfig ucfg;
  ucfg.htm.max_read_set = 64;
  ucfg.htm.max_write_set = 64;
  ucfg.htm.line_shift = 3;           // one word per line: exact accounting
  ucfg.stripe.granularity_log2 = 5;  // 4 words per stripe
  TmUniverse<H> u(ucfg);
  typename HybridTm<H>::Config cfg;
  cfg.slow_retry_percent = 100;
  HybridTm<H> tm(u, cfg);
  typename HybridTm<H>::ThreadCtx ctx(tm);

  std::vector<TVar<TmWord>> data(4096);

  const auto sweep = [&](std::size_t len) {
    return run_capacity_pressure(tm, ctx, 20,
                                 [&](auto& m, auto& c, Xoshiro256&, unsigned) {
                                   m.atomically(c, [&](auto& tx) {
                                     TmWord sum = 0;
                                     for (std::size_t w = 0; w < len; ++w) {
                                       sum += data[w].read(tx);
                                       if (w % 16 == 0) data[w].write(tx, sum);
                                     }
                                   });
                                 });
  };

  // Small footprint: everything commits; on a strict substrate, all fast.
  const TxStats small = sweep(16);
  CHECK_EQ(small.commits, 20u);
  if (strict_tiers) CHECK_EQ(commits_on(small, ExecPath::kRh1Fast), 20u);

  // Past the read budget (64 words): the fast path can never commit. Within
  // the reduced commit's metadata budget (64 stripes = 256 words): RH1 slow
  // on the strict substrates.
  const TxStats mid = sweep(160);
  CHECK_EQ(mid.commits, 20u);
  CHECK_EQ(commits_on(mid, ExecPath::kRh1Fast), 0u);
  if (strict_tiers) CHECK_EQ(commits_on(mid, ExecPath::kRh1Slow), 20u);

  // Past the reduced commit too (> 256 words of read footprint): RH2 or the
  // all-software slow-slow path.
  if (!run_big) return;
  const TxStats big = sweep(1024);
  CHECK_EQ(big.commits, 20u);
  CHECK_EQ(commits_on(big, ExecPath::kRh1Fast), 0u);
  CHECK_EQ(commits_on(big, ExecPath::kRh1Slow), 0u);
  CHECK_EQ(commits_on(big, ExecPath::kRh2Slow) + commits_on(big, ExecPath::kRh2SlowSlow), 20u);
}

void escalation_chain_sim() { escalation_chain_impl<HtmSim>(/*strict_tiers=*/true); }
void escalation_chain_emul() {
  escalation_chain_impl<HtmEmul>(/*strict_tiers=*/true, /*run_big=*/false);
}

void escalation_chain_rtm() {
  std::printf("    rtm: available=%d hardware_viable=%d\n", HtmRtm::available() ? 1 : 0,
              HtmRtm::hardware_viable() ? 1 : 0);
  escalation_chain_impl<HtmRtm>(/*strict_tiers=*/false);
}

/// Without usable RTM hardware every commit must land on the all-software
/// path — and still be correct. (Skipped on hosts where RTM works.)
void rtm_fallback_all_software() {
  if (HtmRtm::hardware_viable()) {
    std::printf("    skipped: this host runs real RTM transactions\n");
    return;
  }
  TmUniverse<HtmRtm> u;
  typename HybridTm<HtmRtm>::Config cfg;
  cfg.slow_retry_percent = 100;
  HybridTm<HtmRtm> tm(u, cfg);
  typename HybridTm<HtmRtm>::ThreadCtx ctx(tm);
  std::vector<TVar<TmWord>> cells(64);
  const TxStats delta =
      run_capacity_pressure(tm, ctx, 10, [&](auto& m, auto& c, Xoshiro256&, unsigned) {
        m.atomically(c, [&](auto& tx) {
          for (std::size_t i = 0; i < 8; ++i) cells[i].write(tx, cells[i].read(tx) + 1);
        });
      });
  CHECK_EQ(delta.commits, 10u);
  CHECK_EQ(commits_on(delta, ExecPath::kRh2SlowSlow), 10u);
  for (std::size_t i = 0; i < 8; ++i) CHECK_EQ(cells[i].unsafe_read(), 10u);
}

template <class H>
void oversized_transactions_still_commit() {
  TmUniverse<H> u;  // default 512-entry write budget
  typename HybridTm<H>::Config cfg;
  cfg.slow_retry_percent = 100;
  HybridTm<H> tm(u, cfg);
  typename HybridTm<H>::ThreadCtx ctx(tm);

  std::vector<TVar<TmWord>> cells(2048);
  tm.atomically(ctx, [&](auto& tx) {
    for (std::size_t i = 0; i < 700; ++i) cells[i].write(tx, i + 1);  // > write budget
  });
  for (std::size_t i = 0; i < 700; ++i) CHECK_EQ(cells[i].unsafe_read(), i + 1);
  CHECK_EQ(ctx.stats.commits, 1u);
  CHECK_EQ(commits_on(ctx.stats, ExecPath::kRh1Fast), 0u);
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      TestCase{"escalation_chain_sim", rhtm::escalation_chain_sim},
      TestCase{"escalation_chain_emul", rhtm::escalation_chain_emul},
      TestCase{"escalation_chain_rtm", rhtm::escalation_chain_rtm},
      TestCase{"rtm_fallback_all_software", rhtm::rtm_fallback_all_software},
      TestCase{"oversized_still_commit_sim",
               rhtm::oversized_transactions_still_commit<rhtm::HtmSim>},
      TestCase{"oversized_still_commit_emul",
               rhtm::oversized_transactions_still_commit<rhtm::HtmEmul>},
      TestCase{"oversized_still_commit_rtm",
               rhtm::oversized_transactions_still_commit<rhtm::HtmRtm>},
  });
}
