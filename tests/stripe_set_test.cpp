// StripeSet: exact dedup semantics (insert/contains/items), O(1) epoch
// clears across many reuse rounds, growth keeping membership exact, and
// agreement with a reference set under randomized operation streams.

#include <algorithm>
#include <set>
#include <vector>

#include "core/rng.h"
#include "stm/stripe_set.h"
#include "test_common.h"

namespace rhtm {
namespace {

void insert_dedups_and_orders() {
  StripeSet s;
  CHECK(s.empty());
  CHECK(s.insert(7));
  CHECK(!s.insert(7));  // duplicate: rejected
  CHECK(s.insert(3));
  CHECK(s.insert(7000));
  CHECK(!s.insert(3));
  CHECK_EQ(s.size(), 3u);
  CHECK(s.contains(7));
  CHECK(s.contains(3));
  CHECK(s.contains(7000));
  CHECK(!s.contains(8));
  // items() preserves first-insertion order — the commit paths rely on a
  // deterministic iteration order for the stamped stripes.
  const std::vector<std::uint32_t> expect = {7, 3, 7000};
  CHECK(s.items() == expect);
}

void clear_is_cheap_and_complete() {
  StripeSet s;
  for (int round = 0; round < 10000; ++round) {  // far past any u8/u16 epoch
    CHECK(s.insert(static_cast<std::uint32_t>(round)));
    CHECK(s.insert(static_cast<std::uint32_t>(round) + 1));
    CHECK_EQ(s.size(), 2u);
    s.clear();
    CHECK(s.empty());
    CHECK(!s.contains(static_cast<std::uint32_t>(round)));
  }
}

void growth_keeps_membership_exact() {
  StripeSet s;
  // Consecutive indices — the worst case for a multiplicative probe — well
  // past the initial slot count, forcing several grow() rehashes.
  for (std::uint32_t i = 0; i < 5000; ++i) CHECK(s.insert(i * 3));
  CHECK_EQ(s.size(), 5000u);
  for (std::uint32_t i = 0; i < 5000; ++i) {
    CHECK(s.contains(i * 3));
    CHECK(!s.contains(i * 3 + 1));
  }
  // Still duplicates after growing.
  for (std::uint32_t i = 0; i < 5000; ++i) CHECK(!s.insert(i * 3));
  CHECK_EQ(s.size(), 5000u);
}

void randomized_against_reference() {
  StripeSet s;
  std::set<std::uint32_t> ref;
  Xoshiro256 rng(99);
  for (int round = 0; round < 50; ++round) {
    s.clear();
    ref.clear();
    const int ops = 1 + static_cast<int>(rng.below(800));
    for (int i = 0; i < ops; ++i) {
      const auto stripe = static_cast<std::uint32_t>(rng.below(512));
      const bool fresh = ref.insert(stripe).second;
      CHECK_EQ(s.insert(stripe), fresh);
    }
    CHECK_EQ(s.size(), ref.size());
    for (std::uint32_t probe = 0; probe < 512; ++probe) {
      CHECK_EQ(s.contains(probe), ref.count(probe) == 1);
    }
    std::vector<std::uint32_t> sorted_items = s.items();
    std::sort(sorted_items.begin(), sorted_items.end());
    CHECK(std::equal(sorted_items.begin(), sorted_items.end(), ref.begin(), ref.end()));
  }
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      TestCase{"insert_dedups_and_orders", rhtm::insert_dedups_and_orders},
      TestCase{"clear_is_cheap_and_complete", rhtm::clear_is_cheap_and_complete},
      TestCase{"growth_keeps_membership_exact", rhtm::growth_keeps_membership_exact},
      TestCase{"randomized_against_reference", rhtm::randomized_against_reference},
  });
}
