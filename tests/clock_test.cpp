// Global version clock: per-mode semantics, monotonicity, and concurrent
// uniqueness under GV1.

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/clock.h"
#include "test_common.h"

namespace rhtm {
namespace {

void gv1_sequential() {
  GlobalVersionClock clock(GvMode::kGv1);
  CHECK_EQ(clock.read(), 0u);
  CHECK_EQ(clock.next(), 1u);
  CHECK_EQ(clock.next(), 2u);
  CHECK_EQ(clock.read(), 2u);
}

void gv1_concurrent_unique() {
  GlobalVersionClock clock(GvMode::kGv1);
  constexpr unsigned kThreads = 4;
  constexpr unsigned kPerThread = 20000;
  std::vector<std::vector<TmWord>> seen(kThreads);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      seen[t].reserve(kPerThread);
      for (unsigned i = 0; i < kPerThread; ++i) seen[t].push_back(clock.next());
    });
  }
  for (auto& w : workers) w.join();
  std::vector<TmWord> all;
  for (const auto& v : seen) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  CHECK_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  CHECK(std::adjacent_find(all.begin(), all.end()) == all.end());  // all unique
  CHECK_EQ(clock.read(), static_cast<TmWord>(kThreads) * kPerThread);
}

void gv4_batches() {
  GlobalVersionClock clock(GvMode::kGv4);
  const TmWord a = clock.next();
  CHECK_EQ(a, 1u);
  // Concurrent nexts: every returned value must be > the value of the clock
  // at the call's start (stamp freshness), and the clock advances at most
  // once per racing batch. With real races that's hard to pin down; check
  // the sequential contract and monotonic non-decrease under threads.
  std::vector<std::thread> workers;
  std::atomic<bool> ok{true};
  for (unsigned t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      TmWord last = 0;
      for (unsigned i = 0; i < 20000; ++i) {
        const TmWord rv = clock.read();
        const TmWord wv = clock.next();
        if (wv <= rv || wv < last) ok = false;  // stamp must beat any prior rv
        last = wv;
      }
    });
  }
  for (auto& w : workers) w.join();
  CHECK(ok.load());
}

void gv6_quiet() {
  GlobalVersionClock clock(GvMode::kGv6);
  CHECK_EQ(clock.next(), 1u);
  CHECK_EQ(clock.next(), 1u);  // next() never writes
  CHECK_EQ(clock.read(), 0u);
  clock.on_abort();  // aborting readers advance the clock
  CHECK_EQ(clock.read(), 1u);
  CHECK_EQ(clock.next(), 2u);
}

void gv1_gv4_on_abort_noop() {
  GlobalVersionClock g1(GvMode::kGv1);
  g1.on_abort();
  CHECK_EQ(g1.read(), 0u);
  GlobalVersionClock g4(GvMode::kGv4);
  g4.on_abort();
  CHECK_EQ(g4.read(), 0u);
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      TestCase{"gv1_sequential", rhtm::gv1_sequential},
      TestCase{"gv1_concurrent_unique", rhtm::gv1_concurrent_unique},
      TestCase{"gv4_batches", rhtm::gv4_batches},
      TestCase{"gv6_quiet", rhtm::gv6_quiet},
      TestCase{"gv1_gv4_on_abort_noop", rhtm::gv1_gv4_on_abort_noop},
  });
}
