// Read-set validation: direct unit checks against a stripe table, plus the
// TL2 invariant under a live concurrent writer — a reader transaction must
// never observe a torn x+y snapshot.

#include <atomic>
#include <set>
#include <thread>

#include "core/rhtm.h"
#include "stm/read_set.h"
#include "test_common.h"

namespace rhtm {
namespace {

void validate_detects_version_bump() {
  StripeTable st;
  ReadSet rs;
  rs.add(5);
  rs.add(9);
  CHECK(rs.validate(st, /*rv=*/0));
  st.unlock_to(9, 3);  // stripe 9 now at version 3
  CHECK(!rs.validate(st, /*rv=*/0));  // newer than rv: stale read set
  CHECK(rs.validate(st, /*rv=*/3));   // admitted once rv catches up
}

void validate_detects_foreign_lock() {
  StripeTable st;
  ReadSet rs;
  rs.add(4);
  CHECK(st.try_lock(4));
  CHECK(!rs.validate(st, /*rv=*/10));  // locked by someone else
  CHECK(rs.validate(st, /*rv=*/10, [](std::uint32_t s) { return s == 4; }));  // self-lock ok
  st.unlock_restore(4);
  CHECK(rs.validate(st, /*rv=*/10));
}

void consecutive_dedup() {
  ReadSet rs;
  rs.add(3);
  rs.add(3);
  rs.add(3);
  rs.add(4);
  CHECK_EQ(rs.size(), 2u);
}

/// Zipfian-style re-reads: interleaved (NON-consecutive) repeats of a hot
/// stripe pool must still be logged exactly once each, so commit-time
/// validation — and the RH1 reduced commit built on stripes() — visits
/// each stripe once. The old consecutive-only dedup logged ~10k entries
/// here and inflated the reduced commit's hardware footprint accordingly.
void zipfian_rereads_exact_dedup() {
  constexpr std::uint32_t kHotStripes = 64;
  ReadSet rs;
  Xoshiro256 rng(1234);
  for (std::uint32_t s = 0; s < kHotStripes; ++s) rs.add(s);  // all distinct once
  for (int i = 0; i < 10000; ++i) {
    rs.add(static_cast<std::uint32_t>(rng.below(kHotStripes)));
  }
  CHECK_EQ(rs.size(), kHotStripes);
  std::set<std::uint32_t> seen;
  for (const std::uint32_t s : rs.stripes()) {
    CHECK(seen.insert(s).second);  // each stripe exactly once
  }
  CHECK_EQ(seen.size(), kHotStripes);
  // Validation over the deduped set behaves like before.
  StripeTable st;
  CHECK(rs.validate(st, /*rv=*/0));
  st.unlock_to(5, 9);
  CHECK(!rs.validate(st, /*rv=*/0));
  // clear() resets the dedup filter too: stripes are loggable again.
  rs.clear();
  rs.add(5);
  CHECK_EQ(rs.size(), 1u);
  CHECK_EQ(rs.stripes()[0], 5u);
}

/// TL2 over the simulated substrate: a writer keeps moving value between two
/// cells keeping x + y == 100; readers must always see the invariant.
void snapshot_invariant_under_concurrent_writer() {
  TmUniverse<HtmSim> u;
  Tl2<HtmSim> tm(u);
  TVar<TmWord> x(70);
  TVar<TmWord> y(30);

  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};

  std::thread writer([&] {
    Tl2<HtmSim>::ThreadCtx ctx(tm);
    Xoshiro256 rng(42);
    while (!stop.load(std::memory_order_acquire)) {
      const TmWord delta = rng.below(10);
      tm.atomically(ctx, [&](auto& tx) {
        const TmWord xv = x.read(tx);
        const TmWord yv = y.read(tx);
        if (xv >= delta) {
          x.write(tx, xv - delta);
          y.write(tx, yv + delta);
        }
      });
    }
  });

  {
    Tl2<HtmSim>::ThreadCtx ctx(tm);
    for (int i = 0; i < 20000; ++i) {
      TmWord sum = 0;
      tm.atomically(ctx, [&](auto& tx) { sum = x.read(tx) + y.read(tx); });
      if (sum != 100) torn.store(true);
    }
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  CHECK(!torn.load());
  CHECK_EQ(x.unsafe_read() + y.unsafe_read(), 100u);
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      TestCase{"validate_detects_version_bump", rhtm::validate_detects_version_bump},
      TestCase{"validate_detects_foreign_lock", rhtm::validate_detects_foreign_lock},
      TestCase{"consecutive_dedup", rhtm::consecutive_dedup},
      TestCase{"zipfian_rereads_exact_dedup", rhtm::zipfian_rereads_exact_dedup},
      TestCase{"snapshot_invariant_under_concurrent_writer",
               rhtm::snapshot_invariant_under_concurrent_writer},
  });
}
