// Topology layer (core/topology.h) + its consumers: cpulist parsing, fake
// sysfs discovery, single-node fallback, pin/shard geometry agreement
// (scatter placement and stripe-shard homes follow the same socket rule),
// sharded stripe-table equivalence, and the per-socket cached clock's
// lagging-replica semantics — including a multi-thread soundness run of the
// full numa=shard+clock universe.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "core/rhtm.h"
#include "test_common.h"

namespace rhtm {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------- parsing --

void cpulist_parses() {
  std::vector<unsigned> cpus;
  CHECK(parse_cpulist("0-3,8,10-11\n", &cpus));
  CHECK(cpus == (std::vector<unsigned>{0, 1, 2, 3, 8, 10, 11}));
  CHECK(parse_cpulist("5", &cpus));
  CHECK(cpus == (std::vector<unsigned>{5}));
  CHECK(parse_cpulist("", &cpus));  // memory-only node: valid, no CPUs
  CHECK(cpus.empty());
  CHECK(parse_cpulist("  \n", &cpus));
  CHECK(cpus.empty());
  CHECK(!parse_cpulist("a-b", &cpus));
  CHECK(!parse_cpulist("3-1", &cpus));  // descending range
  CHECK(!parse_cpulist("1,", &cpus));   // dangling comma
  CHECK(!parse_cpulist("1-", &cpus));   // dangling dash
  CHECK(!parse_cpulist("1;2", &cpus));
}

void numa_mode_names_round_trip() {
  for (const NumaMode m : {NumaMode::kOff, NumaMode::kShard, NumaMode::kShardClock}) {
    NumaMode out = NumaMode::kOff;
    CHECK(parse_numa_mode(to_string(m), &out));
    CHECK(out == m);
  }
  NumaMode out;
  CHECK(!parse_numa_mode("sharded", &out));
  CHECK(!parse_numa_mode("", &out));
}

// ----------------------------------------------------------- discovery --

/// Builds a fake sysfs node tree and returns its root.
fs::path make_fake_sysfs(const std::vector<const char*>& cpulists) {
  const fs::path root = fs::temp_directory_path() / "rhtm_topology_test_nodes";
  fs::remove_all(root);
  for (std::size_t n = 0; n < cpulists.size(); ++n) {
    const fs::path dir = root / ("node" + std::to_string(n));
    fs::create_directories(dir);
    std::ofstream(dir / "cpulist") << cpulists[n];
  }
  return root;
}

void sysfs_discovery() {
  // 2 CPU sockets + one memory-only node (empty cpulist — skipped, and the
  // scan continues past it to prove numbering is not truncated by it).
  const fs::path root = make_fake_sysfs({"0-3,16-19\n", "", "4-7,20-23\n"});
  const Topology t = Topology::from_sysfs(root.string());
  CHECK(t.discovered());
  CHECK_EQ(t.socket_count(), 2u);
  CHECK_EQ(t.cpu_count(), 16u);
  CHECK_EQ(t.socket_of_cpu(0), 0);
  CHECK_EQ(t.socket_of_cpu(19), 0);
  CHECK_EQ(t.socket_of_cpu(4), 1);
  CHECK_EQ(t.socket_of_cpu(23), 1);
  CHECK_EQ(t.socket_of_cpu(8), -1);    // hole between the sockets' ranges
  CHECK_EQ(t.socket_of_cpu(999), -1);  // beyond the map
  // compact: socket 0's list first, then socket 1's.
  CHECK_EQ(t.compact_cpu(0), 0u);
  CHECK_EQ(t.compact_cpu(3), 3u);
  CHECK_EQ(t.compact_cpu(4), 16u);
  CHECK_EQ(t.compact_cpu(8), 4u);
  // scatter: round-robin across sockets first (tid % sockets picks the
  // socket), walking each socket's cpulist in order.
  CHECK_EQ(t.scatter_cpu(0), 0u);
  CHECK_EQ(t.scatter_cpu(1), 4u);
  CHECK_EQ(t.scatter_cpu(2), 1u);
  CHECK_EQ(t.scatter_cpu(3), 5u);
  fs::remove_all(root);
}

void sysfs_fallback_on_malformed() {
  const fs::path root = make_fake_sysfs({"0-1\n", "not a cpulist\n"});
  const Topology t = Topology::from_sysfs(root.string());
  CHECK(!t.discovered());  // any parse failure: whole discovery falls back
  CHECK_EQ(t.socket_count(), 1u);
  fs::remove_all(root);

  const Topology missing = Topology::from_sysfs("/nonexistent/rhtm/nodes");
  CHECK(!missing.discovered());
  CHECK_EQ(missing.socket_count(), 1u);
  CHECK(missing.cpu_count() >= 1u);
}

void single_node_fallback() {
  const Topology t = Topology::single_node(8);
  CHECK(!t.discovered());
  CHECK_EQ(t.socket_count(), 1u);
  CHECK_EQ(t.cpu_count(), 8u);
  CHECK_EQ(t.socket_of_cpu(7), 0);
  for (unsigned tid = 0; tid < 8; ++tid) {
    CHECK_EQ(t.compact_cpu(tid), tid);
    CHECK_EQ(t.scatter_cpu(tid), tid);  // one socket: scatter degenerates
  }
  CHECK_EQ(Topology::single_node(0).cpu_count(), 1u);  // never empty
}

// ---------------------------------------------- pin/shard geometry rule --

void pin_and_shard_geometry_agree() {
  const Topology topo = Topology::fake({{0, 1, 2, 3}, {4, 5, 6, 7}});
  StripeConfig sc;
  sc.log2_count = 8;
  sc.shards = topo.socket_count();
  sc.topology = &topo;
  StripeTable st(sc);
  CHECK_EQ(st.shard_count(), 2u);
  // The rule both sides follow: thread t scatter-lands on socket
  // t % socket_count, and shard s is homed on socket s % socket_count —
  // so thread t and shard (t % shard_count) share a home socket.
  for (unsigned tid = 0; tid < 8; ++tid) {
    const int pin_socket = topo.socket_of_cpu(topo.scatter_cpu(tid));
    CHECK_EQ(static_cast<unsigned>(pin_socket),
             st.home_socket_of_shard(tid % st.shard_count()));
  }
  // Shard id lives in the HIGH bits of the unchanged global index: plain
  // integer order on stripe indices is (shard, local) lexicographic order,
  // which is what keeps the sorted TL2 lock-acquire canonical across shards.
  unsigned last_shard = 0;
  for (std::size_t i = 0; i < st.count(); ++i) {
    CHECK(st.shard_of(i) >= last_shard);
    last_shard = st.shard_of(i);
  }
  CHECK_EQ(st.shard_of(st.count() - 1), st.shard_count() - 1);
}

void sharded_table_matches_flat() {
  StripeConfig flat_cfg;
  flat_cfg.log2_count = 10;
  StripeTable flat(flat_cfg);
  StripeConfig sharded_cfg = flat_cfg;
  sharded_cfg.shards = 4;
  StripeTable sharded(sharded_cfg);
  CHECK_EQ(flat.count(), sharded.count());
  // index_of is shard-independent (the hash is over the unchanged global
  // index space) and every lock/mask operation behaves identically.
  int x = 0;
  for (int off = 0; off < 64; ++off) {
    const void* addr = reinterpret_cast<const char*>(&x) + 1024 * off;
    CHECK_EQ(flat.index_of(addr), sharded.index_of(addr));
  }
  for (const std::size_t i : {std::size_t{0}, std::size_t{255}, std::size_t{256},
                              std::size_t{777}, flat.count() - 1}) {
    CHECK(sharded.try_lock(i));
    CHECK(!sharded.try_lock(i));
    sharded.unlock_to(i, 7);
    CHECK_EQ(StripeTable::version_of(sharded.word(i).word.load()), 7u);
    sharded.publish_read(i);
    CHECK_EQ(sharded.readers(i), 1u);
    sharded.unpublish_read(i);
    CHECK_EQ(sharded.readers(i), 0u);
  }
  // Distinct global indices map to distinct cells even across shard seams.
  CHECK(&sharded.word(255) != &sharded.word(256));
  CHECK(&sharded.read_mask(0) != &sharded.read_mask(sharded.count() - 1));
}

void first_touch_construction_multi_socket() {
  // Only checks that pinned first-touch construction completes and yields a
  // fully usable table (CI hosts have one node; the pin calls best-effort).
  const Topology topo = Topology::fake({{0}, {1}});
  StripeConfig sc;
  sc.log2_count = 6;
  sc.shards = 2;
  sc.topology = &topo;
  StripeTable st(sc);
  for (std::size_t i = 0; i < st.count(); ++i) {
    CHECK_EQ(st.word(i).word.load(), 0u);
    CHECK_EQ(st.readers(i), 0u);
  }
}

// ------------------------------------------------------- cached clock --

void cached_clock_lagging_replicas() {
  const Topology topo = Topology::fake({{0, 1}, {2, 3}});
  GlobalVersionClock clock(GvMode::kGv1, &topo);
  CHECK(clock.cached());
  CHECK(!clock.hw_writes_clock());

  set_thread_socket_override(0);
  CHECK_EQ(clock.read(), 0u);
  CHECK_EQ(clock.next(), 1u);  // global + 1, no write (GV6-style)
  CHECK_EQ(clock.next(), 1u);
  CHECK_EQ(clock.read(), 0u);

  // on_abort is the only global write: bumps global and lifts OUR cache.
  clock.on_abort();
  CHECK_EQ(clock.read(), 1u);
  CHECK_EQ(clock.global_publishes(), 1u);

  // The other socket's replica lags until someone there refreshes it.
  set_thread_socket_override(1);
  CHECK_EQ(clock.read(), 0u);
  CHECK_EQ(clock.next(), 2u);  // next() always reads the GLOBAL cell
  clock.publish_home();
  CHECK_EQ(clock.read(), 1u);
  CHECK_EQ(clock.local_publishes(), 1u);

  // Lagging-replica invariant: no cache ever exceeds the global cell.
  const TmWord global = clock.cell().word.load(std::memory_order_acquire);
  for (const int s : {0, 1}) {
    set_thread_socket_override(s);
    CHECK(clock.read() <= global);
  }
  // note_hw_commit in cached mode refreshes the home cache, no global write.
  clock.note_hw_commit();
  CHECK_EQ(clock.global_publishes(), 1u);
  CHECK_EQ(clock.local_publishes(), 2u);
  set_thread_socket_override(-1);
}

void plain_clock_unchanged_by_counters() {
  // numa=off constructions keep the historical sequences bit-for-bit.
  GlobalVersionClock g1(GvMode::kGv1);
  CHECK(!g1.cached());
  CHECK(g1.hw_writes_clock());
  CHECK_EQ(g1.next(), 1u);
  CHECK_EQ(g1.next(), 2u);
  CHECK_EQ(g1.read(), 2u);
  CHECK_EQ(g1.global_publishes(), 2u);
  GlobalVersionClock g6(GvMode::kGv6);
  CHECK(!g6.hw_writes_clock());
  CHECK_EQ(g6.next(), 1u);
  CHECK_EQ(g6.read(), 0u);
  g6.on_abort();
  CHECK_EQ(g6.read(), 1u);
}

/// numa=off replay pin: a universe built with the default config makes
/// exactly the historical clock/lock decisions — GV1 advances once per
/// software write-commit, and the stripe hash is the unchanged golden-ratio
/// formula over the unchanged index space.
void off_mode_bit_identical_decisions() {
  UniverseConfig cfg;
  CHECK(cfg.numa == NumaMode::kOff);
  TmUniverse<HtmSim> u(cfg);
  CHECK_EQ(u.stripes().shard_count(), 1u);
  CHECK(!u.clock().cached());
  int probe = 0;
  for (int off = 0; off < 32; ++off) {
    const void* addr = reinterpret_cast<const char*>(&probe) + 512 * off;
    const auto granule = reinterpret_cast<std::uintptr_t>(addr) >>
                         u.stripes().config().granularity_log2;
    const std::size_t expect =
        (static_cast<std::uint64_t>(granule) * 0x9e3779b97f4a7c15ull >> 32) &
        (u.stripes().count() - 1);
    CHECK_EQ(u.stripes().index_of(addr), expect);
  }
  Tl2<HtmSim> tl2(u);
  Tl2<HtmSim>::ThreadCtx ctx(tl2);
  std::vector<TmCell> cells(8);
  for (int i = 0; i < 100; ++i) {
    tl2.atomically(ctx, [&](auto& tx) {
      const TmWord v = tx.load(cells[i % 8]);
      tx.store(cells[i % 8], v + 1);
    });
  }
  // GV1, single thread, no aborts: one clock increment per write commit.
  CHECK_EQ(ctx.stats.commits, 100u);
  CHECK_EQ(ctx.stats.aborts, 0u);
  CHECK_EQ(u.clock().read(), 100u);
}

/// Full-universe soundness under numa=shard+clock: concurrent transfers
/// over a conserved bank, workers split across the two fake sockets. The
/// lagging replicas must never admit a torn snapshot — conservation holds
/// at every audit and at the end.
void shard_clock_bank_conservation() {
  const Topology topo = Topology::fake({{0, 1}, {2, 3}});
  UniverseConfig cfg;
  cfg.numa = NumaMode::kShardClock;
  cfg.topology = &topo;
  TmUniverse<HtmSim> u(cfg);
  CHECK_EQ(u.stripes().shard_count(), 2u);
  CHECK(u.clock().cached());

  constexpr unsigned kCells = 64;
  constexpr TmWord kInitial = 1000;
  std::vector<TmCell> bank(kCells);
  {
    Tl2<HtmSim> tl2(u);
    Tl2<HtmSim>::ThreadCtx ctx(tl2);
    tl2.atomically(ctx, [&](auto& tx) {
      for (auto& c : bank) tx.store(c, kInitial);
    });
  }
  HybridTm<HtmSim> tm(u);
  std::atomic<bool> ok{true};
  std::vector<std::thread> workers;
  for (unsigned tid = 0; tid < 4; ++tid) {
    workers.emplace_back([&, tid] {
      set_thread_socket_override(static_cast<int>(tid % topo.socket_count()));
      HybridTm<HtmSim>::ThreadCtx ctx(tm);
      Xoshiro256 rng(0x1234 + tid);
      for (int i = 0; i < 4000; ++i) {
        const unsigned a = rng.next_u64() % kCells;
        const unsigned b = rng.next_u64() % kCells;
        if (i % 64 == 0) {
          TmWord sum = 0;
          tm.atomically(ctx, [&](auto& tx) {
            sum = 0;
            for (auto& c : bank) sum += tx.load(c);
          });
          if (sum != kCells * kInitial) ok = false;
        } else {
          tm.atomically(ctx, [&](auto& tx) {
            const TmWord va = tx.load(bank[a]);
            if (va > 0) {
              tx.store(bank[a], va - 1);
              tx.store(bank[b], tx.load(bank[b]) + 1);
            }
          });
        }
      }
      set_thread_socket_override(-1);
    });
  }
  for (auto& w : workers) w.join();
  CHECK(ok.load());
  TmWord total = 0;
  Tl2<HtmSim> tl2(u);
  Tl2<HtmSim>::ThreadCtx ctx(tl2);
  tl2.atomically(ctx, [&](auto& tx) {
    total = 0;
    for (auto& c : bank) total += tx.load(c);
  });
  CHECK_EQ(total, kCells * kInitial);
  // The whole point of the mode: some commits happened without any global
  // clock write (publishes ≪ commits would hold in a real run; here we just
  // require the counters to be consistent and the caches to lag the global).
  const TmWord global = u.clock().cell().word.load(std::memory_order_acquire);
  for (unsigned s = 0; s < topo.socket_count(); ++s) {
    set_thread_socket_override(static_cast<int>(s));
    CHECK(u.clock().read() <= global);
  }
  set_thread_socket_override(-1);
}

void universe_numa_wiring() {
  const Topology topo = Topology::fake({{0}, {1}, {2}});
  UniverseConfig cfg;
  cfg.numa = NumaMode::kShard;
  cfg.topology = &topo;
  TmUniverse<HtmSim> u(cfg);
  CHECK(u.numa() == NumaMode::kShard);
  CHECK_EQ(u.topology().socket_count(), 3u);
  CHECK_EQ(u.stripes().shard_count(), 4u);  // rounded up to a power of two
  CHECK(!u.clock().cached());               // shard-only: plain clock
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      TestCase{"cpulist_parses", rhtm::cpulist_parses},
      TestCase{"numa_mode_names_round_trip", rhtm::numa_mode_names_round_trip},
      TestCase{"sysfs_discovery", rhtm::sysfs_discovery},
      TestCase{"sysfs_fallback_on_malformed", rhtm::sysfs_fallback_on_malformed},
      TestCase{"single_node_fallback", rhtm::single_node_fallback},
      TestCase{"pin_and_shard_geometry_agree", rhtm::pin_and_shard_geometry_agree},
      TestCase{"sharded_table_matches_flat", rhtm::sharded_table_matches_flat},
      TestCase{"first_touch_construction_multi_socket",
               rhtm::first_touch_construction_multi_socket},
      TestCase{"cached_clock_lagging_replicas", rhtm::cached_clock_lagging_replicas},
      TestCase{"plain_clock_unchanged_by_counters", rhtm::plain_clock_unchanged_by_counters},
      TestCase{"off_mode_bit_identical_decisions", rhtm::off_mode_bit_identical_decisions},
      TestCase{"shard_clock_bank_conservation", rhtm::shard_clock_bank_conservation},
      TestCase{"universe_numa_wiring", rhtm::universe_numa_wiring},
  });
}
