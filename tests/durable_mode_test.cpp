// Durability-mode contracts that need no crash (tests/durable_crash_test.cpp
// owns the fork-based ones):
//
//  * zero-overhead leak test — a NON-durable universe emits exactly zero
//    persist fences across every protocol (the process-global fence tallies
//    in core/pmem.h make any leak into existing scenarios visible).
//  * exact fence placement — each durable commit of n write entries costs
//    pwb = 2n+2 (log header + n log entries + marker + n image write-backs),
//    pfence = 2 (log→marker, marker→apply) and psync = 1 (apply drain), on
//    every durable path; read-only transactions cost zero.
//  * durable == recovered — after a concurrent durable run (no crash),
//    prefix-replaying the redo log reproduces the live in-memory state
//    exactly, the durable image agrees, and nothing is discarded.
//  * redo-log semantics — an unmarked record is discarded by recovery, a
//    marked one is replayed into the image, recovery is idempotent.
//  * durable routing — PhasedTm and StandardHytm route durable universes
//    through their (redo-logged) software paths; HtmOnly documents its
//    opt-out and emits nothing.

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/rhtm.h"
#include "test_common.h"
#include "workloads/account_store.h"

namespace rhtm {
namespace {

struct FenceTotals {
  std::uint64_t pwb, pfence, psync;
};

FenceTotals global_fences() {
  return {pmem::g_total_pwb.load(), pmem::g_total_pfence.load(), pmem::g_total_psync.load()};
}

template <class Tm>
void churn(Tm& tm, const AccountStore& store, int txns) {
  typename Tm::ThreadCtx ctx(tm);
  for (int i = 0; i < txns; ++i) {
    tm.atomically(ctx, [&](auto& h) {
      (void)store.transfer(h, static_cast<std::uint64_t>(i % 8),
                           static_cast<std::uint64_t>((i + 3) % 8), 1);
    });
  }
}

// ------------------------------------------------------- zero-fence leak --
template <class H>
void non_durable_zero_fences() {
  const FenceTotals before = global_fences();
  TmUniverse<H> u;
  CHECK(!u.durable());
  AccountStore store(8, 100, 2);
  {
    Tl2<H> tm(u);
    churn(tm, store, 20);
  }
  {
    HybridTm<H> tm(u);
    churn(tm, store, 20);
  }
  {
    HybridNorec<H> tm(u);
    churn(tm, store, 20);
  }
  {
    PhasedTm<H> tm(u);
    churn(tm, store, 20);
  }
  {
    StandardHytm<H> tm(u);
    churn(tm, store, 20);
  }
  {
    HtmOnly<H> tm(u);
    churn(tm, store, 20);
  }
  const FenceTotals after = global_fences();
  CHECK_EQ(after.pwb, before.pwb);
  CHECK_EQ(after.pfence, before.pfence);
  CHECK_EQ(after.psync, before.psync);
  CHECK_EQ(store.unsafe_total(), store.total_minted());
}

// -------------------------------------------------- exact fence placement --
/// Deterministic always-succeeding transfers: single-threaded, so commit
/// count == transaction count on every forced path.
template <class Tm>
void churn_planned(Tm& tm, const AccountStore& store, int txns) {
  typename Tm::ThreadCtx ctx(tm);
  for (int i = 0; i < txns; ++i) {
    bool ok = false;
    tm.atomically(ctx, [&](auto& h) {
      ok = store.transfer(h, static_cast<std::uint64_t>(i % 4),
                          static_cast<std::uint64_t>((i + 1) % 4), 1);
    });
    CHECK(ok);
  }
}

/// Runs `txns` two-write transfers through one forced durable path and
/// checks the per-commit fence arithmetic exactly.
template <class H, class RunTm>
void fence_placement_case(const char* label, RunTm&& run_tm, int txns) {
  UniverseConfig ucfg;
  ucfg.durable = true;
  TmUniverse<H> u(ucfg);
  AccountStore store(8, 100, 2);
  run_tm(u, store, txns);
  const FenceCounts fc = u.pmem().fence_counts();
  const std::uint64_t n = 2;  // writes per transfer
  const auto t = static_cast<std::uint64_t>(txns);
  CHECK_EQ(fc.pwb, (2 * n + 2) * t);
  CHECK_EQ(fc.pfence, 2 * t);
  CHECK_EQ(fc.psync, t);
  // One data record + one marker per commit, none discarded.
  std::size_t discarded = 0;
  CHECK_EQ(u.pmem().recover_log(&discarded).size(), static_cast<std::size_t>(txns));
  CHECK_EQ(discarded, std::size_t{0});
  (void)label;
}

template <class H>
void fence_placement_all_paths() {
  constexpr int kTxns = 5;
  fence_placement_case<H>(
      "tl2",
      [](TmUniverse<H>& u, const AccountStore& s, int n) {
        Tl2<H> tm(u);
        churn_planned(tm, s, n);
      },
      kTxns);
  fence_placement_case<H>(
      "rh1_fast",
      [](TmUniverse<H>& u, const AccountStore& s, int n) {
        typename HybridTm<H>::Config cfg;
        cfg.slow_retry_percent = 0;
        HybridTm<H> tm(u, cfg);
        churn_planned(tm, s, n);
      },
      kTxns);
  fence_placement_case<H>(
      "rh1",
      [](TmUniverse<H>& u, const AccountStore& s, int n) {
        typename HybridTm<H>::Config cfg;
        cfg.force_slow_path = true;
        HybridTm<H> tm(u, cfg);
        churn_planned(tm, s, n);
      },
      kTxns);
  fence_placement_case<H>(
      "rh2",
      [](TmUniverse<H>& u, const AccountStore& s, int n) {
        typename HybridTm<H>::Config cfg;
        cfg.force_rh2 = true;
        HybridTm<H> tm(u, cfg);
        churn_planned(tm, s, n);
      },
      kTxns);
  fence_placement_case<H>(
      "norec_hw",
      [](TmUniverse<H>& u, const AccountStore& s, int n) {
        HybridNorec<H> tm(u);
        churn_planned(tm, s, n);
      },
      kTxns);
  fence_placement_case<H>(
      "norec_sw",
      [](TmUniverse<H>& u, const AccountStore& s, int n) {
        typename HybridNorec<H>::Config cfg;
        cfg.max_hw_attempts = 0;
        HybridNorec<H> tm(u, cfg);
        churn_planned(tm, s, n);
      },
      kTxns);
}

template <class H>
void read_only_costs_no_fences() {
  UniverseConfig ucfg;
  ucfg.durable = true;
  TmUniverse<H> u(ucfg);
  AccountStore store(8, 100, 2);
  Tl2<H> tl2(u);
  typename Tl2<H>::ThreadCtx tctx(tl2);
  TmWord sum = 0;
  tl2.atomically(tctx, [&](auto& h) { sum = store.audit(h); });
  CHECK_EQ(sum, store.total_minted());
  HybridTm<H> hy(u);
  typename HybridTm<H>::ThreadCtx hctx(hy);
  hy.atomically(hctx, [&](auto& h) { sum = store.balance(h, 3); });
  CHECK_EQ(sum, TmWord{100});
  const FenceCounts fc = u.pmem().fence_counts();
  CHECK_EQ(fc.total(), std::uint64_t{0});
}

// --------------------------------------------------- durable == recovered --
template <class H>
void durable_equals_recovered() {
  UniverseConfig ucfg;
  ucfg.durable = true;
  TmUniverse<H> u(ucfg);
  constexpr std::size_t kAccounts = 16;
  AccountStore store(kAccounts, 1000, 4);
  HybridTm<H> tm(u);  // default mixed-mode: fast, reduced and escalated commits
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(0xD00Dull + static_cast<std::uint64_t>(t));
      typename HybridTm<H>::ThreadCtx ctx(tm);
      for (int i = 0; i < 500; ++i) {
        const auto from = rng.next_u64() % kAccounts;
        const auto to = rng.next_u64() % kAccounts;
        tm.atomically(ctx, [&](auto& h) { (void)store.transfer(h, from, to, rng.next_u64() % 7 + 1); });
      }
    });
  }
  for (auto& t : threads) t.join();

  PersistentDomain& pd = u.pmem();
  std::size_t discarded = 0;
  const auto txns = pd.recover_log(&discarded);
  CHECK_EQ(discarded, std::size_t{0});  // no crash: every logged txn is marked
  CHECK(!pd.log_overflowed());
  CHECK(!txns.empty());

  // Prefix-replay the log: the result must BE the live in-memory state —
  // marker order is serialization order.
  std::vector<TmWord> bal(kAccounts, 1000);
  for (const auto& t : txns) {
    CHECK_EQ(t.entries.size(), std::size_t{2});
    for (const auto& e : t.entries) {
      for (std::size_t a = 0; a < kAccounts; ++a) {
        if (e.addr == reinterpret_cast<std::uintptr_t>(store.account_cell(a))) bal[a] = e.value;
      }
    }
  }
  TmWord sum = 0;
  for (std::size_t a = 0; a < kAccounts; ++a) {
    CHECK_EQ(bal[a], store.unsafe_balance(a));
    TmWord img = 0;
    CHECK(pd.image_lookup(store.account_cell(a), &img) || bal[a] == 1000);
    if (pd.image_lookup(store.account_cell(a), &img)) CHECK_EQ(img, bal[a]);
    sum += bal[a];
  }
  CHECK_EQ(sum, store.total_minted());
}

// ------------------------------------------------------ redo-log semantics --
void unmarked_record_discarded() {
  PersistentDomain pd;
  TmCell a, b;
  std::vector<pmem::CapturedWrite> writes{{&a, 11}, {&b, 22}};

  // Logged but never marked: recovery discards it, the image stays empty.
  (void)pd.durable_log(writes, pmem::kPathTl2);
  PersistentDomain::RecoveryStats st = pd.recover();
  CHECK_EQ(st.committed, std::size_t{0});
  CHECK_EQ(st.discarded, std::size_t{1});
  TmWord v = 0;
  CHECK(!pd.image_lookup(&a, &v));

  // Logged AND marked (no apply — the crash-mid-apply shape): recovery
  // replays it into the image; a second recovery is idempotent.
  const std::uint64_t txid = pd.durable_log(writes, pmem::kPathTl2);
  pd.durable_mark(txid, pmem::kPathTl2);
  st = pd.recover();
  CHECK_EQ(st.committed, std::size_t{1});
  CHECK_EQ(st.discarded, std::size_t{1});
  CHECK_EQ(st.entries_applied, std::size_t{2});
  CHECK(pd.image_lookup(&a, &v));
  CHECK_EQ(v, TmWord{11});
  CHECK(pd.image_lookup(&b, &v));
  CHECK_EQ(v, TmWord{22});
  st = pd.recover();
  CHECK_EQ(st.committed, std::size_t{1});
  CHECK_EQ(st.entries_applied, std::size_t{2});
}

// ------------------------------------------------------- durable routing --
template <class H>
void guarded_protocols_route_software() {
  UniverseConfig ucfg;
  ucfg.durable = true;
  TmUniverse<H> u(ucfg);
  AccountStore store(8, 100, 2);
  {
    PhasedTm<H> tm(u);
    churn(tm, store, 10);
  }
  const FenceCounts after_phased = u.pmem().fence_counts();
  CHECK(after_phased.psync >= 10);  // every phased commit persisted (software path)
  {
    StandardHytm<H> tm(u);
    churn(tm, store, 10);
  }
  const FenceCounts after_std = u.pmem().fence_counts();
  CHECK(after_std.psync >= after_phased.psync + 10);
  CHECK_EQ(store.unsafe_total(), store.total_minted());
  // HtmOnly documents its durability opt-out: it runs, but persists nothing.
  {
    HtmOnly<H> tm(u);
    churn(tm, store, 10);
  }
  CHECK_EQ(u.pmem().fence_counts().psync, after_std.psync);
}

void test_zero_fences_sim() { non_durable_zero_fences<HtmSim>(); }
void test_zero_fences_emul() { non_durable_zero_fences<HtmEmul>(); }
void test_fence_placement_sim() { fence_placement_all_paths<HtmSim>(); }
void test_read_only_sim() { read_only_costs_no_fences<HtmSim>(); }
void test_durable_equals_recovered_sim() { durable_equals_recovered<HtmSim>(); }
void test_redo_log_semantics() { unmarked_record_discarded(); }
void test_guarded_protocols_sim() { guarded_protocols_route_software<HtmSim>(); }

void test_fence_placement_rtm_when_viable() {
#if defined(__RTM__)
  if (HtmRtm::hardware_viable()) {
    fence_placement_all_paths<HtmRtm>();
    return;
  }
#endif
  std::printf("    (no usable RTM on this host; sim leg covers the contract)\n");
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      {"non_durable_mode_emits_zero_fences_sim", rhtm::test_zero_fences_sim},
      {"non_durable_mode_emits_zero_fences_emul", rhtm::test_zero_fences_emul},
      {"fence_placement_exact_all_paths_sim", rhtm::test_fence_placement_sim},
      {"read_only_costs_no_fences", rhtm::test_read_only_sim},
      {"durable_equals_recovered_no_crash_sim", rhtm::test_durable_equals_recovered_sim},
      {"redo_log_unmarked_discarded_marked_replayed", rhtm::test_redo_log_semantics},
      {"phased_and_standard_route_durable_software", rhtm::test_guarded_protocols_sim},
      {"fence_placement_rtm_when_viable", rhtm::test_fence_placement_rtm_when_viable},
  });
}
