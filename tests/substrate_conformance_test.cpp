// Substrate-conformance suite: every compiled-in substrate (HtmEmul,
// HtmSim, HtmRtm) must present the same concept surface with the same
// observable single-threaded semantics — committed stores become visible,
// the configured capacity budgets abort deterministically, explicit aborts
// and injection poisoning report their statuses, the non-transactional
// accessors round-trip, and the publication epoch is even whenever no
// publication is in flight. (Multi-threaded serializability is covered per
// substrate in protocol_invariants_test; HtmEmul is excluded there by
// design — it has no conflict detection — so its whole-stack coverage is
// the serial conservation check here.)
//
// The rtm substrate additionally pins the graceful-degradation contract:
// on a host without usable RTM, execute() fails cleanly with a capacity
// outcome (never SIGILL) and a protocol stacked on the substrate still
// commits every transaction through its software paths.

#include <string>
#include <vector>

#include "core/rhtm.h"
#include "test_common.h"

namespace rhtm {
namespace {

/// Whether hardware attempts on this substrate can actually commit. Always
/// true for the emulated/simulated substrates; for rtm it is a runtime
/// property of the host.
template <class H>
bool hardware_commits() {
  return true;
}
template <>
bool hardware_commits<HtmRtm>() {
  return HtmRtm::hardware_viable();
}

/// Real hardware aborts spuriously (interrupts, page faults), so substrate
/// assertions retry a bounded number of times before judging the outcome.
template <class H, class Body>
HtmOutcome execute_retry(H& htm, typename H::Tx& tx, Body&& body) {
  HtmOutcome out{};
  for (int i = 0; i < 256; ++i) {
    out = htm.execute(tx, body);
    if (out.ok()) return out;
  }
  return out;
}

template <class H>
void commit_visibility() {
  H htm;
  typename H::Tx tx(htm);
  TmCell a;
  TmCell b;
  const HtmOutcome out = execute_retry(htm, tx, [&](typename H::Tx& t) {
    t.store(a, 7);
    t.store(b, t.load(a) + 1);
  });
  if (hardware_commits<H>()) {
    CHECK(out.ok());
    CHECK_EQ(htm.nontx_load(a), 7u);
    CHECK_EQ(htm.nontx_load(b), 8u);
  } else {
    CHECK(!out.ok());  // graceful failure, not a crash
    CHECK_EQ(htm.nontx_load(a), 0u);
  }
}

/// The configured budgets are a portable contract: exceeding them must
/// produce kCapacity on every substrate. (An unavailable rtm host reports
/// every attempt as kCapacity, which satisfies the same postcondition.)
template <class H>
void capacity_budgets() {
  HtmConfig cfg;
  cfg.max_read_set = 32;
  cfg.max_write_set = 16;
  H htm(cfg);
  typename H::Tx tx(htm);
  std::vector<TmCell> cells(64);

  HtmOutcome out{};
  for (int i = 0; i < 256; ++i) {
    out = htm.execute(tx, [&](typename H::Tx& t) {
      TmWord sum = 0;
      for (const TmCell& c : cells) sum += t.load(c);  // 64 > 32: must abort
    });
    if (out.ok() || out.status == HtmStatus::kCapacity) break;
  }
  CHECK(!out.ok());
  CHECK(out.status == HtmStatus::kCapacity);

  for (int i = 0; i < 256; ++i) {
    out = htm.execute(tx, [&](typename H::Tx& t) {
      for (TmCell& c : cells) t.store(c, 1);  // 64 > 16: must abort
    });
    if (out.ok() || out.status == HtmStatus::kCapacity) break;
  }
  CHECK(!out.ok());
  CHECK(out.status == HtmStatus::kCapacity);
}

template <class H>
void explicit_abort_and_poison() {
  if (!hardware_commits<H>()) return;  // unreachable statuses without hardware
  H htm;
  typename H::Tx tx(htm);
  TmCell c;

  HtmOutcome out{};
  for (int i = 0; i < 256; ++i) {
    out = htm.execute(tx, [&](typename H::Tx& t) {
      t.store(c, 1);
      t.abort_explicit();
    });
    if (out.status == HtmStatus::kExplicit) break;
  }
  CHECK(out.status == HtmStatus::kExplicit);
  if (SubstrateTraits<H>::kAtomic) {
    CHECK_EQ(htm.nontx_load(c), 0u);  // aborted stores roll back
  }

  for (int i = 0; i < 256; ++i) {
    out = htm.execute(tx, [&](typename H::Tx& t) {
      t.poison();
      t.store(c, 2);
    });
    if (out.status == HtmStatus::kInjected) break;
  }
  CHECK(out.status == HtmStatus::kInjected);
  if (SubstrateTraits<H>::kAtomic) {
    CHECK_EQ(htm.nontx_load(c), 0u);
  }
}

template <class H>
void nontx_and_publication_epoch() {
  H htm;
  TmCell a;
  TmCell b;
  htm.nontx_store(a, 42);
  CHECK_EQ(htm.nontx_load(a), 42u);
  CHECK_EQ(htm.publication_epoch() % 2, 0u);  // settled when idle

  struct Ent {
    TmCell* cell;
    TmWord value;
  };
  const std::vector<Ent> batch = {{&a, 5}, {&b, 6}};
  const TmWord before = htm.publication_epoch();
  htm.nontx_publish(batch);
  CHECK_EQ(htm.nontx_load(a), 5u);
  CHECK_EQ(htm.nontx_load(b), 6u);
  CHECK_EQ(htm.publication_epoch() % 2, 0u);
  CHECK(htm.publication_epoch() >= before);
}

/// Whole-stack single-threaded conservation: the protocol layer over this
/// substrate must commit every transfer with correct values — on rtm hosts
/// without hardware this exercises exactly the graceful software fallback.
template <class H>
void serial_protocol_conservation() {
  constexpr std::size_t kAccounts = 16;
  constexpr TmWord kEach = 100;
  TmUniverse<H> u;
  typename HybridTm<H>::Config cfg;
  cfg.slow_retry_percent = 100;
  HybridTm<H> tm(u, cfg);
  typename HybridTm<H>::ThreadCtx ctx(tm);

  std::vector<TVar<TmWord>> accounts(kAccounts);
  for (auto& a : accounts) a.unsafe_write(kEach);
  Xoshiro256 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t from = rng.below(kAccounts);
    const std::size_t to = rng.below(kAccounts);
    const TmWord amount = rng.below(5);
    tm.atomically(ctx, [&](auto& tx) {
      const TmWord f = accounts[from].read(tx);
      if (f >= amount) {
        accounts[from].write(tx, f - amount);
        accounts[to].write(tx, accounts[to].read(tx) + amount);
      }
    });
  }
  CHECK_EQ(ctx.stats.commits, 2000u);
  TmWord total = 0;
  for (const auto& a : accounts) total += a.unsafe_read();
  CHECK_EQ(total, kAccounts * kEach);
}

template <class H>
void conformance() {
  std::printf("    substrate=%s atomic=%d hardware_commits=%d\n",
              SubstrateTraits<H>::kName, SubstrateTraits<H>::kAtomic ? 1 : 0,
              hardware_commits<H>() ? 1 : 0);
  commit_visibility<H>();
  capacity_budgets<H>();
  explicit_abort_and_poison<H>();
  nontx_and_publication_epoch<H>();
  serial_protocol_conservation<H>();
}

/// The rtm gating contract itself: the availability predicates are
/// consistent, and a host without usable RTM degrades to clean failures.
void rtm_gating() {
  std::printf("    RHTM_HAVE_RTM=%d available=%d hardware_viable=%d\n", RHTM_HAVE_RTM,
              HtmRtm::available() ? 1 : 0, HtmRtm::hardware_viable() ? 1 : 0);
  CHECK(substrate_compiled(SubstrateKind::kEmul));
  CHECK(substrate_compiled(SubstrateKind::kSim));
  CHECK_EQ(substrate_compiled(SubstrateKind::kRtm), RHTM_HAVE_RTM != 0);
  if (!substrate_compiled(SubstrateKind::kRtm)) CHECK(!HtmRtm::available());
  if (!HtmRtm::available()) CHECK(!HtmRtm::hardware_viable());

  if (!HtmRtm::hardware_viable()) {
    // Every attempt must fail cleanly as a capacity outcome — the signal
    // protocols escalate on. With RTM entirely absent the body must never
    // run; with CPUID-advertised-but-force-aborted TSX it may start and be
    // rolled back, which the outcome check still covers.
    HtmRtm htm;
    HtmRtm::Tx tx(htm);
    bool body_ran = false;
    const HtmOutcome out = htm.execute(tx, [&](HtmRtm::Tx&) { body_ran = true; });
    CHECK(!out.ok());
    CHECK(out.status == HtmStatus::kCapacity);
    if (!HtmRtm::available()) CHECK(!body_ran);
  }
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      TestCase{"emul_conformance", rhtm::conformance<rhtm::HtmEmul>},
      TestCase{"sim_conformance", rhtm::conformance<rhtm::HtmSim>},
      TestCase{"rtm_conformance", rhtm::conformance<rhtm::HtmRtm>},
      TestCase{"rtm_gating", rhtm::rtm_gating},
  });
}
