// AccountStore conservation oracle: the sum of all balances equals
// total_minted() at every transaction boundary, for every protocol, under
// concurrent transfer / batch-transfer / audit churn with forced aborts
// (inject_abort_bp on the hardware-mode protocols; TL2 aborts naturally
// under the contention). Every COMMITTED audit must observe the minted
// total exactly — a torn partial transfer is an atomicity bug, not noise.
// Sequential semantics (insufficient funds, self-transfer, batch skip
// counts, shard decomposition) are pinned first.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/rhtm.h"
#include "test_common.h"
#include "workloads/account_store.h"

namespace rhtm {
namespace {

// ------------------------------------------------------------- sequential --

template <class Tm>
void sequential_semantics(Tm& tm) {
  AccountStore store(/*accounts=*/16, /*initial=*/100, /*shards=*/4);
  CHECK_EQ(store.accounts(), 16u);
  CHECK_EQ(store.shards(), 4u);
  CHECK_EQ(store.total_minted(), 1600u);
  CHECK_EQ(store.unsafe_total(), 1600u);
  CHECK_EQ(store.shard_of(0), 0u);
  CHECK_EQ(store.shard_of(5), 1u);
  CHECK_EQ(store.shard_of(15), 3u);

  typename Tm::ThreadCtx ctx(tm);
  bool ok = false;
  // Plain transfer moves the amount.
  tm.atomically(ctx, [&](auto& tx) { ok = store.transfer(tx, 0, 1, 30); });
  CHECK(ok);
  tm.atomically(ctx, [&](auto& tx) {
    CHECK_EQ(store.balance(tx, 0), 70u);
    CHECK_EQ(store.balance(tx, 1), 130u);
  });
  // Insufficient funds: committed no-op, returns false, balances untouched.
  tm.atomically(ctx, [&](auto& tx) { ok = store.transfer(tx, 0, 2, 71); });
  CHECK(!ok);
  tm.atomically(ctx, [&](auto& tx) {
    CHECK_EQ(store.balance(tx, 0), 70u);
    CHECK_EQ(store.balance(tx, 2), 100u);
  });
  // Self-transfer: trivially conserving no-op, returns true.
  tm.atomically(ctx, [&](auto& tx) { ok = store.transfer(tx, 3, 3, 50); });
  CHECK(ok);
  tm.atomically(ctx, [&](auto& tx) { CHECK_EQ(store.balance(tx, 3), 100u); });
  // Account indices wrap modulo the store size.
  tm.atomically(ctx, [&](auto& tx) { ok = store.transfer(tx, 16, 2, 10); });
  CHECK(ok);
  tm.atomically(ctx, [&](auto& tx) { CHECK_EQ(store.balance(tx, 0), 60u); });

  // Batch: per-item skip, applied count reported.
  const AccountStore::Transfer batch[3] = {
      {4, 5, 25},        // applies
      {4, 6, 1'000'000}, // insufficient: skipped
      {5, 6, 125},       // applies (sees the first item's credit)
  };
  std::size_t applied = 0;
  tm.atomically(ctx, [&](auto& tx) { applied = store.batch_transfer(tx, batch, 3); });
  CHECK_EQ(applied, 2u);
  tm.atomically(ctx, [&](auto& tx) {
    CHECK_EQ(store.balance(tx, 4), 75u);
    CHECK_EQ(store.balance(tx, 5), 0u);
    CHECK_EQ(store.balance(tx, 6), 225u);
  });

  // Audit and shard decomposition: full == minted == sum of shard audits.
  TmWord full = 0, by_shards = 0;
  tm.atomically(ctx, [&](auto& tx) {
    full = store.audit(tx);
    by_shards = 0;
    for (std::size_t s = 0; s < store.shards(); ++s) by_shards += store.audit_shard(tx, s);
  });
  CHECK_EQ(full, store.total_minted());
  CHECK_EQ(by_shards, store.total_minted());
  CHECK_EQ(store.unsafe_total(), store.total_minted());
}

template <class H>
void sequential_all_protocols() {
  TmUniverse<H> u;
  {
    Tl2<H> tm(u);
    sequential_semantics(tm);
  }
  {
    HtmOnly<H> tm(u);
    sequential_semantics(tm);
  }
  {
    typename StandardHytm<H>::Config cfg;
    cfg.hardware_only = true;
    StandardHytm<H> tm(u, cfg);
    sequential_semantics(tm);
  }
  {
    typename HybridTm<H>::Config cfg;
    cfg.slow_retry_percent = 100;
    HybridTm<H> tm(u, cfg);
    sequential_semantics(tm);
  }
  {
    HybridNorec<H> tm(u);
    sequential_semantics(tm);
  }
  {
    PhasedTm<H> tm(u);
    sequential_semantics(tm);
  }
}

// ------------------------------------------------------------- concurrent --

/// Two transfer workers + one batch worker churn random transfers while an
/// auditor continuously runs full audits (and one-transaction
/// sum-of-all-shard-audits). Every committed audit must equal
/// total_minted(); the quiescent total must too. Worker threads record
/// anomalies in atomics (the CHECK macro is not thread-safe) and the main
/// thread asserts after the join.
template <class Tm>
void concurrent_conservation(Tm& tm) {
  constexpr std::uint64_t kTransfersPerWorker = 3000;
  constexpr std::uint64_t kBatches = 800;
  AccountStore store(/*accounts=*/256, /*initial=*/100, /*shards=*/8);
  const TmWord minted = store.total_minted();

  std::atomic<unsigned> workers_done{0};
  std::atomic<std::uint64_t> bad_audits{0};
  std::atomic<std::uint64_t> audits_done{0};
  // Start barrier: nobody transacts until all four threads are up, so the
  // auditor genuinely overlaps the churn instead of racing thread spawn.
  std::atomic<unsigned> ready{0};
  const auto arrive_and_wait = [&] {
    ready.fetch_add(1, std::memory_order_acq_rel);
    while (ready.load(std::memory_order_acquire) < 4) {
    }
  };
  std::vector<std::thread> threads;

  for (unsigned w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      typename Tm::ThreadCtx ctx(tm);
      Xoshiro256 rng(0x1000 + w);
      arrive_and_wait();
      for (std::uint64_t i = 0; i < kTransfersPerWorker; ++i) {
        const std::uint64_t from = rng.below(store.accounts());
        const std::uint64_t to = rng.below(store.accounts());
        const TmWord amount = 1 + rng.below(50);
        tm.atomically(ctx, [&](auto& tx) { (void)store.transfer(tx, from, to, amount); });
      }
      workers_done.fetch_add(1, std::memory_order_release);
    });
  }
  threads.emplace_back([&] {
    typename Tm::ThreadCtx ctx(tm);
    Xoshiro256 rng(0x2000);
    arrive_and_wait();
    for (std::uint64_t i = 0; i < kBatches; ++i) {
      AccountStore::Transfer batch[3];
      for (auto& t : batch) {
        t.from = rng.below(store.accounts());
        t.to = rng.below(store.accounts());
        t.amount = 1 + rng.below(50);
      }
      tm.atomically(ctx, [&](auto& tx) { (void)store.batch_transfer(tx, batch, 3); });
    }
    workers_done.fetch_add(1, std::memory_order_release);
  });
  threads.emplace_back([&] {
    typename Tm::ThreadCtx ctx(tm);
    bool shard_flavor = false;
    arrive_and_wait();
    // At least a handful of audits even if the churn outpaces us entirely.
    std::uint64_t n = 0;
    while (n++ < 25 || workers_done.load(std::memory_order_acquire) < 3) {
      TmWord sum = 0;
      if (shard_flavor) {
        // Sum of per-shard audits inside ONE transaction: the shard
        // decomposition must be exhaustive and non-overlapping.
        tm.atomically(ctx, [&](auto& tx) {
          sum = 0;
          for (std::size_t s = 0; s < store.shards(); ++s) sum += store.audit_shard(tx, s);
        });
      } else {
        tm.atomically(ctx, [&](auto& tx) { sum = store.audit(tx); });
      }
      shard_flavor = !shard_flavor;
      if (sum != minted) bad_audits.fetch_add(1, std::memory_order_relaxed);
      audits_done.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (auto& t : threads) t.join();

  CHECK_EQ(bad_audits.load(), 0u);   // no committed audit saw a torn total
  CHECK(audits_done.load() > 0);     // the auditor actually ran
  CHECK_EQ(store.unsafe_total(), minted);  // quiescent conservation
}

/// Forced-abort churn: every protocol runs with a 10% injected abort rate
/// where the config supports it (the retry path must preserve atomicity,
/// not just the straight-line commit path). TL2 takes its natural
/// contention aborts instead.
template <class H>
void concurrent_all_protocols() {
  constexpr std::uint32_t kInjectBp = 1000;  // 10% forced aborts
  TmUniverse<H> u;
  {
    Tl2<H> tm(u);
    concurrent_conservation(tm);
  }
  {
    typename HtmOnly<H>::Config cfg;
    cfg.inject_abort_bp = kInjectBp;
    HtmOnly<H> tm(u, cfg);
    concurrent_conservation(tm);
  }
  {
    typename StandardHytm<H>::Config cfg;
    cfg.hardware_only = true;
    cfg.inject_abort_bp = kInjectBp;
    StandardHytm<H> tm(u, cfg);
    concurrent_conservation(tm);
  }
  for (const unsigned slow_percent : {0u, 100u}) {
    typename HybridTm<H>::Config cfg;
    cfg.slow_retry_percent = slow_percent;
    cfg.inject_abort_bp = kInjectBp;
    HybridTm<H> tm(u, cfg);
    concurrent_conservation(tm);
  }
  {
    typename HybridNorec<H>::Config cfg;
    cfg.inject_abort_bp = kInjectBp;
    HybridNorec<H> tm(u, cfg);
    concurrent_conservation(tm);
  }
  {
    typename PhasedTm<H>::Config cfg;
    cfg.inject_abort_bp = kInjectBp;
    PhasedTm<H> tm(u, cfg);
    concurrent_conservation(tm);
  }
}

void test_sequential_sim() { sequential_all_protocols<HtmSim>(); }
void test_sequential_emul() { sequential_all_protocols<HtmEmul>(); }
void test_concurrent_sim() { concurrent_all_protocols<HtmSim>(); }

void test_concurrent_rtm_when_viable() {
#if defined(__RTM__)
  if (HtmRtm::hardware_viable()) {
    concurrent_all_protocols<HtmRtm>();
    return;
  }
#endif
  std::printf("    (no usable RTM on this host; sim leg covers the contract)\n");
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      {"sequential_semantics_all_protocols_sim", rhtm::test_sequential_sim},
      {"sequential_semantics_all_protocols_emul_1t", rhtm::test_sequential_emul},
      {"concurrent_conservation_all_protocols_sim", rhtm::test_concurrent_sim},
      {"concurrent_conservation_rtm_when_viable", rhtm::test_concurrent_rtm_when_viable},
  });
}
