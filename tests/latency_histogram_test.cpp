// LatencyHistogram oracle tests: quantiles are checked against a
// sorted-vector oracle on uniform / lognormal / bimodal samples with the
// documented relative bucket-error bound; merge-of-histograms must equal
// histogram-of-union exactly; the overflow bucket and the zero-sample edge
// cases are pinned.

#include "core/latency_histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "test_common.h"

namespace rhtm {
namespace {

/// The oracle quantile: the ceil(q * n)-th smallest sample (1-based), the
/// same rank definition LatencyHistogram::quantile documents.
std::uint64_t oracle_quantile(const std::vector<std::uint64_t>& sorted, double q) {
  const auto n = static_cast<double>(sorted.size());
  auto target = static_cast<std::size_t>(q * n);
  if (static_cast<double>(target) < q * n) ++target;
  if (target == 0) target = 1;
  if (target > sorted.size()) target = sorted.size();
  return sorted[target - 1];
}

/// The histogram's contract against the oracle: the reported quantile never
/// understates the true sample and overstates it by at most one sub-bucket
/// width (1/32 relative, +1 absolute slack for the exact small buckets).
void check_against_oracle(const LatencyHistogram& h, std::vector<std::uint64_t> samples) {
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const std::uint64_t want = oracle_quantile(samples, q);
    const std::uint64_t got = h.quantile(q);
    CHECK(got >= want);
    CHECK(got <= want + want / 32 + 1);
  }
  CHECK_EQ(h.count(), samples.size());
  CHECK_EQ(h.min(), samples.front());
  CHECK_EQ(h.max(), samples.back());
}

void test_quantiles_uniform() {
  std::mt19937_64 gen(0xfeedu);
  std::uniform_int_distribution<std::uint64_t> dist(0, 1'000'000);
  LatencyHistogram h;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t v = dist(gen);
    h.record(v);
    samples.push_back(v);
  }
  check_against_oracle(h, std::move(samples));
}

void test_quantiles_lognormal() {
  // Latency-shaped: a long right tail spanning several orders of magnitude.
  std::mt19937_64 gen(0xbeefu);
  std::lognormal_distribution<double> dist(10.0, 1.5);
  LatencyHistogram h;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 50'000; ++i) {
    const auto v = static_cast<std::uint64_t>(dist(gen));
    h.record(v);
    samples.push_back(v);
  }
  check_against_oracle(h, std::move(samples));
}

void test_quantiles_bimodal() {
  // Fast path vs queued path: 90% near 150 ns, 10% near 1.5 ms — the p99/p999
  // split must land inside the slow mode.
  std::mt19937_64 gen(0xabcdu);
  std::uniform_int_distribution<std::uint64_t> fast(100, 200);
  std::uniform_int_distribution<std::uint64_t> slow(1'000'000, 2'000'000);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  LatencyHistogram h;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t v = coin(gen) < 0.9 ? fast(gen) : slow(gen);
    h.record(v);
    samples.push_back(v);
  }
  check_against_oracle(h, samples);
  CHECK(h.quantile(0.5) <= 200);        // median in the fast mode
  CHECK(h.quantile(0.99) >= 1'000'000);  // p99 in the slow mode
}

void test_merge_equals_union() {
  // Three per-thread streams vs one union stream: counter-wise merge must
  // reproduce the union histogram EXACTLY (same buckets, same counts), so
  // every quantile agrees bit-for-bit.
  std::mt19937_64 gen(0x1234u);
  std::lognormal_distribution<double> dist(8.0, 2.0);
  LatencyHistogram parts[3];
  LatencyHistogram whole;
  for (int i = 0; i < 30'000; ++i) {
    const auto v = static_cast<std::uint64_t>(dist(gen));
    parts[i % 3].record(v);
    whole.record(v);
  }
  LatencyHistogram merged;
  for (const LatencyHistogram& p : parts) merged.merge(p);
  CHECK_EQ(merged.count(), whole.count());
  CHECK_EQ(merged.min(), whole.min());
  CHECK_EQ(merged.max(), whole.max());
  CHECK(merged.mean() == whole.mean());
  for (const double q : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999, 1.0}) {
    CHECK_EQ(merged.quantile(q), whole.quantile(q));
  }
}

void test_small_values_exact() {
  // Values below 2 * kSubBuckets get width-1 buckets: quantiles are exact.
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 64; ++v) h.record(v);
  CHECK_EQ(h.quantile(0.0), 0u);
  CHECK_EQ(h.quantile(0.5), 31u);  // rank 32 of 64, zero-based sample 31
  CHECK_EQ(h.quantile(1.0), 63u);
  CHECK_EQ(h.count(), 64u);
}

void test_overflow_bucket() {
  LatencyHistogram h;
  CHECK(LatencyHistogram::kMaxTrackable > 200'000'000'000ull);  // > 200 s in ns
  // 99 trackable samples + 2 beyond the trackable range.
  for (int i = 0; i < 99; ++i) h.record(1000);
  h.record(LatencyHistogram::kMaxTrackable + 1);
  h.record(900'000'000'000ull);
  CHECK_EQ(h.overflow_count(), 2u);
  CHECK_EQ(h.count(), 101u);
  // The tail quantiles fall in the overflow bucket, which reports the exact
  // maximum — never a fabricated finite bound.
  CHECK_EQ(h.quantile(1.0), 900'000'000'000ull);
  CHECK_EQ(h.max(), 900'000'000'000ull);
  // The body quantiles are untouched by the overflow samples.
  CHECK(h.quantile(0.5) >= 1000 && h.quantile(0.5) <= 1032);
  // The exact boundary value is NOT overflow.
  LatencyHistogram edge;
  edge.record(LatencyHistogram::kMaxTrackable);
  CHECK_EQ(edge.overflow_count(), 0u);
  CHECK_EQ(edge.quantile(0.5), LatencyHistogram::kMaxTrackable);
}

void test_zero_samples_and_single() {
  LatencyHistogram h;
  CHECK_EQ(h.count(), 0u);
  CHECK_EQ(h.quantile(0.5), 0u);
  CHECK_EQ(h.quantile(1.0), 0u);
  CHECK_EQ(h.max(), 0u);
  CHECK_EQ(h.min(), 0u);
  CHECK(h.mean() == 0.0);
  // Merging an empty histogram is the identity.
  LatencyHistogram other;
  other.record(77);
  other.merge(h);
  CHECK_EQ(other.count(), 1u);
  CHECK_EQ(other.quantile(0.5), 77u);
  // A single sample answers every quantile.
  for (const double q : {0.0, 0.5, 0.999, 1.0}) CHECK_EQ(other.quantile(q), 77u);
}

void test_quantile_monotone() {
  // Quantile must be non-decreasing in q — the log-linear bucketing must
  // never invert ranks.
  std::mt19937_64 gen(0x777u);
  std::uniform_int_distribution<std::uint64_t> dist(1, 1'000'000'000ull);
  LatencyHistogram h;
  for (int i = 0; i < 10'000; ++i) h.record(dist(gen));
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const std::uint64_t v = h.quantile(q);
    CHECK(v >= prev);
    prev = v;
  }
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      {"quantiles_uniform_vs_oracle", rhtm::test_quantiles_uniform},
      {"quantiles_lognormal_vs_oracle", rhtm::test_quantiles_lognormal},
      {"quantiles_bimodal_vs_oracle", rhtm::test_quantiles_bimodal},
      {"merge_equals_histogram_of_union", rhtm::test_merge_equals_union},
      {"small_values_exact", rhtm::test_small_values_exact},
      {"overflow_bucket", rhtm::test_overflow_bucket},
      {"zero_samples_and_single", rhtm::test_zero_samples_and_single},
      {"quantile_monotone", rhtm::test_quantile_monotone},
  });
}
