// Stripe table geometry, versioned-lock encoding, read-mask publication,
// and the abort injector's ratio mapping.

#include "core/stats.h"
#include "core/stripe.h"
#include "test_common.h"

namespace rhtm {
namespace {

void index_stability_and_range() {
  StripeTable table;
  std::uint64_t data[256];
  for (auto& d : data) d = 0;
  for (int i = 0; i < 256; ++i) {
    const std::size_t s1 = table.index_of(&data[i]);
    const std::size_t s2 = table.index_of(&data[i]);
    CHECK_EQ(s1, s2);           // deterministic
    CHECK(s1 < table.count());  // in range
  }
  // Words inside one granule share a stripe.
  StripeConfig cfg;
  cfg.granularity_log2 = 5;  // 32-byte granules = 4 words
  StripeTable g(cfg);
  alignas(32) std::uint64_t granule[4];
  CHECK_EQ(g.index_of(&granule[0]), g.index_of(&granule[3]));
}

void versioned_lock_roundtrip() {
  StripeTable table;
  const std::size_t s = 7;
  CHECK(!StripeTable::is_locked(table.word(s).unsafe_load()));
  CHECK(table.try_lock(s));
  CHECK(StripeTable::is_locked(table.word(s).unsafe_load()));
  CHECK(!table.try_lock(s));  // second lock fails
  table.unlock_to(s, 42);
  const TmWord w = table.word(s).unsafe_load();
  CHECK(!StripeTable::is_locked(w));
  CHECK_EQ(StripeTable::version_of(w), 42u);
  CHECK(table.try_lock(s));
  table.unlock_restore(s);  // abort path: version unchanged
  CHECK_EQ(StripeTable::version_of(table.word(s).unsafe_load()), 42u);
}

void read_mask_publication() {
  for (const MaskRmw mode : {MaskRmw::kFetchAdd, MaskRmw::kCasLoop}) {
    StripeConfig cfg;
    cfg.mask_rmw = mode;
    StripeTable table(cfg);
    CHECK_EQ(table.readers(3), 0u);
    table.publish_read(3);
    table.publish_read(3);
    CHECK_EQ(table.readers(3), 2u);
    table.unpublish_read(3);
    CHECK_EQ(table.readers(3), 1u);
    table.unpublish_read(3);
    CHECK_EQ(table.readers(3), 0u);
  }
}

void abort_injector_mapping() {
  CHECK_EQ(AbortInjector::from_ratio(0.0).rate_bp(), 0u);
  CHECK_EQ(AbortInjector::from_ratio(0.05).rate_bp(), 500u);
  CHECK_EQ(AbortInjector::from_ratio(0.5).rate_bp(), 5000u);
  CHECK_EQ(AbortInjector::from_ratio(1.5).rate_bp(), 9800u);  // clamped for progress
  CHECK_EQ(AbortInjector::from_ratio(-1.0).rate_bp(), 0u);

  // fire() frequency tracks the rate.
  Xoshiro256 rng(123);
  const AbortInjector inj = AbortInjector::from_ratio(0.3);
  int fired = 0;
  for (int i = 0; i < 100000; ++i) fired += inj.fire(rng) ? 1 : 0;
  CHECK(fired > 28000 && fired < 32000);
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      TestCase{"index_stability_and_range", rhtm::index_stability_and_range},
      TestCase{"versioned_lock_roundtrip", rhtm::versioned_lock_roundtrip},
      TestCase{"read_mask_publication", rhtm::read_mask_publication},
      TestCase{"abort_injector_mapping", rhtm::abort_injector_mapping},
  });
}
