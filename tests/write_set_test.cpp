// Write-set: the bloom filter must never produce a false negative, lookups
// must return the latest buffered value, clear() must actually forget, the
// filter must stay selective far beyond the old single-word saturation
// point (~40 distinct cells), growth must rehash exactly, and the deduped
// stripe view must track the log.

#include <map>
#include <set>
#include <vector>

#include "core/rng.h"
#include "stm/write_set.h"
#include "test_common.h"

namespace rhtm {
namespace {

void no_false_negatives() {
  WriteSet ws;
  std::vector<TmCell> cells(4096);
  Xoshiro256 rng(7);
  std::vector<std::size_t> written;
  for (int i = 0; i < 1000; ++i) {
    const std::size_t idx = rng.below(cells.size());
    ws.put(cells[idx], static_cast<TmWord>(idx), static_cast<std::uint32_t>(idx & 255));
    written.push_back(idx);
  }
  for (const std::size_t idx : written) {
    const WriteEntry* e = ws.find(cells[idx]);
    CHECK(e != nullptr);  // a written cell is ALWAYS found
    if (e != nullptr) CHECK_EQ(e->value, static_cast<TmWord>(idx));
  }
}

void absent_cells_not_found() {
  WriteSet ws;
  std::vector<TmCell> cells(1024);
  for (std::size_t i = 0; i < 512; ++i) {
    ws.put(cells[i], i, 0);
  }
  for (std::size_t i = 512; i < 1024; ++i) {
    // Bloom false positives are allowed internally but the exact index must
    // resolve them: find() never claims an unwritten cell was written.
    CHECK(ws.find(cells[i]) == nullptr);
  }
}

void overwrite_keeps_one_entry() {
  WriteSet ws;
  TmCell cell;
  ws.put(cell, 1, 9);
  ws.put(cell, 2, 9);
  ws.put(cell, 3, 9);
  CHECK_EQ(ws.size(), 1u);
  const WriteEntry* e = ws.find(cell);
  CHECK(e != nullptr && e->value == 3);
  CHECK_EQ(ws.entries()[0].stripe, 9u);
}

void clear_forgets() {
  WriteSet ws;
  std::vector<TmCell> cells(256);
  for (auto& c : cells) ws.put(c, 1, 0);
  CHECK_EQ(ws.size(), 256u);
  ws.clear();
  CHECK(ws.empty());
  for (auto& c : cells) CHECK(ws.find(c) == nullptr);
  // Reusable after clear.
  ws.put(cells[0], 5, 1);
  const WriteEntry* e = ws.find(cells[0]);
  CHECK(e != nullptr && e->value == 5);
}

void many_epochs_and_growth() {
  WriteSet ws;
  std::vector<TmCell> cells(8192);
  for (int round = 0; round < 50; ++round) {
    ws.clear();
    for (std::size_t i = 0; i < cells.size(); i += 3) {
      ws.put(cells[i], static_cast<TmWord>(i + round), 0);
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const WriteEntry* e = ws.find(cells[i]);
      if (i % 3 == 0) {
        CHECK(e != nullptr && e->value == static_cast<TmWord>(i + round));
      } else {
        CHECK(e == nullptr);
      }
    }
  }
}

/// Past the old 64-bit filter's saturation point the bloom must still say
/// "no" for most absent cells. With 256 distinct cells the single-word
/// filter answered "maybe" ~98% of the time (every miss paid the probe
/// loop); the blocked size-adaptive filter stays in the low percent. The
/// 25% bound is loose enough for address-layout variance and tight enough
/// that a saturating filter can never pass.
void bloom_selective_beyond_64_cells() {
  for (const std::size_t written_count : {80ul, 256ul, 700ul}) {
    WriteSet ws;
    std::vector<TmCell> cells(8192);
    for (std::size_t i = 0; i < written_count; ++i) {
      ws.put(cells[i], i, static_cast<std::uint32_t>(i));
      CHECK(ws.may_contain(cells[i]));  // never a false negative
    }
    std::size_t false_positives = 0;
    const std::size_t probes = cells.size() - written_count;
    for (std::size_t i = written_count; i < cells.size(); ++i) {
      if (ws.may_contain(cells[i])) ++false_positives;
    }
    CHECK(false_positives * 4 < probes);  // < 25% false positives
  }
}

/// Rehash collisions on the grow() path: force several table doublings with
/// adversarially clustered addresses, interleaving overwrites, and verify
/// every lookup still resolves to the latest value.
void grow_rehash_keeps_lookups_exact() {
  WriteSet ws;
  std::vector<TmCell> cells(6000);  // > 1024 * 0.75 * 4: several grows
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ws.put(cells[i], i, static_cast<std::uint32_t>(i & 1023));
    if (i % 3 == 0) ws.put(cells[i / 2], i, 0);  // overwrite an older entry
  }
  CHECK_EQ(ws.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const WriteEntry* e = ws.find(cells[i]);
    CHECK(e != nullptr);
    if (e == nullptr) continue;
    // cells[i/2] was overwritten by the last round i' with i'/2 == index.
    TmWord expect = i;
    for (std::size_t j = cells.size(); j-- > 0;) {
      if (j % 3 == 0 && j / 2 == i) {
        expect = j;
        break;
      }
    }
    CHECK_EQ(e->value, expect);
  }
}

/// Randomized invariant: against a reference map, find() NEVER misses a
/// written cell (no false negative at any size, across epochs and growth)
/// and never fabricates an entry for an unwritten one.
void randomized_never_false_negative() {
  WriteSet ws;
  std::vector<TmCell> cells(4096);
  std::map<const TmCell*, TmWord> ref;
  Xoshiro256 rng(2024);
  for (int round = 0; round < 40; ++round) {
    ws.clear();
    ref.clear();
    const int ops = 1 + static_cast<int>(rng.below(1500));
    for (int i = 0; i < ops; ++i) {
      const std::size_t idx = rng.below(cells.size());
      const TmWord value = rng.next_u64();
      ws.put(cells[idx], value, static_cast<std::uint32_t>(idx & 511));
      ref[&cells[idx]] = value;
    }
    CHECK_EQ(ws.size(), ref.size());
    for (const auto& c : cells) {
      const WriteEntry* e = ws.find(c);
      const auto it = ref.find(&c);
      if (it != ref.end()) {
        CHECK(e != nullptr);  // written: MUST be found
        if (e != nullptr) CHECK_EQ(e->value, it->second);
      } else {
        CHECK(e == nullptr);  // unwritten: exact index must reject
      }
    }
  }
}

/// The deduped stripe view: one stripe per distinct granule in first-write
/// order, overwrites adding nothing, O(1) membership, clear() resetting.
void write_stripes_deduped_view() {
  WriteSet ws;
  std::vector<TmCell> cells(16);
  ws.put(cells[0], 1, 7);
  ws.put(cells[1], 2, 3);
  ws.put(cells[2], 3, 7);   // stripe 7 again: no new stripe
  ws.put(cells[0], 4, 7);   // overwrite: no new entry, no new stripe
  ws.put(cells[3], 5, 12);
  const std::vector<std::uint32_t> expect = {7, 3, 12};
  CHECK(ws.write_stripes() == expect);
  CHECK(ws.wrote_stripe(7));
  CHECK(ws.wrote_stripe(3));
  CHECK(ws.wrote_stripe(12));
  CHECK(!ws.wrote_stripe(8));
  CHECK_EQ(ws.size(), 4u);
  ws.clear();
  CHECK(ws.write_stripes().empty());
  CHECK(!ws.wrote_stripe(7));
  // Stripe view agrees with the log across growth and many epochs.
  std::vector<TmCell> many(3000);
  for (int round = 0; round < 3; ++round) {
    ws.clear();
    std::set<std::uint32_t> ref;
    for (std::size_t i = 0; i < many.size(); ++i) {
      const auto stripe = static_cast<std::uint32_t>((i * 7 + round) % 577);
      ws.put(many[i], i, stripe);
      ref.insert(stripe);
    }
    CHECK_EQ(ws.write_stripes().size(), ref.size());
    for (const std::uint32_t s : ws.write_stripes()) CHECK(ref.count(s) == 1);
    for (const std::uint32_t s : ref) CHECK(ws.wrote_stripe(s));
  }
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      TestCase{"no_false_negatives", rhtm::no_false_negatives},
      TestCase{"absent_cells_not_found", rhtm::absent_cells_not_found},
      TestCase{"overwrite_keeps_one_entry", rhtm::overwrite_keeps_one_entry},
      TestCase{"clear_forgets", rhtm::clear_forgets},
      TestCase{"many_epochs_and_growth", rhtm::many_epochs_and_growth},
      TestCase{"bloom_selective_beyond_64_cells", rhtm::bloom_selective_beyond_64_cells},
      TestCase{"grow_rehash_keeps_lookups_exact", rhtm::grow_rehash_keeps_lookups_exact},
      TestCase{"randomized_never_false_negative", rhtm::randomized_never_false_negative},
      TestCase{"write_stripes_deduped_view", rhtm::write_stripes_deduped_view},
  });
}
