// Write-set: the bloom filter must never produce a false negative, lookups
// must return the latest buffered value, and clear() must actually forget.

#include <vector>

#include "core/rng.h"
#include "stm/write_set.h"
#include "test_common.h"

namespace rhtm {
namespace {

void no_false_negatives() {
  WriteSet ws;
  std::vector<TmCell> cells(4096);
  Xoshiro256 rng(7);
  std::vector<std::size_t> written;
  for (int i = 0; i < 1000; ++i) {
    const std::size_t idx = rng.below(cells.size());
    ws.put(cells[idx], static_cast<TmWord>(idx), static_cast<std::uint32_t>(idx & 255));
    written.push_back(idx);
  }
  for (const std::size_t idx : written) {
    const WriteEntry* e = ws.find(cells[idx]);
    CHECK(e != nullptr);  // a written cell is ALWAYS found
    if (e != nullptr) CHECK_EQ(e->value, static_cast<TmWord>(idx));
  }
}

void absent_cells_not_found() {
  WriteSet ws;
  std::vector<TmCell> cells(1024);
  for (std::size_t i = 0; i < 512; ++i) {
    ws.put(cells[i], i, 0);
  }
  for (std::size_t i = 512; i < 1024; ++i) {
    // Bloom false positives are allowed internally but the exact index must
    // resolve them: find() never claims an unwritten cell was written.
    CHECK(ws.find(cells[i]) == nullptr);
  }
}

void overwrite_keeps_one_entry() {
  WriteSet ws;
  TmCell cell;
  ws.put(cell, 1, 9);
  ws.put(cell, 2, 9);
  ws.put(cell, 3, 9);
  CHECK_EQ(ws.size(), 1u);
  const WriteEntry* e = ws.find(cell);
  CHECK(e != nullptr && e->value == 3);
  CHECK_EQ(ws.entries()[0].stripe, 9u);
}

void clear_forgets() {
  WriteSet ws;
  std::vector<TmCell> cells(256);
  for (auto& c : cells) ws.put(c, 1, 0);
  CHECK_EQ(ws.size(), 256u);
  ws.clear();
  CHECK(ws.empty());
  for (auto& c : cells) CHECK(ws.find(c) == nullptr);
  // Reusable after clear.
  ws.put(cells[0], 5, 1);
  const WriteEntry* e = ws.find(cells[0]);
  CHECK(e != nullptr && e->value == 5);
}

void many_epochs_and_growth() {
  WriteSet ws;
  std::vector<TmCell> cells(8192);
  for (int round = 0; round < 50; ++round) {
    ws.clear();
    for (std::size_t i = 0; i < cells.size(); i += 3) {
      ws.put(cells[i], static_cast<TmWord>(i + round), 0);
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const WriteEntry* e = ws.find(cells[i]);
      if (i % 3 == 0) {
        CHECK(e != nullptr && e->value == static_cast<TmWord>(i + round));
      } else {
        CHECK(e == nullptr);
      }
    }
  }
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      TestCase{"no_false_negatives", rhtm::no_false_negatives},
      TestCase{"absent_cells_not_found", rhtm::absent_cells_not_found},
      TestCase{"overwrite_keeps_one_entry", rhtm::overwrite_keeps_one_entry},
      TestCase{"clear_forgets", rhtm::clear_forgets},
      TestCase{"many_epochs_and_growth", rhtm::many_epochs_and_growth},
  });
}
