// Trace-ring and exporter coverage (core/trace.h, core/trace_export.h):
//
//  * wrap-around exactness — the ring keeps the LAST capacity events and
//    dropped() is exact arithmetic, not an estimate;
//  * cross-thread merge — merged_events() is one timeline ordered by TSC
//    with every ring's own order preserved;
//  * Chrome JSON round-trip — the exporter's output re-parsed by a minimal
//    JSON parser (the report_test pattern) and checked event by event;
//  * protocol invariants under a real protocol — every abort event carries
//    a valid AbortCause, every commit a valid ExecPath tier, and the event
//    counts agree exactly with TxStats;
//  * durable phase ordering — log -> mark -> apply -> commit, per
//    transaction, on the durable TL2 commit path.

#include "core/trace.h"

#include <atomic>
#include <cctype>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/rhtm.h"
#include "test_common.h"

namespace rhtm::test {
namespace {

// ------------------------------------------------- a minimal JSON parser --
// Just enough JSON to re-parse the exporter's own output (objects, arrays,
// strings, numbers, literals). Same shape as report_test's parser.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* get(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) throw std::runtime_error(std::string("expected ") + c);
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = s_[pos_] == 't';
        pos_ += v.boolean ? 4 : 5;
        return v;
      }
      case 'n': {
        pos_ += 4;
        return {};
      }
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      std::string key = (peek(), string());
      expect(':');
      v.object.emplace_back(std::move(key), value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) throw std::runtime_error("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          default: throw std::runtime_error("bad escape char");
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= s_.size()) throw std::runtime_error("unterminated string");
    ++pos_;
    return out;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------- ring tests --

void test_wraparound_exactness() {
  trace::TraceRing r(16, 7);
  for (std::uint32_t i = 0; i < 40; ++i) {
    r.emit(trace::EventKind::kHwAttempt, 0, i);
  }
  CHECK_EQ(r.total(), 40u);
  CHECK_EQ(r.size(), 16u);
  CHECK_EQ(r.dropped(), 24u);  // exactly total - capacity, never an estimate
  // The resident window is the LAST 16 emits, oldest first.
  for (std::size_t i = 0; i < r.size(); ++i) {
    CHECK_EQ(r.event(i).arg, 24u + i);
    CHECK_EQ(r.event(i).ring, 7u);
  }
}

void test_no_drop_before_wrap() {
  trace::TraceRing r(16, 0);
  for (std::uint32_t i = 0; i < 10; ++i) r.emit(trace::EventKind::kCommit, 0, i);
  CHECK_EQ(r.total(), 10u);
  CHECK_EQ(r.size(), 10u);
  CHECK_EQ(r.dropped(), 0u);
  for (std::size_t i = 0; i < 10; ++i) CHECK_EQ(r.event(i).arg, i);
}

void test_tracer_capacity_rounding_and_denial() {
  trace::TracerConfig cfg;
  cfg.ring_capacity = 100;  // not a power of two
  cfg.max_rings = 2;
  trace::Tracer tracer(cfg);
  trace::TraceRing* a = tracer.acquire_ring();
  trace::TraceRing* b = tracer.acquire_ring();
  CHECK(a != nullptr && b != nullptr);
  CHECK_EQ(a->capacity(), 128u);  // rounded UP to the next power of two
  CHECK(a->id() != b->id());
  CHECK(tracer.acquire_ring() == nullptr);  // over the ceiling: untraced, counted
  CHECK_EQ(tracer.denied_rings(), 1u);
  CHECK_EQ(tracer.ring_count(), 2u);
}

void test_cross_thread_merge() {
  trace::Tracer tracer;
  constexpr unsigned kThreads = 3;
  constexpr std::uint32_t kPerThread = 500;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      trace::TraceRing* r = tracer.acquire_ring();
      CHECK(r != nullptr);
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        r->emit(trace::EventKind::kHwAttempt, static_cast<std::uint8_t>(t), i);
      }
    });
  }
  for (auto& th : threads) th.join();

  const std::vector<trace::Event> merged = tracer.merged_events();
  CHECK_EQ(merged.size(), kThreads * kPerThread);
  // One timeline: timestamps nondecreasing across the whole merge...
  for (std::size_t i = 1; i < merged.size(); ++i) {
    CHECK(merged[i - 1].tsc <= merged[i].tsc);
  }
  // ...and each ring's own emission order preserved within it.
  std::uint32_t next_arg[kThreads] = {};
  for (const trace::Event& e : merged) {
    CHECK(e.ring < kThreads);
    CHECK_EQ(e.arg, next_arg[e.ring]);
    ++next_arg[e.ring];
  }
  for (unsigned t = 0; t < kThreads; ++t) CHECK_EQ(next_arg[t], kPerThread);
}

void test_anomaly_hook() {
  static std::atomic<int> calls{0};
  static std::string last_reason;
  trace::set_anomaly_hook(+[](const char* reason) {
    last_reason = reason;
    calls.fetch_add(1);
  });
  trace::anomaly("unit_test_anomaly");
  CHECK_EQ(calls.load(), 1);
  CHECK(last_reason == "unit_test_anomaly");
  trace::set_anomaly_hook(nullptr);
  trace::anomaly("ignored");  // disarmed: must be a no-op, not a crash
  CHECK_EQ(calls.load(), 1);
}

// --------------------------------------------------- Chrome JSON round-trip --

void test_chrome_json_roundtrip() {
  trace::Tracer tracer;
  trace::TraceRing* r = tracer.acquire_ring();
  CHECK(r != nullptr);

  // A synthetic lifecycle: an aborted-then-committed fast transaction, a
  // durable STM transaction, and one of each instant-event family.
  trace::tx_begin(r);
  trace::attempt(r, ExecPath::kRh1Fast, 1);
  trace::abort(r, AbortCause::kHtmConflict);
  trace::attempt(r, ExecPath::kRh1Fast, 2);
  trace::commit(r, ExecPath::kRh1Fast);
  trace::tx_begin(r);
  trace::durable_phase(r, trace::EventKind::kDurLog, 1000);
  trace::durable_phase(r, trace::EventKind::kDurMark, 500);
  trace::durable_phase(r, trace::EventKind::kDurApply, 250);
  trace::commit(r, ExecPath::kStm);
  trace::cm_event(r, trace::EventKind::kSwModeEnter);
  trace::cm_event(r, trace::EventKind::kSwModeExit);
  trace::fallback_lock(r);
  trace::escalate(r, ExecPath::kRh2Slow);

  const std::string json = trace::chrome_json(tracer);
  JsonValue root;
  try {
    root = JsonParser(json).parse();
  } catch (const std::exception& e) {
    std::printf("    parse error: %s\n%s\n", e.what(), json.c_str());
    CHECK(false);
    return;
  }

  const JsonValue* other = root.get("otherData");
  CHECK(other != nullptr && other->kind == JsonValue::Kind::kObject);
  CHECK(other->get("schema") != nullptr &&
        other->get("schema")->string == trace::kTraceSchemaId);
  CHECK(other->get("rings")->number == 1);
  CHECK(other->get("events")->number == static_cast<double>(r->total()));
  CHECK(other->get("dropped")->number == 0);
  CHECK(other->get("tsc_hz")->number > 0);

  const JsonValue* events = root.get("traceEvents");
  CHECK(events != nullptr && events->kind == JsonValue::Kind::kArray);

  std::size_t meta = 0;
  std::vector<std::string> slices;   // "X" names, in document order
  std::vector<std::string> instants; // "i" names, in document order
  for (const JsonValue& e : events->array) {
    const std::string ph = e.get("ph")->string;
    const std::string name = e.get("name")->string;
    if (ph == "M") {
      ++meta;
      continue;
    }
    CHECK(e.get("ts") != nullptr && e.get("ts")->number >= 0);
    CHECK(e.get("pid")->number == 1);
    CHECK(e.get("tid")->number == r->id());
    if (ph == "X") {
      CHECK(e.get("dur") != nullptr && e.get("dur")->number >= 0);
      slices.push_back(name);
      if (name.rfind("tx:", 0) == 0) {
        const JsonValue* args = e.get("args");
        CHECK(args != nullptr && args->get("tier") != nullptr);
        CHECK("tx:" + args->get("tier")->string == name);
      }
    } else {
      CHECK(ph == "i");
      instants.push_back(name);
    }
  }
  CHECK_EQ(meta, 2u);  // process_name + one thread_name
  const std::vector<std::string> want_slices = {"tx:rh1_fast", "dur:log", "dur:mark",
                                                "dur:apply", "tx:stm"};
  CHECK(slices == want_slices);
  const std::vector<std::string> want_instants = {
      "attempt:rh1_fast", "abort:htm_conflict", "attempt:rh1_fast",
      "cm:sw_enter",      "cm:sw_exit",         "fallback_lock",
      "esc:rh2_slow"};
  CHECK(instants == want_instants);
}

// ---------------------------------------------- protocol-level invariants --

void test_protocol_invariants_traced() {
  trace::TracerConfig tcfg;
  tcfg.ring_capacity = std::size_t{1} << 15;  // ample: a drop would break pairing
  trace::Tracer tracer(tcfg);
  UniverseConfig ucfg;
  ucfg.tracer = &tracer;
  TmUniverse<HtmSim> u(ucfg);
  HybridTm<HtmSim>::Config cfg;
  cfg.slow_retry_percent = 100;
  cfg.inject_abort_bp = 2000;  // plenty of aborts and slow-path traffic
  HybridTm<HtmSim> tm(u, cfg);

  constexpr std::size_t kVars = 32;
  std::vector<TVar<TmWord>> vars(kVars);
  TxStats total;
  std::vector<std::thread> threads;
  std::mutex merge_mu;
  for (unsigned t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      HybridTm<HtmSim>::ThreadCtx ctx(tm);
      Xoshiro256 rng(42 + t);
      for (int i = 0; i < 1500; ++i) {
        const std::size_t j = rng.below(kVars);
        tm.atomically(ctx, [&](auto& tx) {
          vars[j].write(tx, vars[j].read(tx) + 1);
        });
      }
      const std::lock_guard<std::mutex> lk(merge_mu);
      total.merge(ctx.stats);
    });
  }
  for (auto& th : threads) th.join();

  CHECK_EQ(tracer.total_dropped(), 0u);
  std::uint64_t begins = 0, commits = 0, aborts = 0;
  std::uint64_t commits_by_tier[static_cast<std::size_t>(ExecPath::kCount)] = {};
  for (const trace::Event& e : tracer.merged_events()) {
    switch (e.event_kind()) {
      case trace::EventKind::kTxBegin:
        ++begins;
        break;
      case trace::EventKind::kCommit:
        // Every commit names a valid tier.
        CHECK(e.a < static_cast<std::uint8_t>(ExecPath::kCount));
        ++commits_by_tier[e.a];
        ++commits;
        break;
      case trace::EventKind::kAbort:
        // Every abort names a valid cause.
        CHECK(e.a < static_cast<std::uint8_t>(AbortCause::kCount));
        ++aborts;
        break;
      default:
        break;
    }
  }
  // The trace and the stats counters describe the SAME history.
  CHECK_EQ(commits, total.commits);
  CHECK_EQ(aborts, total.aborts);
  CHECK_EQ(begins, 2u * 1500u);  // one begin per atomically() call
  for (std::size_t p = 0; p < static_cast<std::size_t>(ExecPath::kCount); ++p) {
    CHECK_EQ(commits_by_tier[p], total.commits_by_path[p]);
  }
  CHECK(aborts > 0);  // the injector must actually have fired
}

void test_durable_phase_ordering() {
  trace::Tracer tracer;
  UniverseConfig ucfg;
  ucfg.tracer = &tracer;
  ucfg.durable = true;
  TmUniverse<HtmSim> u(ucfg);
  Tl2<HtmSim> tm(u);
  std::vector<TVar<TmWord>> vars(8);
  {
    Tl2<HtmSim>::ThreadCtx ctx(tm);
    for (int i = 0; i < 50; ++i) {
      tm.atomically(ctx, [&](auto& tx) {
        vars[static_cast<std::size_t>(i) % vars.size()].write(
            tx, static_cast<TmWord>(i));
      });
    }
  }
  // Single producer, no aborts: each write transaction must record exactly
  // log -> mark -> apply between its begin and its commit, in that order.
  int phase = 0;
  std::uint64_t durable_commits = 0;
  for (const trace::Event& e : tracer.merged_events()) {
    switch (e.event_kind()) {
      case trace::EventKind::kTxBegin: phase = 0; break;
      case trace::EventKind::kDurLog:
        CHECK_EQ(phase, 0);
        phase = 1;
        break;
      case trace::EventKind::kDurMark:
        CHECK_EQ(phase, 1);
        phase = 2;
        break;
      case trace::EventKind::kDurApply:
        CHECK_EQ(phase, 2);
        phase = 3;
        break;
      case trace::EventKind::kCommit:
        CHECK_EQ(phase, 3);
        ++durable_commits;
        break;
      default: break;
    }
  }
  CHECK_EQ(durable_commits, 50u);
}

void test_disabled_helpers_are_noops() {
  // The disabled path every untraced universe takes: null ring, no effect.
  trace::tx_begin(nullptr);
  trace::attempt(nullptr, ExecPath::kHtm);
  trace::abort(nullptr, AbortCause::kHtmConflict);
  trace::escalate(nullptr, ExecPath::kStm);
  trace::fallback_lock(nullptr);
  trace::commit(nullptr, ExecPath::kHtm);
  trace::cm_event(nullptr, trace::EventKind::kSwModeEnter);
  trace::durable_phase(nullptr, trace::EventKind::kDurLog, 1);
  CHECK(true);
}

}  // namespace
}  // namespace rhtm::test

int main() {
  return rhtm::test::run_tests({
      {"wraparound_exactness", rhtm::test::test_wraparound_exactness},
      {"no_drop_before_wrap", rhtm::test::test_no_drop_before_wrap},
      {"tracer_capacity_rounding_and_denial",
       rhtm::test::test_tracer_capacity_rounding_and_denial},
      {"cross_thread_merge", rhtm::test::test_cross_thread_merge},
      {"anomaly_hook", rhtm::test::test_anomaly_hook},
      {"chrome_json_roundtrip", rhtm::test::test_chrome_json_roundtrip},
      {"protocol_invariants_traced", rhtm::test::test_protocol_invariants_traced},
      {"durable_phase_ordering", rhtm::test::test_durable_phase_ordering},
      {"disabled_helpers_are_noops", rhtm::test::test_disabled_helpers_are_noops},
  });
}
