#!/bin/sh
# Graceful-fallback smoke for the rtm substrate: runs one scenario under
# --substrate=rtm. Pass criteria: either the host can run it (exit 0) or the
# driver refuses with the diagnostic (exit 2 mentioning rtm). Anything else
# — especially death by signal (SIGILL) — fails the test.
bin="$1"
out=$("$bin" --substrate=rtm --scenario=fig1_rbtree --seconds=0.01 --threads=1,2 --no-json 2>&1)
status=$?
case $status in
  0) exit 0 ;;
  2) echo "$out" | grep -q "substrate=rtm" && exit 0 ;;
esac
echo "unexpected exit status $status"
echo "$out"
exit 1
