// Crash-recovery validation of every durable commit path (core/pmem.h,
// tests/crash_harness.h). Two suites:
//
//  * kill-point sweep — for EVERY named kill point in EVERY durable path
//    (pmem::kPaths × pmem::kPhases), fork a child that runs a deterministic
//    transfer plan through exactly that path, crash it at the N-th commit's
//    kill point, and assert from the parent: the recovered log holds
//    exactly the committed prefix (N-1 commits before the marker phases,
//    N from after_mark on), the crashed transaction's unmarked record is
//    discarded only at after_log, replaying into the parent's pristine
//    cells reproduces the sequential oracle balances, and sum == minted.
//
//  * randomized concurrent oracle — 4 threads of random transfers, a crash
//    at a random kill point / hit count; the recovered log must be a legal
//    serialization: every recovered transaction is a well-formed transfer
//    (src decremented by x > 0, dst incremented by the same x) applied to
//    the prefix state, the final recovered balances equal the replayed
//    oracle, and conservation holds. Runs per protocol family so every
//    durable path sees concurrency.
//
// Substrates: sim always; rtm when hardware-viable. emul is excluded — its
// no-rollback emulation would abandon the locked stripe stamps a durable
// hardware commit takes (crash_harness.h; same exclusion capacity_paths
// documents).

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/rhtm.h"
#include "crash_harness.h"
#include "test_common.h"
#include "workloads/account_store.h"

namespace rhtm {
namespace {

using crash::ChildOutcome;
using crash::KillPoint;

// Child-side assertion: a failed expectation exits with a distinct code the
// parent reports as ChildOutcome::kFailed (the child's CHECK output would
// not fail the parent process).
void child_require(bool ok, int code) {
  if (!ok) _exit(code);
}

// ----------------------------------------------------- deterministic plan --
constexpr std::size_t kAccounts = 4;
constexpr TmWord kInitial = 100;
constexpr int kTxnsPerChild = 8;
constexpr int kKillHit = 3;  // crash inside the 3rd commit's persist sequence

struct Plan {
  std::uint64_t from, to;
  TmWord amount;
};

// Every planned transfer succeeds: amounts are tiny vs kInitial, and
// from != to always (adjacent accounts mod 4).
Plan plan_txn(int i) {
  return {static_cast<std::uint64_t>(i % kAccounts),
          static_cast<std::uint64_t>((i + 1) % kAccounts),
          static_cast<TmWord>(i % 3 + 1)};
}

template <class Tm>
void run_planned_transfers(Tm& tm, const AccountStore& store, int n) {
  typename Tm::ThreadCtx ctx(tm);
  for (int i = 0; i < n; ++i) {
    const Plan p = plan_txn(i);
    bool ok = false;
    tm.atomically(ctx, [&](auto& h) { ok = store.transfer(h, p.from, p.to, p.amount); });
    child_require(ok, 3);
  }
}

/// Runs `n` transfers through the named durable commit path. The protocol
/// configs force the path: every commit in the child takes it, so kill-hit
/// counting is exact.
template <class H>
void run_path_txns(TmUniverse<H>& u, const char* path, const AccountStore& store, int n) {
  if (std::strcmp(path, pmem::kPathTl2) == 0) {
    Tl2<H> tm(u);
    run_planned_transfers(tm, store, n);
  } else if (std::strcmp(path, pmem::kPathRh1Fast) == 0) {
    typename HybridTm<H>::Config cfg;
    cfg.slow_retry_percent = 0;  // hardware only: every commit is a fast commit
    HybridTm<H> tm(u, cfg);
    run_planned_transfers(tm, store, n);
  } else if (std::strcmp(path, pmem::kPathRh1) == 0) {
    typename HybridTm<H>::Config cfg;
    cfg.force_slow_path = true;  // software body + reduced hardware commit
    HybridTm<H> tm(u, cfg);
    run_planned_transfers(tm, store, n);
  } else if (std::strcmp(path, pmem::kPathRh2) == 0) {
    typename HybridTm<H>::Config cfg;
    cfg.force_rh2 = true;  // visible reads + write-set hardware commit
    HybridTm<H> tm(u, cfg);
    run_planned_transfers(tm, store, n);
  } else if (std::strcmp(path, pmem::kPathNorecHw) == 0) {
    HybridNorec<H> tm(u);  // uncontended: every commit is a hardware commit
    run_planned_transfers(tm, store, n);
  } else if (std::strcmp(path, pmem::kPathNorecSw) == 0) {
    typename HybridNorec<H>::Config cfg;
    cfg.max_hw_attempts = 0;  // straight to the value-log software path
    HybridNorec<H> tm(u, cfg);
    run_planned_transfers(tm, store, n);
  } else {
    _exit(4);  // unknown path name: the sweep and pmem::kPaths diverged
  }
}

/// `strict` = deterministic substrate (sim): every commit provably takes the
/// forced path, so the kill MUST fire at the kKillHit-th commit and the
/// committed/discarded counts are exact. On real RTM, spurious hardware
/// aborts (classified capacity) can spill commits onto a sibling durable
/// path, so the armed point's hit count no longer indexes the plan — the
/// sweep still crashes the child wherever the point fires and validates the
/// substrate-independent contract: the log is a committed PREFIX of the
/// single-threaded plan, at most one in-flight record is discarded, and
/// recovery reproduces exactly that prefix.
template <class H>
void kill_point_sweep(bool strict) {
  for (const KillPoint& kp : crash::all_kill_points()) {
    UniverseConfig ucfg;
    ucfg.durable = true;
    TmUniverse<H> u(ucfg);
    AccountStore store(kAccounts, kInitial, /*shards=*/2);
    const std::string name = kp.name();

    const ChildOutcome outcome = crash::run_crash_child([&] {
      pmem::arm_kill(name.c_str(), kKillHit);
      run_path_txns(u, kp.path, store, kTxnsPerChild);
    });
    CHECK(outcome != ChildOutcome::kFailed);
    if (strict) {
      // Every named kill point must actually be reached by its path.
      CHECK(outcome == ChildOutcome::kKilled);
    }
    if (outcome == ChildOutcome::kFailed) {
      std::printf("    kill point %s: child %s\n", name.c_str(), crash::to_string(outcome));
      continue;
    }

    PersistentDomain& pd = u.pmem();
    std::size_t discarded = 0;
    const auto txns = pd.recover_log(&discarded);
    CHECK(!pd.log_overflowed());
    CHECK(txns.size() <= static_cast<std::size_t>(kTxnsPerChild));
    CHECK(discarded <= 1);
    if (strict && outcome == ChildOutcome::kKilled) {
      // The committed prefix: the crashed (kKillHit-th) commit is durable
      // iff its marker phase was reached.
      const std::size_t expect_committed =
          static_cast<std::size_t>(kKillHit) - (kp.durable_phase() ? 0 : 1);
      const std::size_t expect_discarded = kp.leaves_unmarked_record() ? 1 : 0;
      CHECK_EQ(txns.size(), expect_committed);
      CHECK_EQ(discarded, expect_discarded);
    }

    // Sequential oracle: replay the committed prefix of the plan (the child
    // is single-threaded, so the log must be the plan's prefix in order).
    TmWord oracle[kAccounts];
    for (auto& b : oracle) b = kInitial;
    for (std::size_t k = 0; k < txns.size(); ++k) {
      const Plan p = plan_txn(static_cast<int>(k));
      oracle[p.from] -= p.amount;
      oracle[p.to] += p.amount;
    }
    // Atomicity: each recovered transaction is the complete transfer (both
    // writes, src first), nothing partial, in marker order == plan order.
    TmWord replay[kAccounts];
    for (auto& b : replay) b = kInitial;
    for (std::size_t k = 0; k < txns.size(); ++k) {
      CHECK_EQ(txns[k].entries.size(), std::size_t{2});
      if (txns[k].entries.size() != 2) break;
      const Plan p = plan_txn(static_cast<int>(k));
      CHECK_EQ(txns[k].entries[0].addr,
               reinterpret_cast<std::uintptr_t>(store.account_cell(p.from)));
      CHECK_EQ(txns[k].entries[1].addr,
               reinterpret_cast<std::uintptr_t>(store.account_cell(p.to)));
      replay[p.from] = txns[k].entries[0].value;
      replay[p.to] = txns[k].entries[1].value;
    }
    // Durability: recovery into the parent's pristine cells reproduces the
    // oracle, and value is conserved.
    crash::apply_recovered_cells(pd);
    TmWord sum = 0;
    for (std::size_t a = 0; a < kAccounts; ++a) {
      CHECK_EQ(replay[a], oracle[a]);
      CHECK_EQ(store.unsafe_balance(a), oracle[a]);
      TmWord img = 0;
      if (pd.image_lookup(store.account_cell(a), &img)) CHECK_EQ(img, oracle[a]);
      sum += store.unsafe_balance(a);
    }
    CHECK_EQ(sum, store.total_minted());
  }
}

// ------------------------------------------------ randomized + concurrent --
constexpr std::size_t kConcAccounts = 16;
constexpr TmWord kConcInitial = 1000;
constexpr int kConcThreads = 4;
constexpr int kConcTxnsPerThread = 400;

/// Child side: `threads` workers hammer random transfers through the
/// protocol that owns `path` (forced configs, as in the sweep) until the
/// armed kill point fires or the plan runs out.
template <class H>
void run_concurrent_child(TmUniverse<H>& u, const char* path, const AccountStore& store,
                          std::uint64_t seed) {
  auto worker = [&](int tid) {
    Xoshiro256 rng(seed * 1315423911u + static_cast<std::uint64_t>(tid) + 1);
    auto body = [&](auto& tm) {
      typename std::decay_t<decltype(tm)>::ThreadCtx ctx(tm);
      for (int i = 0; i < kConcTxnsPerThread; ++i) {
        const auto from = rng.next_u64() % kConcAccounts;
        const auto to = rng.next_u64() % kConcAccounts;
        const TmWord amount = rng.next_u64() % 5 + 1;
        tm.atomically(ctx, [&](auto& h) { (void)store.transfer(h, from, to, amount); });
      }
    };
    if (std::strcmp(path, pmem::kPathTl2) == 0) {
      Tl2<H> tm(u);
      body(tm);
    } else if (std::strcmp(path, pmem::kPathRh1Fast) == 0) {
      typename HybridTm<H>::Config cfg;
      cfg.slow_retry_percent = 0;
      HybridTm<H> tm(u, cfg);
      body(tm);
    } else if (std::strcmp(path, pmem::kPathRh1) == 0) {
      typename HybridTm<H>::Config cfg;
      cfg.force_slow_path = true;
      HybridTm<H> tm(u, cfg);
      body(tm);
    } else if (std::strcmp(path, pmem::kPathRh2) == 0) {
      typename HybridTm<H>::Config cfg;
      cfg.force_rh2 = true;
      HybridTm<H> tm(u, cfg);
      body(tm);
    } else if (std::strcmp(path, pmem::kPathNorecHw) == 0) {
      HybridNorec<H> tm(u);
      body(tm);
    } else {
      typename HybridNorec<H>::Config cfg;
      cfg.max_hw_attempts = 0;
      HybridNorec<H> tm(u, cfg);
      body(tm);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(kConcThreads);
  for (int t = 0; t < kConcThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();
}

/// Parent side: the recovered log must be a legal serialization of
/// transfers — prefix-replay it and require every transaction to be
/// well-formed against the running state.
template <class H>
void concurrent_recovery_oracle() {
  Xoshiro256 pick(20260807);
  const auto points = crash::all_kill_points();
  for (int iter = 0; iter < 8; ++iter) {
    const KillPoint kp = points[pick.next_u64() % points.size()];
    const int nth = static_cast<int>(pick.next_u64() % 40) + 1;
    const std::uint64_t child_seed = pick.next_u64();

    UniverseConfig ucfg;
    ucfg.durable = true;
    TmUniverse<H> u(ucfg);
    AccountStore store(kConcAccounts, kConcInitial, /*shards=*/4);
    const std::string name = kp.name();

    const ChildOutcome outcome = crash::run_crash_child([&] {
      pmem::arm_kill(name.c_str(), nth);
      run_concurrent_child(u, kp.path, store, child_seed);
    });
    // kKilled when the armed point fired, kCompleted when the child drained
    // its whole plan first (e.g. rh2 escalating around the armed commit) —
    // both leave a log that must validate. kFailed never.
    CHECK(outcome != ChildOutcome::kFailed);
    if (outcome == ChildOutcome::kFailed) continue;

    PersistentDomain& pd = u.pmem();
    std::size_t discarded = 0;
    const auto txns = pd.recover_log(&discarded);
    CHECK(!pd.log_overflowed());
    // At most one in-flight (logged-but-unmarked) transaction per thread.
    CHECK(discarded <= static_cast<std::size_t>(kConcThreads));

    std::unordered_map<std::uint64_t, std::size_t> account_of;
    for (std::size_t a = 0; a < kConcAccounts; ++a) {
      account_of[reinterpret_cast<std::uintptr_t>(store.account_cell(a))] = a;
    }
    std::vector<TmWord> bal(kConcAccounts, kConcInitial);
    bool shape_ok = true;
    for (const auto& t : txns) {
      // Atomicity: a committed transfer is exactly [src, dst], moving the
      // same positive amount out of one and into the other.
      if (t.entries.size() != 2) {
        shape_ok = false;
        break;
      }
      const auto s = account_of.find(t.entries[0].addr);
      const auto d = account_of.find(t.entries[1].addr);
      if (s == account_of.end() || d == account_of.end()) {
        shape_ok = false;
        break;
      }
      const TmWord new_src = t.entries[0].value;
      const TmWord new_dst = t.entries[1].value;
      if (new_src >= bal[s->second]) {
        shape_ok = false;  // amount must be > 0 and funds sufficient
        break;
      }
      const TmWord moved = bal[s->second] - new_src;
      if (new_dst != bal[d->second] + moved) {
        shape_ok = false;  // conservation broken mid-log
        break;
      }
      bal[s->second] = new_src;
      bal[d->second] = new_dst;
    }
    CHECK(shape_ok);
    if (!shape_ok) continue;

    // Durability: recovered state == prefix-replayed oracle; conservation.
    crash::apply_recovered_cells(pd);
    TmWord sum = 0;
    for (std::size_t a = 0; a < kConcAccounts; ++a) {
      CHECK_EQ(store.unsafe_balance(a), bal[a]);
      sum += store.unsafe_balance(a);
    }
    CHECK_EQ(sum, store.total_minted());
  }
}

void test_sweep_sim() { kill_point_sweep<HtmSim>(/*strict=*/true); }
void test_concurrent_sim() { concurrent_recovery_oracle<HtmSim>(); }

void test_sweep_rtm_when_viable() {
#if defined(__RTM__)
  if (HtmRtm::hardware_viable()) {
    kill_point_sweep<HtmRtm>(/*strict=*/false);
    return;
  }
#endif
  std::printf("    (no usable RTM on this host; sim leg covers the contract)\n");
}

void test_concurrent_rtm_when_viable() {
#if defined(__RTM__)
  if (HtmRtm::hardware_viable()) {
    concurrent_recovery_oracle<HtmRtm>();
    return;
  }
#endif
  std::printf("    (no usable RTM on this host; sim leg covers the contract)\n");
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      {"kill_point_sweep_every_path_sim", rhtm::test_sweep_sim},
      {"concurrent_recovery_oracle_sim", rhtm::test_concurrent_sim},
      {"kill_point_sweep_rtm_when_viable", rhtm::test_sweep_rtm_when_viable},
      {"concurrent_recovery_oracle_rtm_when_viable", rhtm::test_concurrent_rtm_when_viable},
  });
}
