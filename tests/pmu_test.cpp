// PMU counter plumbing (core/pmu.h) tests. The contract under test is
// graceful degradation: perf_event_open may be denied, absent, or only
// partially schedulable, and every one of those must leave the counters
// cleanly marked unavailable (with a diagnostic) — never crash, never
// perturb a run. The injected-opener seam lets us exercise each failure
// mode deterministically, plus the sample mapping with fake fds.

#include <cstring>

#include "core/pmu.h"
#include "core/rhtm.h"
#include "test_common.h"

#if defined(__linux__)
#include <cerrno>
#include <sys/eventfd.h>
#include <unistd.h>
#endif

namespace rhtm {
namespace {

#if defined(__linux__)

/// Opener that denies everything, as a locked-down perf_event_paranoid does.
int denied_open(std::uint64_t) { return -EACCES; }

/// Opener for which only the RTM retirement events schedule; the IN_TX
/// cycle encodings (bit 32 set) are rejected, as on a partially capable PMU.
int no_cycles_open(std::uint64_t config) {
  if ((config >> 32) != 0) return -ENOENT;
  return ::eventfd(1, 0);  // nonzero: a zero-count eventfd blocks its reader
}

/// Fake "counter" per event: an eventfd pre-loaded with a known value — a
/// read() returns 8 bytes exactly like a perf counter fd.
int fake_open(std::uint64_t config) {
  unsigned int value = 0;
  if (config == pmu::kEvtRtmStart) value = 7;
  if (config == pmu::kEvtRtmCommit) value = 5;
  if (config == pmu::kEvtCyclesInTx) value = 100;
  if (config == pmu::kEvtCyclesInTxCp) value = 60;
  return ::eventfd(value, 0);
}

void denied_opener_graceful() {
  pmu::RtmCounters c(&denied_open);
  CHECK(!c.available());
  CHECK(!c.cycles_available());
  CHECK(std::strstr(c.reason(), "EACCES") != nullptr);
  const pmu::RtmSample s = c.sample();
  CHECK(!s.valid);
  CHECK(!s.cycles_valid);
}

void fake_opener_sample_mapping() {
  pmu::RtmCounters c(&fake_open);
  CHECK(c.available());
  CHECK(c.cycles_available());
  const pmu::RtmSample s = c.sample();
  CHECK(s.valid);
  CHECK(s.cycles_valid);
  CHECK_EQ(s.tx_starts, 7u);
  CHECK_EQ(s.tx_commits, 5u);
  CHECK_EQ(s.cycles_in_tx, 100u);
  CHECK_EQ(s.cycles_in_tx_cp, 60u);
  CHECK_EQ(s.aborted_cycles(), 40u);
}

void partial_cycles_degrade_per_event() {
  pmu::RtmCounters c(&no_cycles_open);
  CHECK(c.available());         // retirement counters scheduled...
  CHECK(!c.cycles_available()); // ...cycle counters rejected, independently
  const pmu::RtmSample s = c.sample();
  CHECK(s.valid);
  CHECK(!s.cycles_valid);
  CHECK_EQ(s.aborted_cycles(), 0u);
}

#endif  // __linux__

/// The real opener must come up either available or unavailable-with-reason
/// — and never crash — whatever this host and its perf configuration are.
void default_open_no_crash() {
  pmu::RtmCounters c;
  if (c.available()) {
    (void)c.sample();
  } else {
    CHECK(c.reason() != nullptr && c.reason()[0] != '\0');
  }
  // A second instance must agree (the errno latch makes this cheap).
  pmu::RtmCounters c2;
  CHECK_EQ(c.available(), c2.available());
}

void unrequested_counters_cost_nothing() {
  pmu::RtmCounters c(/*try_open=*/false);
  CHECK(!c.available());
  CHECK(c.reason()[0] != '\0');
  CHECK(!c.sample().valid);
}

void totals_merge_and_snapshot() {
  pmu::RtmTotals totals;
  pmu::RtmSample a;
  a.valid = true;
  a.tx_starts = 10;
  a.tx_commits = 8;
  pmu::RtmSample b = a;
  b.cycles_valid = true;
  b.cycles_in_tx = 50;
  b.cycles_in_tx_cp = 30;
  pmu::RtmSample invalid;  // must be ignored wholesale
  totals.merge(a);
  totals.merge(b);
  totals.merge(invalid);
  const pmu::RtmTotalsSnapshot s = totals.snapshot();
  CHECK_EQ(s.threads_sampled, 2u);
  CHECK_EQ(s.threads_with_cycles, 1u);
  CHECK_EQ(s.tx_starts, 20u);
  CHECK_EQ(s.tx_commits, 16u);
  CHECK_EQ(s.aborted_cycles(), 20u);
}

void error_reasons_are_stable_strings() {
#if defined(__linux__)
  CHECK(std::strstr(pmu::open_error_reason(EACCES), "EACCES") != nullptr);
  CHECK(std::strstr(pmu::open_error_reason(ENOENT), "ENOENT") != nullptr);
  CHECK(pmu::open_error_reason(12345)[0] != '\0');
#else
  CHECK(pmu::open_error_reason(0)[0] != '\0');
#endif
}

/// Whole-stack integration: transactions on the rtm substrate must run to
/// completion whether or not the PMU opened, and the universe's totals must
/// stay consistent (sampled threads only ever accumulate).
void rtm_substrate_runs_with_or_without_pmu() {
  TmUniverse<HtmRtm> u;
  HtmOnly<HtmRtm> tm(u);
  const pmu::RtmTotalsSnapshot before = u.htm().pmu_totals();
  {
    typename HtmOnly<HtmRtm>::ThreadCtx ctx(tm);
    TVar<TmWord> cell;
    for (int i = 0; i < 100; ++i) {
      tm.atomically(ctx, [&](auto& tx) { cell.write(tx, cell.read(tx) + 1); });
    }
    CHECK_EQ(cell.unsafe_read(), 100u);
  }  // ThreadCtx destruction merges its sample (if any) into the totals
  const pmu::RtmTotalsSnapshot after = u.htm().pmu_totals();
  CHECK(after.threads_sampled >= before.threads_sampled);
  if (after.threads_sampled == before.threads_sampled) {
    // PMU unavailable: the run above must still have completed (checked),
    // and the totals must not have moved.
    CHECK_EQ(after.tx_starts, before.tx_starts);
  }
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
#if defined(__linux__)
      TestCase{"denied_opener_graceful", rhtm::denied_opener_graceful},
      TestCase{"fake_opener_sample_mapping", rhtm::fake_opener_sample_mapping},
      TestCase{"partial_cycles_degrade_per_event", rhtm::partial_cycles_degrade_per_event},
#endif
      TestCase{"default_open_no_crash", rhtm::default_open_no_crash},
      TestCase{"unrequested_counters_cost_nothing", rhtm::unrequested_counters_cost_nothing},
      TestCase{"totals_merge_and_snapshot", rhtm::totals_merge_and_snapshot},
      TestCase{"error_reasons_are_stable_strings", rhtm::error_reasons_are_stable_strings},
      TestCase{"rtm_substrate_runs_with_or_without_pmu",
               rhtm::rtm_substrate_runs_with_or_without_pmu},
  });
}
