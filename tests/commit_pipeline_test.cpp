// The deduped commit pipeline, end to end:
//  * a huge-write-set TL2 commit completes in sorted-deduped time (the old
//    per-entry is_self linear scan was O(W^2) and made this size hang for
//    seconds — this is the canary that reverting the dedup trips);
//  * the RH1 reduced commit's hardware footprint follows the DISTINCT
//    stripe count, not the raw read count: zipfian re-reads of a hot set
//    stay on the RH1-slow tier instead of spuriously escalating to RH2;
//  * the RH2 slow-slow commit honors its own published read masks through
//    the O(1) self-mask view and leaves no mask behind.

#include <vector>

#include "core/rhtm.h"
#include "workloads/driver.h"
#include "test_common.h"

namespace rhtm {
namespace {

std::uint64_t commits_on(const TxStats& s, ExecPath p) {
  return s.commits_by_path[static_cast<std::size_t>(p)];
}

/// Every test below runs twice: numa=off (flat stripe table, the historical
/// layout) and numa=shard (per-socket shards behind the same façade). The
/// pipeline observables — commit path, footprint, mask hygiene — must be
/// identical, because sharding only relocates storage; it never changes a
/// lock or validation decision.
UniverseConfig with_numa(UniverseConfig ucfg, NumaMode mode) {
  static const Topology topo = Topology::fake({{0, 1, 2, 3}, {4, 5, 6, 7}});
  ucfg.numa = mode;
  ucfg.topology = &topo;
  return ucfg;
}

/// One TL2 transaction reading 20k cells and writing 40k more. Under the
/// old per-entry `is_self` linear scan this commit was O(W x locked) ~ 1e9
/// stripe compares (seconds of wall clock); deduped + sorted it is O(W log
/// W). The suite-level observable is this test finishing instantly.
void large_write_set_tl2_commit(NumaMode numa) {
  constexpr std::size_t kReads = 20000;
  constexpr std::size_t kWrites = 40000;
  UniverseConfig ucfg;
  ucfg.stripe.granularity_log2 = 3;  // 1 word per stripe: maximal lock count
  TmUniverse<HtmSim> u(with_numa(ucfg, numa));
  Tl2<HtmSim> tm(u);
  Tl2<HtmSim>::ThreadCtx ctx(tm);

  std::vector<TVar<TmWord>> reads(kReads);
  std::vector<TVar<TmWord>> writes(kWrites);
  for (std::size_t i = 0; i < kReads; ++i) reads[i].unsafe_write(i);

  tm.atomically(ctx, [&](auto& tx) {
    TmWord sum = 0;
    for (std::size_t i = 0; i < kReads; ++i) sum += reads[i].read(tx);
    for (std::size_t i = 0; i < kWrites; ++i) writes[i].write(tx, sum + i);
  });
  CHECK_EQ(ctx.stats.commits, 1u);
  const TmWord expect_base = kReads * (kReads - 1) / 2;
  CHECK_EQ(writes[0].unsafe_read(), expect_base);
  CHECK_EQ(writes[kWrites - 1].unsafe_read(), expect_base + kWrites - 1);
  // Every lock released back to an unlocked word.
  for (std::size_t s = 0; s < u.stripes().count(); ++s) {
    CHECK(!StripeTable::is_locked(u.stripes().word(s).unsafe_load()));
  }
}

/// Zipfian-style re-reads: the body reads 8 hot cells 300 times each, so
/// the raw read count (2400) dwarfs the distinct stripe count (<= 8). The
/// reduced commit must fit the 64-entry hardware budget — under the old
/// duplicate-logging ReadSet it overflowed and escalated to RH2.
void reduced_commit_footprint_is_distinct_stripes(NumaMode numa) {
  UniverseConfig ucfg;
  ucfg.htm.max_read_set = 64;
  ucfg.htm.max_write_set = 64;
  ucfg.htm.line_shift = 3;
  TmUniverse<HtmEmul> u(with_numa(ucfg, numa));
  HybridTm<HtmEmul>::Config cfg;
  cfg.force_slow_path = true;  // software body + reduced hardware commit
  HybridTm<HtmEmul> tm(u, cfg);
  HybridTm<HtmEmul>::ThreadCtx ctx(tm);

  std::vector<TVar<TmWord>> data(4096);
  const TxStats delta =
      run_capacity_pressure(tm, ctx, 20, [&](auto& m, auto& c, Xoshiro256&, unsigned) {
        m.atomically(c, [&](auto& tx) {
          TmWord sum = 0;
          for (int round = 0; round < 300; ++round) {
            for (std::size_t i = 0; i < 8; ++i) sum += data[i * 512].read(tx);
          }
          for (std::size_t i = 0; i < 4; ++i) data[1 + i * 512].write(tx, sum);
        });
      });
  CHECK_EQ(delta.commits, 20u);
  CHECK_EQ(commits_on(delta, ExecPath::kRh1Slow), 20u);  // never escalated
  CHECK_EQ(delta.aborts_by_cause[static_cast<std::size_t>(AbortCause::kHtmCapacity)], 0u);
}

/// Same shape under the simulator's real distinct-line accounting: the
/// transaction commits on the RH1-slow tier and the published values are
/// correct (the reduced commit stamped each unique stripe exactly once).
void reduced_commit_dedup_sim(NumaMode numa) {
  UniverseConfig ucfg;
  ucfg.htm.max_read_set = 64;
  ucfg.htm.max_write_set = 64;
  ucfg.htm.line_shift = 3;
  TmUniverse<HtmSim> u(with_numa(ucfg, numa));
  HybridTm<HtmSim>::Config cfg;
  cfg.force_slow_path = true;
  HybridTm<HtmSim> tm(u, cfg);
  HybridTm<HtmSim>::ThreadCtx ctx(tm);

  std::vector<TVar<TmWord>> data(64);
  tm.atomically(ctx, [&](auto& tx) {
    TmWord sum = 0;
    for (int round = 0; round < 100; ++round) {
      for (std::size_t i = 0; i < 16; ++i) sum += data[i].read(tx);
    }
    for (std::size_t i = 0; i < 16; ++i) data[32 + i].write(tx, sum + i);
  });
  CHECK_EQ(ctx.stats.commits, 1u);
  CHECK_EQ(commits_on(ctx.stats, ExecPath::kRh1Slow), 1u);
  for (std::size_t i = 0; i < 16; ++i) CHECK_EQ(data[32 + i].unsafe_read(), i);
}

/// RH2 whose write-set-only hardware commit overflows: the all-software
/// slow-slow commit must admit the transaction's own published read masks
/// (via the O(1) self-mask set), commit, and unpublish every mask.
void rh2_slow_slow_respects_own_masks(NumaMode numa) {
  constexpr std::size_t kCells = 4000;
  UniverseConfig ucfg;
  ucfg.htm.max_read_set = 64;
  ucfg.htm.max_write_set = 64;
  ucfg.htm.line_shift = 3;
  TmUniverse<HtmSim> u(with_numa(ucfg, numa));
  HybridTm<HtmSim>::Config cfg;
  cfg.force_rh2 = true;
  HybridTm<HtmSim> tm(u, cfg);
  HybridTm<HtmSim>::ThreadCtx ctx(tm);

  std::vector<TVar<TmWord>> cells(kCells);
  for (std::size_t i = 0; i < kCells; ++i) cells[i].unsafe_write(i);
  // Read-modify-write of every cell: every written stripe also carries this
  // transaction's own visible-read mask, so a commit that miscounted self
  // masks would deadlock-abort forever.
  tm.atomically(ctx, [&](auto& tx) {
    for (std::size_t i = 0; i < kCells; ++i) cells[i].write(tx, cells[i].read(tx) + 1);
  });
  CHECK_EQ(ctx.stats.commits, 1u);
  CHECK_EQ(commits_on(ctx.stats, ExecPath::kRh2SlowSlow), 1u);
  for (std::size_t i = 0; i < kCells; ++i) CHECK_EQ(cells[i].unsafe_read(), i + 1);
  CHECK_EQ(tm.rh2_active(), 0u);
  for (std::size_t s = 0; s < u.stripes().count(); ++s) {
    CHECK_EQ(u.stripes().readers(s), 0u);  // every mask unpublished
    CHECK(!StripeTable::is_locked(u.stripes().word(s).unsafe_load()));
  }
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  using rhtm::NumaMode;
  return rhtm::test::run_tests({
      TestCase{"large_write_set_tl2_commit",
               [] { rhtm::large_write_set_tl2_commit(NumaMode::kOff); }},
      TestCase{"large_write_set_tl2_commit_numa_shard",
               [] { rhtm::large_write_set_tl2_commit(NumaMode::kShard); }},
      TestCase{"reduced_commit_footprint_is_distinct_stripes",
               [] { rhtm::reduced_commit_footprint_is_distinct_stripes(NumaMode::kOff); }},
      TestCase{"reduced_commit_footprint_is_distinct_stripes_numa_shard",
               [] { rhtm::reduced_commit_footprint_is_distinct_stripes(NumaMode::kShard); }},
      TestCase{"reduced_commit_dedup_sim",
               [] { rhtm::reduced_commit_dedup_sim(NumaMode::kOff); }},
      TestCase{"reduced_commit_dedup_sim_numa_shard",
               [] { rhtm::reduced_commit_dedup_sim(NumaMode::kShard); }},
      TestCase{"rh2_slow_slow_respects_own_masks",
               [] { rhtm::rh2_slow_slow_respects_own_masks(NumaMode::kOff); }},
      TestCase{"rh2_slow_slow_respects_own_masks_numa_shard",
               [] { rhtm::rh2_slow_slow_respects_own_masks(NumaMode::kShard); }},
  });
}
