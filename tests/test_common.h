#pragma once

// Minimal dependency-free test harness: CHECK/CHECK_EQ macros and a runner.
// Each test file defines TESTS as a list of {name, fn} and calls RUN_TESTS.

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

namespace rhtm::test {

inline int g_failures = 0;

#define CHECK(cond)                                                               \
  do {                                                                            \
    if (!(cond)) {                                                                \
      std::printf("    CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, #cond);  \
      ++rhtm::test::g_failures;                                                   \
    }                                                                             \
  } while (0)

#define CHECK_EQ(a, b)                                                                        \
  do {                                                                                        \
    const auto va = (a);                                                                      \
    const auto vb = (b);                                                                      \
    if (!(va == vb)) {                                                                        \
      std::printf("    CHECK_EQ failed at %s:%d: %s (%llu) != %s (%llu)\n", __FILE__,         \
                  __LINE__, #a, static_cast<unsigned long long>(va), #b,                      \
                  static_cast<unsigned long long>(vb));                                       \
      ++rhtm::test::g_failures;                                                               \
    }                                                                                         \
  } while (0)

struct TestCase {
  const char* name;
  std::function<void()> fn;
};

inline int run_tests(const std::vector<TestCase>& tests) {
  std::setvbuf(stdout, nullptr, _IONBF, 0);  // survive a timeout kill with output intact
  int failed = 0;
  for (const TestCase& t : tests) {
    const int before = g_failures;
    std::printf("[ RUN  ] %s\n", t.name);
    t.fn();
    if (g_failures == before) {
      std::printf("[  OK  ] %s\n", t.name);
    } else {
      std::printf("[ FAIL ] %s\n", t.name);
      ++failed;
    }
  }
  if (failed == 0) {
    std::printf("ALL %zu TESTS PASSED\n", tests.size());
    return 0;
  }
  std::printf("%d TEST(S) FAILED\n", failed);
  return 1;
}

}  // namespace rhtm::test
