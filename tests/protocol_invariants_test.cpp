// Cross-protocol serializability smoke tests, parametrized over the
// substrates that guarantee atomic commits: concurrent bank transfers must
// conserve the total, and concurrent readers must never observe a torn
// snapshot — for every protocol the benches run.
//
// Substrate coverage: the full suite runs on HtmSim (software-validated
// commits) and on HtmRtm (real hardware transactions when the host has
// usable TSX; the software fallback paths otherwise — the invariants must
// hold either way). HtmEmul is deliberately excluded: it has no conflict
// detection or rollback (SubstrateTraits<HtmEmul>::kAtomic is false), so
// concurrent executions on it are a modelling device, not serializable
// histories; its whole-stack coverage lives in substrate_conformance_test.

#include <atomic>
#include <thread>
#include <vector>

#include "core/rhtm.h"
#include "test_common.h"

namespace rhtm {
namespace {

constexpr std::size_t kAccounts = 64;
constexpr TmWord kInitialEach = 100;
constexpr TmWord kTotal = kAccounts * kInitialEach;

template <class Tm>
void bank_test(Tm& tm, unsigned writers) {
  std::vector<TVar<TmWord>> accounts(kAccounts);
  for (auto& a : accounts) a.unsafe_write(kInitialEach);

  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      typename Tm::ThreadCtx ctx(tm);
      Xoshiro256 rng(1000 + t);
      for (int i = 0; i < 4000; ++i) {
        const std::size_t from = rng.below(kAccounts);
        const std::size_t to = rng.below(kAccounts);
        const TmWord amount = rng.below(5);
        tm.atomically(ctx, [&](auto& tx) {
          const TmWord f = accounts[from].read(tx);
          if (f >= amount) {
            accounts[from].write(tx, f - amount);
            accounts[to].write(tx, accounts[to].read(tx) + amount);
          }
        });
      }
    });
  }
  // A reader thread summing all accounts transactionally.
  threads.emplace_back([&] {
    typename Tm::ThreadCtx ctx(tm);
    while (!stop.load(std::memory_order_acquire)) {
      TmWord sum = 0;
      tm.atomically(ctx, [&](auto& tx) {
        TmWord s = 0;
        for (const auto& a : accounts) s += a.read(tx);
        sum = s;
      });
      if (sum != kTotal) torn.store(true);
    }
  });
  for (unsigned t = 0; t < writers; ++t) threads[t].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();

  CHECK(!torn.load());
  TmWord final_total = 0;
  for (const auto& a : accounts) final_total += a.unsafe_read();
  CHECK_EQ(final_total, kTotal);
}

template <class H>
void tl2_bank() {
  TmUniverse<H> u;
  Tl2<H> tm(u);
  bank_test(tm, 4);
}

template <class H>
void htm_only_bank() {
  TmUniverse<H> u;
  HtmOnly<H> tm(u);
  bank_test(tm, 4);
}

template <class H>
void standard_hytm_bank() {
  TmUniverse<H> u;
  StandardHytm<H> tm(u);  // with software fallback enabled
  bank_test(tm, 4);
}

template <class H>
void rh1_fast_bank() {
  TmUniverse<H> u;
  typename HybridTm<H>::Config cfg;
  cfg.slow_retry_percent = 0;
  HybridTm<H> tm(u, cfg);
  bank_test(tm, 4);
}

template <class H>
void rh1_mixed_bank() {
  TmUniverse<H> u;
  typename HybridTm<H>::Config cfg;
  cfg.slow_retry_percent = 100;
  cfg.inject_abort_bp = 2000;  // force plenty of slow-path traffic
  HybridTm<H> tm(u, cfg);
  bank_test(tm, 4);
}

template <class H>
void rh1_forced_slow_bank() {
  TmUniverse<H> u;
  typename HybridTm<H>::Config cfg;
  cfg.force_slow_path = true;
  HybridTm<H> tm(u, cfg);
  bank_test(tm, 4);
}

template <class H>
void rh2_forced_bank() {
  TmUniverse<H> u;
  typename HybridTm<H>::Config cfg;
  cfg.force_rh2 = true;
  HybridTm<H> tm(u, cfg);
  bank_test(tm, 4);
}

template <class H>
void rh1_adaptive_bank() {
  UniverseConfig ucfg;
  ucfg.cm.policy = CmPolicy::kAdaptive;
  TmUniverse<H> u(ucfg);
  typename HybridTm<H>::Config cfg;
  cfg.inject_abort_bp = 5000;
  HybridTm<H> tm(u, cfg);
  bank_test(tm, 4);
}

template <class H>
void hybrid_norec_bank() {
  TmUniverse<H> u;
  typename HybridNorec<H>::Config cfg;
  cfg.inject_abort_bp = 2000;  // push traffic onto the software path too
  HybridNorec<H> tm(u, cfg);
  bank_test(tm, 4);
}

template <class H>
void phased_bank() {
  TmUniverse<H> u;
  typename PhasedTm<H>::Config cfg;
  cfg.inject_abort_bp = 2000;  // force phase transitions
  PhasedTm<H> tm(u, cfg);
  bank_test(tm, 4);
  CHECK_EQ(tm.software_pending(), 0u);  // phases drained
}

/// Shared fake 2-socket topology for the numa legs (the universe keeps a
/// pointer to it, so it must outlive every universe built from it).
const Topology& two_socket_topology() {
  static const Topology topo = Topology::fake({{0, 1, 2, 3}, {4, 5, 6, 7}});
  return topo;
}

UniverseConfig numa_config(NumaMode mode) {
  UniverseConfig ucfg;
  ucfg.numa = mode;
  ucfg.topology = &two_socket_topology();
  return ucfg;
}

/// numa parametrization: the same bank invariants must hold with the stripe
/// table sharded per socket (numa=shard) — the façade may not change any
/// lock/validate decision — and with the per-socket cached clock stacked on
/// top (numa=shard+clock), whose lagging replicas may only ever cause
/// spurious revalidation, never admit a torn snapshot.
template <class H>
void numa_shard_tl2_bank() {
  TmUniverse<H> u(numa_config(NumaMode::kShard));
  Tl2<H> tm(u);
  bank_test(tm, 4);
}

template <class H>
void numa_shard_rh1_mixed_bank() {
  TmUniverse<H> u(numa_config(NumaMode::kShard));
  typename HybridTm<H>::Config cfg;
  cfg.slow_retry_percent = 100;
  cfg.inject_abort_bp = 2000;
  HybridTm<H> tm(u, cfg);
  bank_test(tm, 4);
}

template <class H>
void numa_shard_rh2_forced_bank() {
  TmUniverse<H> u(numa_config(NumaMode::kShard));
  typename HybridTm<H>::Config cfg;
  cfg.force_rh2 = true;
  HybridTm<H> tm(u, cfg);
  bank_test(tm, 4);
}

template <class H>
void numa_shard_clock_mixed_bank() {
  TmUniverse<H> u(numa_config(NumaMode::kShardClock));
  typename HybridTm<H>::Config cfg;
  cfg.slow_retry_percent = 100;
  cfg.inject_abort_bp = 2000;
  HybridTm<H> tm(u, cfg);
  bank_test(tm, 4);
}

template <class H>
void gv6_mixed_bank() {
  UniverseConfig ucfg;
  ucfg.gv_mode = GvMode::kGv6;
  TmUniverse<H> u(ucfg);
  typename HybridTm<H>::Config cfg;
  cfg.slow_retry_percent = 100;
  cfg.inject_abort_bp = 2000;
  HybridTm<H> tm(u, cfg);
  bank_test(tm, 4);
}

/// The rtm leg announces whether it exercised real hardware transactions or
/// the graceful software fallback — both must satisfy the invariants.
void rtm_banner() {
  std::printf("    rtm substrate: available=%d hardware_viable=%d (%s)\n",
              HtmRtm::available() ? 1 : 0, HtmRtm::hardware_viable() ? 1 : 0,
              HtmRtm::hardware_viable() ? "real hardware transactions"
                                        : "software fallback paths");
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::HtmRtm;
  using rhtm::HtmSim;
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      TestCase{"tl2_bank", rhtm::tl2_bank<HtmSim>},
      TestCase{"htm_only_bank", rhtm::htm_only_bank<HtmSim>},
      TestCase{"standard_hytm_bank", rhtm::standard_hytm_bank<HtmSim>},
      TestCase{"rh1_fast_bank", rhtm::rh1_fast_bank<HtmSim>},
      TestCase{"rh1_mixed_bank", rhtm::rh1_mixed_bank<HtmSim>},
      TestCase{"rh1_forced_slow_bank", rhtm::rh1_forced_slow_bank<HtmSim>},
      TestCase{"rh2_forced_bank", rhtm::rh2_forced_bank<HtmSim>},
      TestCase{"rh1_adaptive_bank", rhtm::rh1_adaptive_bank<HtmSim>},
      TestCase{"hybrid_norec_bank", rhtm::hybrid_norec_bank<HtmSim>},
      TestCase{"phased_bank", rhtm::phased_bank<HtmSim>},
      TestCase{"gv6_mixed_bank", rhtm::gv6_mixed_bank<HtmSim>},
      TestCase{"numa_shard_tl2_bank", rhtm::numa_shard_tl2_bank<HtmSim>},
      TestCase{"numa_shard_rh1_mixed_bank", rhtm::numa_shard_rh1_mixed_bank<HtmSim>},
      TestCase{"numa_shard_rh2_forced_bank", rhtm::numa_shard_rh2_forced_bank<HtmSim>},
      TestCase{"numa_shard_clock_mixed_bank", rhtm::numa_shard_clock_mixed_bank<HtmSim>},
      TestCase{"rtm_banner", rhtm::rtm_banner},
      TestCase{"rtm_tl2_bank", rhtm::tl2_bank<HtmRtm>},
      TestCase{"rtm_htm_only_bank", rhtm::htm_only_bank<HtmRtm>},
      TestCase{"rtm_standard_hytm_bank", rhtm::standard_hytm_bank<HtmRtm>},
      TestCase{"rtm_rh1_fast_bank", rhtm::rh1_fast_bank<HtmRtm>},
      TestCase{"rtm_rh1_mixed_bank", rhtm::rh1_mixed_bank<HtmRtm>},
      TestCase{"rtm_rh2_forced_bank", rhtm::rh2_forced_bank<HtmRtm>},
      TestCase{"rtm_hybrid_norec_bank", rhtm::hybrid_norec_bank<HtmRtm>},
      TestCase{"rtm_phased_bank", rhtm::phased_bank<HtmRtm>},
      TestCase{"rtm_numa_shard_rh1_mixed_bank", rhtm::numa_shard_rh1_mixed_bank<HtmRtm>},
      TestCase{"rtm_numa_shard_clock_mixed_bank",
               rhtm::numa_shard_clock_mixed_bank<HtmRtm>},
  });
}
