// Cross-protocol serializability smoke tests on the simulated substrate:
// concurrent bank transfers must conserve the total, and concurrent readers
// must never observe a torn snapshot — for every protocol the benches run.

#include <atomic>
#include <thread>
#include <vector>

#include "core/rhtm.h"
#include "test_common.h"

namespace rhtm {
namespace {

constexpr std::size_t kAccounts = 64;
constexpr TmWord kInitialEach = 100;
constexpr TmWord kTotal = kAccounts * kInitialEach;

template <class Tm>
void bank_test(TmUniverse<HtmSim>& u, Tm& tm, unsigned writers) {
  std::vector<TVar<TmWord>> accounts(kAccounts);
  for (auto& a : accounts) a.unsafe_write(kInitialEach);
  (void)u;

  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      typename Tm::ThreadCtx ctx(tm);
      Xoshiro256 rng(1000 + t);
      for (int i = 0; i < 4000; ++i) {
        const std::size_t from = rng.below(kAccounts);
        const std::size_t to = rng.below(kAccounts);
        const TmWord amount = rng.below(5);
        tm.atomically(ctx, [&](auto& tx) {
          const TmWord f = accounts[from].read(tx);
          if (f >= amount) {
            accounts[from].write(tx, f - amount);
            accounts[to].write(tx, accounts[to].read(tx) + amount);
          }
        });
      }
    });
  }
  // A reader thread summing all accounts transactionally.
  threads.emplace_back([&] {
    typename Tm::ThreadCtx ctx(tm);
    while (!stop.load(std::memory_order_acquire)) {
      TmWord sum = 0;
      tm.atomically(ctx, [&](auto& tx) {
        TmWord s = 0;
        for (const auto& a : accounts) s += a.read(tx);
        sum = s;
      });
      if (sum != kTotal) torn.store(true);
    }
  });
  for (unsigned t = 0; t < writers; ++t) threads[t].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();

  CHECK(!torn.load());
  TmWord final_total = 0;
  for (const auto& a : accounts) final_total += a.unsafe_read();
  CHECK_EQ(final_total, kTotal);
}

void tl2_bank() {
  TmUniverse<HtmSim> u;
  Tl2<HtmSim> tm(u);
  bank_test(u, tm, 4);
}

void htm_only_bank() {
  TmUniverse<HtmSim> u;
  HtmOnly<HtmSim> tm(u);
  bank_test(u, tm, 4);
}

void standard_hytm_bank() {
  TmUniverse<HtmSim> u;
  StandardHytm<HtmSim> tm(u);  // with software fallback enabled
  bank_test(u, tm, 4);
}

void rh1_fast_bank() {
  TmUniverse<HtmSim> u;
  HybridTm<HtmSim>::Config cfg;
  cfg.slow_retry_percent = 0;
  HybridTm<HtmSim> tm(u, cfg);
  bank_test(u, tm, 4);
}

void rh1_mixed_bank() {
  TmUniverse<HtmSim> u;
  HybridTm<HtmSim>::Config cfg;
  cfg.slow_retry_percent = 100;
  cfg.inject_abort_bp = 2000;  // force plenty of slow-path traffic
  HybridTm<HtmSim> tm(u, cfg);
  bank_test(u, tm, 4);
}

void rh1_forced_slow_bank() {
  TmUniverse<HtmSim> u;
  HybridTm<HtmSim>::Config cfg;
  cfg.force_slow_path = true;
  HybridTm<HtmSim> tm(u, cfg);
  bank_test(u, tm, 4);
}

void rh2_forced_bank() {
  TmUniverse<HtmSim> u;
  HybridTm<HtmSim>::Config cfg;
  cfg.force_rh2 = true;
  HybridTm<HtmSim> tm(u, cfg);
  bank_test(u, tm, 4);
}

void rh1_adaptive_bank() {
  TmUniverse<HtmSim> u;
  HybridTm<HtmSim>::Config cfg;
  cfg.retry_policy = HybridTm<HtmSim>::RetryPolicy::kAdaptive;
  cfg.inject_abort_bp = 5000;
  HybridTm<HtmSim> tm(u, cfg);
  bank_test(u, tm, 4);
}

void hybrid_norec_bank() {
  TmUniverse<HtmSim> u;
  HybridNorec<HtmSim>::Config cfg;
  cfg.inject_abort_bp = 2000;  // push traffic onto the software path too
  HybridNorec<HtmSim> tm(u, cfg);
  bank_test(u, tm, 4);
}

void phased_bank() {
  TmUniverse<HtmSim> u;
  PhasedTm<HtmSim>::Config cfg;
  cfg.inject_abort_bp = 2000;  // force phase transitions
  PhasedTm<HtmSim> tm(u, cfg);
  bank_test(u, tm, 4);
  CHECK_EQ(tm.software_pending(), 0u);  // phases drained
}

void gv6_mixed_bank() {
  UniverseConfig ucfg;
  ucfg.gv_mode = GvMode::kGv6;
  TmUniverse<HtmSim> u(ucfg);
  HybridTm<HtmSim>::Config cfg;
  cfg.slow_retry_percent = 100;
  cfg.inject_abort_bp = 2000;
  HybridTm<HtmSim> tm(u, cfg);
  bank_test(u, tm, 4);
}

}  // namespace
}  // namespace rhtm

int main() {
  using rhtm::test::TestCase;
  return rhtm::test::run_tests({
      TestCase{"tl2_bank", rhtm::tl2_bank},
      TestCase{"htm_only_bank", rhtm::htm_only_bank},
      TestCase{"standard_hytm_bank", rhtm::standard_hytm_bank},
      TestCase{"rh1_fast_bank", rhtm::rh1_fast_bank},
      TestCase{"rh1_mixed_bank", rhtm::rh1_mixed_bank},
      TestCase{"rh1_forced_slow_bank", rhtm::rh1_forced_slow_bank},
      TestCase{"rh2_forced_bank", rhtm::rh2_forced_bank},
      TestCase{"rh1_adaptive_bank", rhtm::rh1_adaptive_bank},
      TestCase{"hybrid_norec_bank", rhtm::hybrid_norec_bank},
      TestCase{"phased_bank", rhtm::phased_bank},
      TestCase{"gv6_mixed_bank", rhtm::gv6_mixed_bank},
  });
}
