#pragma once

// Fork-based crash-recovery harness for the durable commit paths
// (core/pmem.h). The recipe every crash test follows:
//
//   1. The PARENT constructs the durable universe (and the workload's cells)
//      BEFORE forking. The PersistentDomain's region is MAP_SHARED, so the
//      child's persists are visible to the parent; the TmCells themselves
//      are copy-on-write, so the child's in-memory effects are NOT — after
//      the child dies, the parent's cells still hold their initial values,
//      i.e. the parent IS the "fresh universe after the power failure".
//   2. The CHILD arms a kill point (pmem::arm_kill) and runs transactions.
//      It either completes (_exit(0)) or dies at the armed point with
//      pmem::kKillExitCode — the simulated power failure, mid-commit.
//   3. The parent scans the shared redo log (recover_log), replays the
//      marked transactions into its pristine cells (apply_recovered_cells —
//      valid because fork preserves addresses), and asserts atomicity +
//      durability against a sequential oracle.
//
// Only substrates with real commit atomicity participate
// (SubstrateTraits<H>::kAtomic — sim and rtm): the durable hardware commits
// stamp stripes locked inside the transaction, which HtmEmul's no-rollback
// emulation cannot undo on abort (the same reason capacity_paths_test
// bounds its emul leg). Gate tests with `crash::substrate_supported<H>()`.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/htm_common.h"
#include "core/pmem.h"

namespace rhtm::crash {

enum class ChildOutcome {
  kCompleted,  ///< child ran to completion (armed point never hit)
  kKilled,     ///< child died at the armed kill point (kKillExitCode)
  kFailed,     ///< child exited nonzero / was signalled — a test failure
};

inline const char* to_string(ChildOutcome o) {
  switch (o) {
    case ChildOutcome::kCompleted: return "completed";
    case ChildOutcome::kKilled: return "killed";
    case ChildOutcome::kFailed: return "failed";
  }
  return "?";
}

template <class H>
[[nodiscard]] constexpr bool substrate_supported() {
  return SubstrateTraits<H>::kAtomic;
}

/// Forks; the child runs `child_body` and exits 0 (an armed kill point
/// _exit()s it with kKillExitCode first if hit). Returns how the child
/// ended. stdio is flushed pre-fork so a dying child cannot double-print
/// buffered test output.
template <class ChildBody>
ChildOutcome run_crash_child(ChildBody&& child_body) {
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("crash_harness: fork");
    return ChildOutcome::kFailed;
  }
  if (pid == 0) {
    child_body();
    _exit(0);
  }
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) {
    std::perror("crash_harness: waitpid");
    return ChildOutcome::kFailed;
  }
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    if (code == 0) return ChildOutcome::kCompleted;
    if (code == pmem::kKillExitCode) return ChildOutcome::kKilled;
    std::fprintf(stderr, "crash_harness: child exited with %d\n", code);
  } else if (WIFSIGNALED(status)) {
    std::fprintf(stderr, "crash_harness: child killed by signal %d\n", WTERMSIG(status));
  }
  return ChildOutcome::kFailed;
}

/// Recovery into the parent's fresh universe: replay the marked log records
/// into the (pristine, fork-preserved-address) cells they name, in marker
/// order. Returns the recovery stats; also repairs the domain's durable
/// image (PersistentDomain::recover) so image and cells agree afterwards.
inline PersistentDomain::RecoveryStats apply_recovered_cells(PersistentDomain& pd) {
  const PersistentDomain::RecoveryStats stats = pd.recover();
  for (const PersistentDomain::RecoveredTxn& t : pd.recover_log()) {
    for (const PersistentDomain::RecoveredEntry& e : t.entries) {
      reinterpret_cast<TmCell*>(static_cast<std::uintptr_t>(e.addr))->unsafe_store(e.value);
    }
  }
  return stats;
}

/// One named kill point: "<path>.<phase>". `durable_phase()` is true when
/// the commit marker hit the log before the crash — recovery must REPLAY
/// the in-flight transaction; false means it must DISCARD it.
struct KillPoint {
  const char* path;
  const char* phase;
  std::size_t phase_index;

  [[nodiscard]] std::string name() const { return std::string(path) + "." + phase; }
  [[nodiscard]] bool durable_phase() const { return phase_index >= pmem::kFirstDurablePhase; }
  /// after_log is the only phase where the crashed transaction left a
  /// visible-but-unmarked data record for recovery to discard.
  [[nodiscard]] bool leaves_unmarked_record() const { return phase_index == 1; }
};

/// Every kill point of one path, in commit order.
inline std::vector<KillPoint> kill_points_of(const char* path) {
  std::vector<KillPoint> points;
  for (std::size_t i = 0; i < std::size(pmem::kPhases); ++i) {
    points.push_back({path, pmem::kPhases[i], i});
  }
  return points;
}

/// The full sweep: every kill point of every durable commit path.
inline std::vector<KillPoint> all_kill_points() {
  std::vector<KillPoint> points;
  for (const char* path : pmem::kPaths) {
    for (const KillPoint& p : kill_points_of(path)) points.push_back(p);
  }
  return points;
}

}  // namespace rhtm::crash
