#pragma once

// StripeSet — an epoch-stamped exact membership set over stripe indices,
// the deduplication primitive of the commit pipeline. One open-addressed
// probe per insert/contains (O(1) amortized), O(1) clear via an epoch bump
// (no per-transaction table sweep), and an insertion-ordered list of the
// distinct members for iteration.
//
// Three commit-path consumers share it:
//   * ReadSet logs each read stripe exactly once, so the RH1 reduced commit
//     revalidates every stripe once — zipfian/hashtable re-read patterns no
//     longer inflate the hardware commit's footprint with duplicates;
//   * WriteSet maintains the unique write-stripe view the RH1/RH2 hardware
//     commits stamp and the TL2/slow-slow commit locks (sorted);
//   * HybridTm's RH2 mask bookkeeping answers "did I publish a read mask on
//     this stripe?" in O(1) instead of a linear scan.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rhtm {

class StripeSet {
 public:
  explicit StripeSet(std::size_t initial_slots = kInitialSlots)
      : slots_(pow2_at_least(initial_slots)), epochs_(slots_.size(), 0) {}

  /// Forget every member. O(1): bumps the epoch; slots invalidate lazily.
  void clear() {
    items_.clear();
    ++epoch_;
    if (epoch_ == 0) {  // epoch wrapped: hard reset
      std::vector<std::uint32_t>(epochs_.size(), 0).swap(epochs_);
      epoch_ = 1;
    }
  }

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }

  /// Distinct members in first-insertion order.
  [[nodiscard]] const std::vector<std::uint32_t>& items() const { return items_; }

  /// Adds `stripe`; returns true when it was not yet a member.
  bool insert(std::uint32_t stripe) {
    if (items_.size() * 4 >= slots_.size() * 3) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(stripe) & mask;
    while (epochs_[i] == epoch_) {
      if (slots_[i] == stripe) return false;
      i = (i + 1) & mask;
    }
    slots_[i] = stripe;
    epochs_[i] = epoch_;
    items_.push_back(stripe);
    return true;
  }

  [[nodiscard]] bool contains(std::uint32_t stripe) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(stripe) & mask;
    while (epochs_[i] == epoch_) {
      if (slots_[i] == stripe) return true;
      i = (i + 1) & mask;
    }
    return false;
  }

 private:
  static constexpr std::size_t kInitialSlots = 64;

  static std::size_t pow2_at_least(std::size_t n) {
    std::size_t p = 8;
    while (p < n) p *= 2;
    return p;
  }

  static std::size_t hash(std::uint32_t stripe) {
    // Stripe indices are already table-hashed, but adjacent-granule scans
    // produce runs of consecutive indices; multiplicative mixing keeps the
    // probe sequences apart.
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(stripe) + 1) * 0x9e3779b97f4a7c15ull >> 32);
  }

  void grow() {
    const std::size_t n = slots_.size() * 2;
    slots_.assign(n, 0);
    epochs_.assign(n, 0);
    epoch_ = 1;
    const std::size_t mask = n - 1;
    for (const std::uint32_t stripe : items_) {
      std::size_t i = hash(stripe) & mask;
      while (epochs_[i] == epoch_) i = (i + 1) & mask;
      slots_[i] = stripe;
      epochs_[i] = epoch_;
    }
  }

  std::vector<std::uint32_t> items_;
  std::vector<std::uint32_t> slots_;
  std::vector<std::uint32_t> epochs_;
  std::uint32_t epoch_ = 1;
};

}  // namespace rhtm
