#pragma once

// TL2-style redo write-set: append-only entry log with a bloom filter for
// fast negative read-after-write lookups and an open-addressed exact index
// for positive ones. The bloom filter admits false positives (resolved by
// the exact index) but never false negatives — a lookup of a written cell
// always finds its latest value.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cell.h"

namespace rhtm {

struct WriteEntry {
  TmCell* cell;
  TmWord value;
  std::uint32_t stripe;
};

class WriteSet {
 public:
  WriteSet() : slot_cells_(kInitialSlots, nullptr), slot_idx_(kInitialSlots, 0),
               slot_epoch_(kInitialSlots, 0) {}

  void clear() {
    entries_.clear();
    bloom_ = 0;
    ++epoch_;
    if (epoch_ == 0) {
      std::fill(slot_epoch_.begin(), slot_epoch_.end(), 0);
      epoch_ = 1;
    }
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<WriteEntry>& entries() const { return entries_; }
  [[nodiscard]] std::vector<WriteEntry>& entries() { return entries_; }

  /// Insert or overwrite the buffered value for `cell`.
  void put(TmCell& cell, TmWord value, std::uint32_t stripe) {
    const std::uint64_t h = hash(&cell);
    bloom_ |= bloom_bit(h);
    if (entries_.size() * 4 >= slot_cells_.size() * 3) grow();
    const std::size_t mask = slot_cells_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (slot_epoch_[i] == epoch_) {
      if (slot_cells_[i] == &cell) {
        entries_[slot_idx_[i]].value = value;
        return;
      }
      i = (i + 1) & mask;
    }
    slot_cells_[i] = &cell;
    slot_idx_[i] = static_cast<std::uint32_t>(entries_.size());
    slot_epoch_[i] = epoch_;
    entries_.push_back({&cell, value, stripe});
  }

  /// Latest buffered entry for `cell`, or nullptr. The bloom check makes the
  /// common miss (read of an unwritten cell) one AND + branch.
  [[nodiscard]] WriteEntry* find(const TmCell& cell) {
    const std::uint64_t h = hash(&cell);
    if ((bloom_ & bloom_bit(h)) == 0) return nullptr;
    const std::size_t mask = slot_cells_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (slot_epoch_[i] == epoch_) {
      if (slot_cells_[i] == &cell) return &entries_[slot_idx_[i]];
      i = (i + 1) & mask;
    }
    return nullptr;
  }

 private:
  static constexpr std::size_t kInitialSlots = 1024;

  static std::uint64_t hash(const TmCell* cell) {
    return (static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(cell)) >> 3) *
           0x9e3779b97f4a7c15ull >> 13;
  }
  static std::uint64_t bloom_bit(std::uint64_t h) { return std::uint64_t{1} << (h & 63); }

  void grow() {
    const std::size_t n = slot_cells_.size() * 2;
    slot_cells_.assign(n, nullptr);
    slot_idx_.assign(n, 0);
    slot_epoch_.assign(n, 0);
    epoch_ = 1;
    const std::size_t mask = n - 1;
    for (std::size_t e = 0; e < entries_.size(); ++e) {
      std::size_t i = static_cast<std::size_t>(hash(entries_[e].cell)) & mask;
      while (slot_epoch_[i] == epoch_) i = (i + 1) & mask;
      slot_cells_[i] = entries_[e].cell;
      slot_idx_[i] = static_cast<std::uint32_t>(e);
      slot_epoch_[i] = epoch_;
    }
  }

  std::vector<WriteEntry> entries_;
  std::uint64_t bloom_ = 0;
  std::vector<TmCell*> slot_cells_;
  std::vector<std::uint32_t> slot_idx_;
  std::vector<std::uint32_t> slot_epoch_;
  std::uint32_t epoch_ = 1;
};

}  // namespace rhtm
