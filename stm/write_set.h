#pragma once

// TL2-style redo write-set: append-only entry log with a bloom filter for
// fast negative read-after-write lookups and an open-addressed exact index
// for positive ones. The bloom filter admits false positives (resolved by
// the exact index) but never false negatives — a lookup of a written cell
// always finds its latest value.
//
// The filter is *blocked* and *size-adaptive*: an array of epoch-tagged
// 64-bit words (32 filter bits + a 32-bit epoch tag each) that scales with
// the slot table, so it keeps a low false-positive rate at any write-set
// size. Its predecessor was one global 64-bit word, which saturated past
// ~40 distinct cells and silently degraded every read-after-write miss to
// a full probe loop. Each lookup touches exactly one filter word (one
// cache line), and clearing stays O(1) via the epoch tags.
//
// The set also maintains the deduplicated stripe view of the log
// (`write_stripes()` / `wrote_stripe()`): the unique stripes the commit
// paths lock (TL2 / slow-slow, sorted) or stamp (RH1 reduced / RH2
// hardware commits) — each stripe exactly once, however many entries
// share it.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cell.h"
#include "stm/stripe_set.h"

namespace rhtm {

struct WriteEntry {
  TmCell* cell;
  TmWord value;
  std::uint32_t stripe;
};

class WriteSet {
 public:
  WriteSet()
      : bloom_(kInitialSlots / kSlotsPerBloomWord, 0),
        slot_cells_(kInitialSlots, nullptr),
        slot_idx_(kInitialSlots, 0),
        slot_epoch_(kInitialSlots, 0) {}

  void clear() {
    entries_.clear();
    stripes_.clear();
    ++epoch_;
    if (epoch_ == 0) {  // epoch wrapped: hard reset of every lazy tag
      std::fill(slot_epoch_.begin(), slot_epoch_.end(), 0);
      std::fill(bloom_.begin(), bloom_.end(), 0);
      epoch_ = 1;
    }
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<WriteEntry>& entries() const { return entries_; }
  [[nodiscard]] std::vector<WriteEntry>& entries() { return entries_; }

  /// The distinct stripes of the log, in first-write order.
  [[nodiscard]] const std::vector<std::uint32_t>& write_stripes() const {
    return stripes_.items();
  }
  /// O(1): did this write-set touch `stripe`?
  [[nodiscard]] bool wrote_stripe(std::uint32_t stripe) const {
    return stripes_.contains(stripe);
  }

  /// Insert or overwrite the buffered value for `cell`.
  void put(TmCell& cell, TmWord value, std::uint32_t stripe) {
    const std::uint64_t h = hash(&cell);
    if (entries_.size() * 4 >= slot_cells_.size() * 3) grow();
    bloom_set(h);  // after grow(), which rebuilds the filter from entries_
    const std::size_t mask = slot_cells_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (slot_epoch_[i] == epoch_) {
      if (slot_cells_[i] == &cell) {
        entries_[slot_idx_[i]].value = value;
        return;
      }
      i = (i + 1) & mask;
    }
    slot_cells_[i] = &cell;
    slot_idx_[i] = static_cast<std::uint32_t>(entries_.size());
    slot_epoch_[i] = epoch_;
    entries_.push_back({&cell, value, stripe});
    stripes_.insert(stripe);
  }

  /// Latest buffered entry for `cell`, or nullptr. The bloom check makes the
  /// common miss (read of an unwritten cell) one load + AND + branch.
  [[nodiscard]] WriteEntry* find(const TmCell& cell) {
    const std::uint64_t h = hash(&cell);
    if (!may_contain_hash(h)) return nullptr;
    const std::size_t mask = slot_cells_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (slot_epoch_[i] == epoch_) {
      if (slot_cells_[i] == &cell) return &entries_[slot_idx_[i]];
      i = (i + 1) & mask;
    }
    return nullptr;
  }

  /// The bloom verdict alone (no exact-index probe). Exposed so tests can
  /// pin the filter's false-positive rate beyond the old 64-bit saturation
  /// point; false negatives are a correctness bug at any size.
  [[nodiscard]] bool may_contain(const TmCell& cell) const {
    return may_contain_hash(hash(&cell));
  }

 private:
  static constexpr std::size_t kInitialSlots = 1024;
  /// One epoch-tagged 32-bit filter block per 4 slots: at the 3/4-load grow
  /// threshold that is >= ~10 filter bits per distinct cell (2 set), which
  /// keeps the false-positive rate in the low percent at every size.
  static constexpr std::size_t kSlotsPerBloomWord = 4;

  static std::uint64_t hash(const TmCell* cell) {
    return (static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(cell)) >> 3) *
           0x9e3779b97f4a7c15ull >> 13;
  }

  // Filter-word layout: high 32 bits = epoch tag, low 32 = bloom bits. A
  // stale tag reads as an all-zero block, so clear() never sweeps the array.
  [[nodiscard]] std::size_t bloom_word(std::uint64_t h) const {
    return static_cast<std::size_t>(h >> 12) & (bloom_.size() - 1);
  }
  static std::uint32_t bloom_bits(std::uint64_t h) {
    return (std::uint32_t{1} << (h & 31)) | (std::uint32_t{1} << ((h >> 5) & 31));
  }
  void bloom_set(std::uint64_t h) {
    std::uint64_t& w = bloom_[bloom_word(h)];
    if ((w >> 32) != epoch_) w = static_cast<std::uint64_t>(epoch_) << 32;
    w |= bloom_bits(h);
  }
  [[nodiscard]] bool may_contain_hash(std::uint64_t h) const {
    const std::uint64_t w = bloom_[bloom_word(h)];
    const std::uint32_t bits = bloom_bits(h);
    return (w >> 32) == epoch_ && (static_cast<std::uint32_t>(w) & bits) == bits;
  }

  void grow() {
    const std::size_t n = slot_cells_.size() * 2;
    slot_cells_.assign(n, nullptr);
    slot_idx_.assign(n, 0);
    slot_epoch_.assign(n, 0);
    bloom_.assign(n / kSlotsPerBloomWord, 0);
    epoch_ = 1;
    const std::size_t mask = n - 1;
    for (std::size_t e = 0; e < entries_.size(); ++e) {
      const std::uint64_t h = hash(entries_[e].cell);
      bloom_set(h);
      std::size_t i = static_cast<std::size_t>(h) & mask;
      while (slot_epoch_[i] == epoch_) i = (i + 1) & mask;
      slot_cells_[i] = entries_[e].cell;
      slot_idx_[i] = static_cast<std::uint32_t>(e);
      slot_epoch_[i] = epoch_;
    }
  }

  std::vector<WriteEntry> entries_;
  StripeSet stripes_;  ///< deduped stripe view of the log
  std::vector<std::uint64_t> bloom_;
  std::vector<TmCell*> slot_cells_;
  std::vector<std::uint32_t> slot_idx_;
  std::vector<std::uint32_t> slot_epoch_;
  std::uint32_t epoch_ = 1;
};

}  // namespace rhtm
