#pragma once

// TL2-style read-set: the list of stripe indices (plus the version observed
// at read time) a software transaction must revalidate at commit. Reads are
// post-validated at access time, so commit-time validation only has to
// re-check the stripes — it never touches the data words, which is what
// gives the RH1 reduced commit its ~4x capacity headroom over the fast path
// (one stripe word per granule of data).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cell.h"
#include "core/stripe.h"

namespace rhtm {

struct ReadEntry {
  std::uint32_t stripe;
  TmWord version;
};

class ReadSet {
 public:
  void clear() { entries_.clear(); }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<ReadEntry>& entries() const { return entries_; }

  /// Record a validated read of `stripe` at `version`. Consecutive reads of
  /// the same stripe (linear scans) are deduplicated for free.
  void add(std::uint32_t stripe, TmWord version) {
    if (!entries_.empty() && entries_.back().stripe == stripe) return;
    entries_.push_back({stripe, version});
  }

  /// Software revalidation: every read stripe must be unlocked and still at
  /// a version no newer than the transaction's read-version `rv`. A stripe
  /// locked by the committing transaction itself is admitted via
  /// `self_locked(stripe)`.
  template <class SelfLocked>
  [[nodiscard]] bool validate(StripeTable& stripes, TmWord rv, SelfLocked&& self_locked) const {
    for (const ReadEntry& e : entries_) {
      const TmWord w = stripes.word(e.stripe).word.load(std::memory_order_acquire);
      if (StripeTable::is_locked(w) && !self_locked(e.stripe)) return false;
      if (StripeTable::version_of(w) > rv) return false;
    }
    return true;
  }

  [[nodiscard]] bool validate(StripeTable& stripes, TmWord rv) const {
    return validate(stripes, rv, [](std::uint32_t) { return false; });
  }

 private:
  std::vector<ReadEntry> entries_;
};

}  // namespace rhtm
