#pragma once

// TL2-style read-set: the distinct stripe indices a software transaction
// must revalidate at commit. Reads are post-validated at access time, so
// commit-time validation only has to re-check the stripes — it never
// touches the data words, which is what gives the RH1 reduced commit its
// ~4x capacity headroom over the fast path (one stripe word per granule
// of data).
//
// The set is EXACTLY deduplicated (a thin wrapper over StripeSet): each
// read stripe is logged once no matter how often the transaction re-reads
// it, and an entry is just the 4-byte stripe index. Both properties keep
// the reduced hardware commit's footprint proportional to the *distinct*
// stripe count — zipfian/hashtable re-read patterns used to log the same
// hot stripe hundreds of times (and carry a dead observed-version word
// per entry), overflowing the commit transaction's budget with work that
// validates nothing: validate() re-checks the *current* stripe word
// against the transaction's read-version, so only membership matters.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cell.h"
#include "core/stripe.h"
#include "stm/stripe_set.h"

namespace rhtm {

class ReadSet {
 public:
  void clear() { seen_.clear(); }

  [[nodiscard]] bool empty() const { return seen_.empty(); }
  [[nodiscard]] std::size_t size() const { return seen_.size(); }

  /// The distinct read stripes, in first-read order.
  [[nodiscard]] const std::vector<std::uint32_t>& stripes() const { return seen_.items(); }

  /// Record a validated read of `stripe`. Exact dedup: re-reads are free.
  void add(std::uint32_t stripe) { seen_.insert(stripe); }

  /// Software revalidation: every read stripe must be unlocked and still at
  /// a version no newer than the transaction's read-version `rv`. A stripe
  /// locked by the committing transaction itself is admitted via
  /// `self_locked(stripe)`. Entries are distinct, so each stripe word is
  /// visited exactly once.
  template <class SelfLocked>
  [[nodiscard]] bool validate(StripeTable& stripes, TmWord rv, SelfLocked&& self_locked) const {
    for (const std::uint32_t s : seen_.items()) {
      const TmWord w = stripes.word(s).word.load(std::memory_order_acquire);
      if (StripeTable::is_locked(w) && !self_locked(s)) return false;
      if (StripeTable::version_of(w) > rv) return false;
    }
    return true;
  }

  [[nodiscard]] bool validate(StripeTable& stripes, TmWord rv) const {
    return validate(stripes, rv, [](std::uint32_t) { return false; });
  }

 private:
  StripeSet seen_;
};

}  // namespace rhtm
