#pragma once

// xoshiro256** — the per-thread PRNG used by the drivers, the workloads and
// the protocols' internal coin flips (abort injection, mixed-mode retry).
// Deterministic per seed; no global state.

#include <cstdint>

namespace rhtm {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 expansion of the seed into the four state words.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t below(std::uint64_t bound) { return bound != 0 ? next_u64() % bound : 0; }

  /// True with probability percent/100.
  bool percent_chance(unsigned percent) { return below(100) < percent; }

  /// True with probability bp/10000 (basis points).
  bool chance_bp(std::uint32_t bp) { return below(10000) < bp; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace rhtm
