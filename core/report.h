#pragma once

// Machine-readable bench reporting: the data model every scenario fills and
// the emitter that renders it twice — once as the paper-style human table
// and once as `BENCH_<scenario>.json` so CI can diff runs and accumulate a
// performance trajectory. Both renderings read the *same* stored points, so
// the printed table and the JSON can never disagree.
//
// JSON schema (documented field-by-field in docs/BENCHMARKS.md):
//
//   {
//     "schema": "rhtm-bench-report/v1",
//     "scenario": "fig1_rbtree",
//     "substrate": "emul" | "sim" | "mixed",
//     "seconds": 0.01,                  // per-point measurement time
//     "wall_seconds": 1.23,             // whole-scenario wall clock
//     "meta": { "workload": "...", ... },
//     "tables": [
//       {
//         "title": "...",
//         "style": "sweep" | "wide",
//         "x": "threads",
//         "primary_metric": "total_ops",
//         "series": [
//           { "name": "HTM",
//             "points": [ { "x": 1, "metrics": { "total_ops": 123, ... } } ] }
//         ]
//       }
//     ]
//   }
//
// Metric values are doubles; integral values (total_ops, commit counts)
// serialize without a decimal point, so per-thread totals in the JSON are
// bit-identical to the printed table.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rhtm::report {

inline constexpr const char* kSchemaId = "rhtm-bench-report/v1";

// ------------------------------------------------------------------- JSON --

/// Appends `s` to `out` as a JSON string literal (quotes included).
inline void json_escape(std::string& out, std::string_view s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

/// Appends `v` as a JSON number: integral values print exactly (no decimal
/// point), everything else with enough digits to round-trip a double.
/// Non-finite values (which JSON cannot carry) degrade to 0.
inline void json_number(std::string& out, double v) {
  char buf[40];
  if (!std::isfinite(v)) {
    out += '0';
    return;
  }
  if (v == std::floor(v) && std::fabs(v) <= 9.0e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

// ------------------------------------------------------------- data model --

/// One named measurement attached to a point (total_ops, abort_ratio, ...).
struct Metric {
  std::string name;
  double value = 0;
};

/// One measured point of one series: an x-axis value plus its metrics.
/// `socket` is the per-socket sweep geometry (the NUMA scenario's
/// socket-sliced thread sweeps): -1 (the default) means "not a per-socket
/// point" and emits no JSON field at all, keeping the schema
/// byte-compatible for every other scenario.
struct Point {
  double x = 0;
  int socket = -1;
  std::vector<Metric> metrics;

  Point& set(std::string name, double value) {
    for (Metric& m : metrics) {
      if (m.name == name) {
        m.value = value;
        return *this;
      }
    }
    metrics.push_back({std::move(name), value});
    return *this;
  }

  [[nodiscard]] const double* find(std::string_view name) const {
    for (const Metric& m : metrics) {
      if (m.name == name) return &m.value;
    }
    return nullptr;
  }
};

struct SeriesData {
  std::string name;
  std::vector<Point> points;

  Point& add_point(double x) {
    points.emplace_back();
    points.back().x = x;
    return points.back();
  }
};

/// How the human rendering lays the table out. The JSON is identical.
enum class TableStyle {
  kSweep,  ///< rows = x values, one column per series, cell = primary metric
  kWide,   ///< one row per (series, point), one column per metric
};

struct TableData {
  std::string title;
  std::string x_name = "threads";
  std::string primary_metric = "total_ops";
  TableStyle style = TableStyle::kSweep;
  // Deque, not vector: scenarios hold the SeriesData& returned by
  // add_series while registering further series, so references must
  // survive growth. (Point& from add_point is NOT stable across the next
  // add_point on the same series — fill each point before adding another.)
  std::deque<SeriesData> series;

  SeriesData& add_series(std::string name) {
    series.push_back({std::move(name), {}});
    return series.back();
  }

  [[nodiscard]] const SeriesData* find_series(std::string_view name) const {
    for (const SeriesData& s : series) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

  void print() const {
    if (style == TableStyle::kSweep) {
      print_sweep();
    } else {
      print_wide();
    }
  }

 private:
  /// The paper-style matrix: primary metric per (x, series), plus the abort
  /// ratios as a trailing comment block when the points carry them.
  void print_sweep() const {
    std::printf("# %s\n", title.c_str());
    std::printf("%-8s", x_name.c_str());
    for (const SeriesData& s : series) std::printf(" %14s", s.name.c_str());
    std::printf("\n");
    std::size_t rows = 0;
    for (const SeriesData& s : series) rows = rows > s.points.size() ? rows : s.points.size();
    for (std::size_t row = 0; row < rows; ++row) {
      double x = 0;
      for (const SeriesData& s : series) {
        if (row < s.points.size()) {
          x = s.points[row].x;
          break;
        }
      }
      print_axis_value(x);
      for (const SeriesData& s : series) {
        if (row < s.points.size()) {
          const double* v = s.points[row].find(primary_metric);
          print_cell(v != nullptr ? *v : 0.0);
        }
      }
      std::printf("\n");
    }
    bool any_abort_ratio = false;
    for (const SeriesData& s : series) {
      for (const Point& p : s.points) {
        if (p.find("abort_ratio") != nullptr) any_abort_ratio = true;
      }
    }
    if (any_abort_ratio) {
      std::printf("# abort ratios:\n");
      for (const SeriesData& s : series) {
        std::printf("#   %-14s", s.name.c_str());
        for (const Point& p : s.points) {
          const double* r = p.find("abort_ratio");
          std::printf(" %5.2f", r != nullptr ? *r : 0.0);
        }
        std::printf("\n");
      }
    }
  }

  /// One row per (series, point); columns = the union of metric names in
  /// first-seen order. Used by the breakdown/ablation/micro scenarios.
  void print_wide() const {
    std::printf("# %s\n", title.c_str());
    std::vector<std::string> columns;
    for (const SeriesData& s : series) {
      for (const Point& p : s.points) {
        for (const Metric& m : p.metrics) {
          bool seen = false;
          for (const std::string& c : columns) {
            if (c == m.name) seen = true;
          }
          if (!seen) columns.push_back(m.name);
        }
      }
    }
    std::printf("%-16s %-10s", "series", x_name.c_str());
    for (const std::string& c : columns) std::printf(" %14s", c.c_str());
    std::printf("\n");
    for (const SeriesData& s : series) {
      for (const Point& p : s.points) {
        std::printf("%-16s", s.name.c_str());
        print_axis_value(p.x, 10);
        for (const std::string& c : columns) {
          const double* v = p.find(c);
          print_cell(v != nullptr ? *v : 0.0);
        }
        std::printf("\n");
      }
    }
  }

  static void print_axis_value(double x, int width = 8) {
    if (x == std::floor(x)) {
      std::printf("%-*lld", width, static_cast<long long>(x));
    } else {
      std::printf("%-*.3g", width, x);
    }
  }

  static void print_cell(double v) {
    if (v == std::floor(v) && std::fabs(v) <= 9.0e15) {
      std::printf(" %14lld", static_cast<long long>(v));
    } else {
      std::printf(" %14.3f", v);
    }
  }
};

struct BenchReport {
  std::string scenario;
  std::string substrate;  ///< "emul", "sim", or "mixed" (scenario-pinned parts)
  double seconds = 0;     ///< per-point measurement time the run used
  double wall_seconds = 0;  ///< filled by the registry runner
  std::vector<std::pair<std::string, std::string>> meta;
  std::deque<TableData> tables;  ///< deque: add_table references stay valid
  /// Interval snapshots from the metrics sampler (core/timeseries.h):
  /// x = seconds since sampling started, metrics = per-interval rates and
  /// cumulative totals. Empty (the default, --timeline off) emits no JSON
  /// field at all, so the schema stays byte-compatible with older readers.
  std::vector<Point> timeline;

  TableData& add_table(std::string title, TableStyle style = TableStyle::kSweep,
                       std::string x_name = "threads",
                       std::string primary_metric = "total_ops") {
    tables.emplace_back();
    TableData& t = tables.back();
    t.title = std::move(title);
    t.style = style;
    t.x_name = std::move(x_name);
    t.primary_metric = std::move(primary_metric);
    return t;
  }

  void set_meta(std::string key, std::string value) {
    for (auto& [k, v] : meta) {
      if (k == key) {
        v = std::move(value);
        return;
      }
    }
    meta.emplace_back(std::move(key), std::move(value));
  }

  void print() const {
    for (std::size_t i = 0; i < tables.size(); ++i) {
      if (i != 0) std::printf("\n");
      tables[i].print();
    }
  }

  [[nodiscard]] std::string to_json() const {
    std::string out;
    out.reserve(4096);
    out += "{\n  \"schema\": ";
    json_escape(out, kSchemaId);
    out += ",\n  \"scenario\": ";
    json_escape(out, scenario);
    out += ",\n  \"substrate\": ";
    json_escape(out, substrate);
    out += ",\n  \"seconds\": ";
    json_number(out, seconds);
    out += ",\n  \"wall_seconds\": ";
    json_number(out, wall_seconds);
    out += ",\n  \"meta\": {";
    for (std::size_t i = 0; i < meta.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "    ";
      json_escape(out, meta[i].first);
      out += ": ";
      json_escape(out, meta[i].second);
    }
    out += meta.empty() ? "},\n" : "\n  },\n";
    if (!timeline.empty()) {
      out += "  \"timeline\": [";
      for (std::size_t p = 0; p < timeline.size(); ++p) {
        const Point& point = timeline[p];
        out += p == 0 ? "\n" : ",\n";
        out += "    { \"t\": ";
        json_number(out, point.x);
        out += ", \"metrics\": {";
        for (std::size_t m = 0; m < point.metrics.size(); ++m) {
          out += m == 0 ? " " : ", ";
          json_escape(out, point.metrics[m].name);
          out += ": ";
          json_number(out, point.metrics[m].value);
        }
        out += " } }";
      }
      out += "\n  ],\n";
    }
    out += "  \"tables\": [";
    for (std::size_t t = 0; t < tables.size(); ++t) {
      const TableData& table = tables[t];
      out += t == 0 ? "\n" : ",\n";
      out += "    {\n      \"title\": ";
      json_escape(out, table.title);
      out += ",\n      \"style\": ";
      json_escape(out, table.style == TableStyle::kSweep ? "sweep" : "wide");
      out += ",\n      \"x\": ";
      json_escape(out, table.x_name);
      out += ",\n      \"primary_metric\": ";
      json_escape(out, table.primary_metric);
      out += ",\n      \"series\": [";
      for (std::size_t s = 0; s < table.series.size(); ++s) {
        const SeriesData& series = table.series[s];
        out += s == 0 ? "\n" : ",\n";
        out += "        { \"name\": ";
        json_escape(out, series.name);
        out += ", \"points\": [";
        for (std::size_t p = 0; p < series.points.size(); ++p) {
          const Point& point = series.points[p];
          out += p == 0 ? "\n" : ",\n";
          out += "          { \"x\": ";
          json_number(out, point.x);
          if (point.socket >= 0) {
            out += ", \"socket\": ";
            json_number(out, point.socket);
          }
          out += ", \"metrics\": {";
          for (std::size_t m = 0; m < point.metrics.size(); ++m) {
            out += m == 0 ? " " : ", ";
            json_escape(out, point.metrics[m].name);
            out += ": ";
            json_number(out, point.metrics[m].value);
          }
          out += " } }";
        }
        out += series.points.empty() ? "] }" : "\n        ] }";
      }
      out += table.series.empty() ? "]\n    }" : "\n      ]\n    }";
    }
    out += tables.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
  }

  /// Writes `<dir>/BENCH_<scenario>.json`; returns the path, or "" on error.
  [[nodiscard]] std::string write_json(const std::string& dir) const {
    const std::string path =
        (dir.empty() ? std::string(".") : dir) + "/BENCH_" + scenario + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return "";
    const std::string body = to_json();
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    return ok ? path : "";
  }
};

}  // namespace rhtm::report
