#pragma once

// Transaction event tracing — the flight recorder behind --trace.
//
// Every protocol ThreadCtx may carry a TraceRing*: a PER-THREAD, fixed-
// capacity (power-of-two) ring of TSC-timestamped 16-byte events recording
// the full transaction lifecycle — begin, hardware attempt, abort with its
// AbortCause, tier escalation (fast -> RH1-slow -> RH2 -> slow-slow),
// ContentionManager decisions (adaptive software-mode enter/exit and the
// periodic hardware re-probe), the durable commit phases (log/mark/apply),
// and commit with the tier that finally won.
//
// Design constraints, in order:
//
//  * Disabled must be free. A universe without a tracer hands every
//    ThreadCtx a null ring, and every emission site is one inlined
//    `if (ring != nullptr)` — a never-taken, perfectly predicted branch
//    (bench/micro_barriers.cpp carries the overhead series that pins this).
//  * Enabled must not synchronize. Each ring has exactly one producer (the
//    owning thread); recording is a TSC read plus one 16-byte store and a
//    release bump of the head. No locks, no CAS, no false sharing with
//    other rings (each ring owns its buffer).
//  * Wrap must be exact. The ring keeps the LAST `capacity` events; the
//    monotone head counts every emit ever, so dropped() == head - capacity
//    is exact-by-construction accounting, not a sampled estimate.
//
// The Tracer is the per-run registry: rings are acquired (one per
// ThreadCtx; a thread that builds N contexts over a traced run owns N
// rings, each a separate track in the export) and stay owned by the Tracer
// so the export can walk them after the workers have joined. Reading a
// ring concurrently with its producer (the flight-recorder anomaly dump)
// is best-effort by design: the release/acquire head handshake makes every
// event below the observed head fully written.
//
// core/trace_export.h renders a Tracer as Chrome trace-event JSON
// (Perfetto-loadable); scripts/trace_summary.py validates and attributes.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/stats.h"

namespace rhtm::trace {

/// What happened. The 8-bit payload `a` is an AbortCause for kAbort, an
/// ExecPath for kHwAttempt / kEscalate / kCommit, and unused otherwise.
enum class EventKind : std::uint8_t {
  kTxBegin = 1,   ///< atomically() entered; arms the duration baseline
  kHwAttempt,     ///< one hardware attempt starts (a = ExecPath, arg = attempt #)
  kAbort,         ///< an attempt died (a = AbortCause, arg = cycles since begin)
  kEscalate,      ///< the transaction moved down a tier (a = ExecPath entered)
  kFallbackLock,  ///< non-speculative lock fallback taken (HtmOnly / TATAS / StdHyTM)
  kCommit,        ///< the transaction committed (a = ExecPath tier, arg = cycles since begin)
  kSwModeEnter,   ///< adaptive CM: failure streak crossed sw_streak, hardware off
  kSwModeExit,    ///< adaptive CM: a hardware probe committed, hardware back on
  kSwModeProbe,   ///< adaptive CM: this transaction re-probes hardware
  kDurLog,        ///< durable commit phase 1 done (arg = cycles in phase)
  kDurMark,       ///< durable commit phase 2 done — the durability point
  kDurApply,      ///< durable commit phase 3 done
  kClockPublish,  ///< cached clock: one cross-socket write of the global cell
};

/// Snake-case event names: the JSON export's and the tests' vocabulary.
[[nodiscard]] inline const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kTxBegin: return "tx_begin";
    case EventKind::kHwAttempt: return "hw_attempt";
    case EventKind::kAbort: return "abort";
    case EventKind::kEscalate: return "escalate";
    case EventKind::kFallbackLock: return "fallback_lock";
    case EventKind::kCommit: return "commit";
    case EventKind::kSwModeEnter: return "sw_enter";
    case EventKind::kSwModeExit: return "sw_exit";
    case EventKind::kSwModeProbe: return "sw_probe";
    case EventKind::kDurLog: return "dur_log";
    case EventKind::kDurMark: return "dur_mark";
    case EventKind::kDurApply: return "dur_apply";
    case EventKind::kClockPublish: return "clock_publish";
  }
  return "?";
}

/// One recorded event. Exactly 16 bytes so a default ring is cache-friendly
/// and capacity maths stay trivial.
struct Event {
  std::uint64_t tsc = 0;   ///< rdtsc() at emission
  std::uint32_t arg = 0;   ///< kind-specific payload (cycles, attempt #)
  std::uint8_t kind = 0;   ///< EventKind
  std::uint8_t a = 0;      ///< AbortCause / ExecPath payload
  std::uint16_t ring = 0;  ///< owning ring id (redundant but makes merges self-describing)

  [[nodiscard]] EventKind event_kind() const { return static_cast<EventKind>(kind); }
};
static_assert(sizeof(Event) == 16, "trace events are exactly 16 bytes");

/// Single-producer flight-recorder ring. The owning thread emits; anyone
/// may read events below the acquired head after (or best-effort during)
/// the run.
class TraceRing {
 public:
  TraceRing(std::size_t capacity_pow2, std::uint16_t id)
      : buf_(capacity_pow2), mask_(capacity_pow2 - 1), id_(id) {}

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Records one event. Producer-thread only.
  void emit(EventKind k, std::uint8_t a = 0, std::uint32_t arg = 0) {
    emit_at(rdtsc(), k, a, arg);
  }

  /// Transaction start: records kTxBegin and arms the cycles-since-begin
  /// baseline the abort/commit events carry (so a commit whose begin event
  /// was wrapped away still reconstructs its exact duration).
  void tx_begin() {
    begin_tsc_ = rdtsc();
    emit_at(begin_tsc_, EventKind::kTxBegin, 0, 0);
  }

  /// Cycles since the last tx_begin(), saturated to 32 bits (a transaction
  /// longer than ~1 s at 4 GHz caps; slices that long are off-scale anyway).
  [[nodiscard]] std::uint32_t cycles_since_begin() const {
    const std::uint64_t d = rdtsc() - begin_tsc_;
    return d > 0xffffffffull ? 0xffffffffu : static_cast<std::uint32_t>(d);
  }

  [[nodiscard]] std::uint16_t id() const { return id_; }
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }
  /// Total events ever emitted (monotone, never wraps in practice).
  [[nodiscard]] std::uint64_t total() const {
    return head_.load(std::memory_order_acquire);
  }
  /// Events still resident (== min(total, capacity)).
  [[nodiscard]] std::size_t size() const {
    const std::uint64_t h = total();
    return h < capacity() ? static_cast<std::size_t>(h) : capacity();
  }
  /// Events overwritten by wrap — exact: total() - size().
  [[nodiscard]] std::uint64_t dropped() const {
    const std::uint64_t h = total();
    return h > capacity() ? h - capacity() : 0;
  }

  /// The i-th resident event, OLDEST first (i in [0, size())).
  [[nodiscard]] const Event& event(std::size_t i) const {
    const std::uint64_t h = total();
    const std::uint64_t first = h > capacity() ? h - capacity() : 0;
    return buf_[(first + i) & mask_];
  }

 private:
  void emit_at(std::uint64_t tsc, EventKind k, std::uint8_t a, std::uint32_t arg) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    Event& e = buf_[h & mask_];
    e.tsc = tsc;
    e.arg = arg;
    e.kind = static_cast<std::uint8_t>(k);
    e.a = a;
    e.ring = id_;
    // Release-publish the slot: a concurrent best-effort reader (the
    // anomaly flight dump) that acquires the head sees fully-written
    // events below it.
    head_.store(h + 1, std::memory_order_release);
  }

  std::vector<Event> buf_;
  const std::size_t mask_;
  const std::uint16_t id_;
  std::uint64_t begin_tsc_ = 0;
  std::atomic<std::uint64_t> head_{0};
};

struct TracerConfig {
  std::size_t ring_capacity = std::size_t{1} << 14;  ///< events per ring (rounded to pow2)
  std::size_t max_rings = 4096;  ///< registration ceiling; beyond it contexts run untraced
};

/// The per-run trace registry: owns every ring, plus the TSC->wall-clock
/// calibration anchor the exporter converts timestamps with.
class Tracer {
 public:
  explicit Tracer(TracerConfig cfg = {}) : cfg_(cfg) {
    std::size_t cap = 16;
    while (cap < cfg_.ring_capacity) cap <<= 1;
    cfg_.ring_capacity = cap;
    tsc0_ = rdtsc();
    wall0_ = std::chrono::steady_clock::now();
  }

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Registers a new ring (one per protocol ThreadCtx). Returns nullptr —
  /// context runs untraced — once max_rings registrations exist; the denial
  /// is counted so the export can say coverage was capped.
  [[nodiscard]] TraceRing* acquire_ring() {
    const std::lock_guard<std::mutex> lk(mu_);
    if (rings_.size() >= cfg_.max_rings) {
      ++denied_;
      return nullptr;
    }
    rings_.push_back(std::make_unique<TraceRing>(
        cfg_.ring_capacity, static_cast<std::uint16_t>(rings_.size())));
    return rings_.back().get();
  }

  template <class Fn>
  void for_each_ring(Fn&& fn) const {
    const std::lock_guard<std::mutex> lk(mu_);
    for (const auto& r : rings_) fn(*r);
  }

  [[nodiscard]] std::size_t ring_count() const {
    const std::lock_guard<std::mutex> lk(mu_);
    return rings_.size();
  }
  [[nodiscard]] std::uint64_t denied_rings() const {
    const std::lock_guard<std::mutex> lk(mu_);
    return denied_;
  }
  [[nodiscard]] std::uint64_t total_events() const {
    std::uint64_t n = 0;
    for_each_ring([&](const TraceRing& r) { n += r.total(); });
    return n;
  }
  [[nodiscard]] std::uint64_t total_dropped() const {
    std::uint64_t n = 0;
    for_each_ring([&](const TraceRing& r) { n += r.dropped(); });
    return n;
  }

  /// Every resident event across every ring, merged into one timeline
  /// sorted by TSC (stable, so each ring's own order is preserved among
  /// equal stamps). The cross-thread view the invariant tests and the
  /// summary tooling reason over.
  [[nodiscard]] std::vector<Event> merged_events() const {
    std::vector<Event> all;
    for_each_ring([&](const TraceRing& r) {
      for (std::size_t i = 0; i < r.size(); ++i) all.push_back(r.event(i));
    });
    std::stable_sort(all.begin(), all.end(),
                     [](const Event& x, const Event& y) { return x.tsc < y.tsc; });
    return all;
  }

  [[nodiscard]] std::uint64_t tsc0() const { return tsc0_; }

  /// TSC ticks per second, measured against the anchor taken at
  /// construction. If almost no wall time has passed (a unit test), spins
  /// out a ~2 ms baseline first so the rate is never a division by noise.
  [[nodiscard]] double tsc_hz() const {
    for (;;) {
      const double dt = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall0_)
                            .count();
      if (dt >= 0.002) return static_cast<double>(rdtsc() - tsc0_) / dt;
      detail::cpu_relax();
    }
  }

  [[nodiscard]] const TracerConfig& config() const { return cfg_; }

 private:
  TracerConfig cfg_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::uint64_t denied_ = 0;
  std::uint64_t tsc0_ = 0;
  std::chrono::steady_clock::time_point wall0_;
};

// ------------------------------------------------------- emission helpers --
// THE disabled-path contract: each helper is one inlined null check. Every
// protocol emission site calls one of these with its ThreadCtx's ring.

inline void tx_begin(TraceRing* r) {
  if (r != nullptr) r->tx_begin();
}
inline void attempt(TraceRing* r, ExecPath p, std::uint32_t n = 0) {
  if (r != nullptr) r->emit(EventKind::kHwAttempt, static_cast<std::uint8_t>(p), n);
}
inline void abort(TraceRing* r, AbortCause c) {
  if (r != nullptr) {
    r->emit(EventKind::kAbort, static_cast<std::uint8_t>(c), r->cycles_since_begin());
  }
}
inline void escalate(TraceRing* r, ExecPath to) {
  if (r != nullptr) r->emit(EventKind::kEscalate, static_cast<std::uint8_t>(to));
}
inline void fallback_lock(TraceRing* r) {
  if (r != nullptr) r->emit(EventKind::kFallbackLock);
}
inline void commit(TraceRing* r, ExecPath tier) {
  if (r != nullptr) {
    r->emit(EventKind::kCommit, static_cast<std::uint8_t>(tier),
            r->cycles_since_begin());
  }
}
inline void cm_event(TraceRing* r, EventKind k) {
  if (r != nullptr) r->emit(k);
}
/// Cached-clock mode: a cross-socket publish of the global clock cell
/// (emitted at the on_abort progress bump — the mode's only global write).
inline void clock_publish(TraceRing* r) {
  if (r != nullptr) r->emit(EventKind::kClockPublish);
}
/// One durable phase completed; call with the phase's own rdtsc span.
inline void durable_phase(TraceRing* r, EventKind k, std::uint64_t cycles) {
  if (r != nullptr) {
    r->emit(k, 0,
            cycles > 0xffffffffull ? 0xffffffffu : static_cast<std::uint32_t>(cycles));
  }
}

// ---------------------------------------------------------- anomaly hook --
// Flight-recorder dump trigger: pmem kill points and the sticky redo-log
// overflow call anomaly(reason); the bench driver (run_all) installs a hook
// that snapshots the live trace to disk before the process dies / the run
// degrades. A plain function pointer so arming is one atomic store and the
// disarmed path is one load.

using AnomalyFn = void (*)(const char* reason);
inline std::atomic<AnomalyFn> g_anomaly_hook{nullptr};

inline void set_anomaly_hook(AnomalyFn fn) {
  g_anomaly_hook.store(fn, std::memory_order_release);
}

inline void anomaly(const char* reason) {
  if (const AnomalyFn fn = g_anomaly_hook.load(std::memory_order_acquire)) fn(reason);
}

}  // namespace rhtm::trace
