#pragma once

// Chrome trace-event JSON export for core/trace.h — the file --trace writes
// and Perfetto (ui.perfetto.dev) / chrome://tracing load directly.
//
// Mapping:
//  * one track per TraceRing (pid 1, tid = ring id, a thread_name metadata
//    record naming it and carrying its exact dropped-event count);
//  * every committed transaction is a DURATION slice ("ph":"X") named
//    "tx:<tier>" — the slice duration comes from the commit event's own
//    cycles-since-begin payload, so it is exact even when the matching
//    tx_begin event was wrapped out of the ring;
//  * durable commit phases are "dur:log/mark/apply" slices the same way;
//  * aborts, tier escalations, lock fallbacks and ContentionManager
//    software-mode decisions are INSTANT events ("ph":"i", thread scope):
//    "abort:<cause>", "esc:<path>", "fallback_lock", "cm:sw_enter",
//    "cm:sw_exit", "cm:sw_probe";
//  * hardware attempts are instant "attempt:<path>" events (category
//    "attempt" — toggle the category off in Perfetto if they are noise).
//
// Timestamps are microseconds relative to the Tracer's construction,
// converted with the tracer's measured TSC rate. "otherData" carries the
// run-level accounting (rings, events, exact drops, denied registrations,
// tsc_hz) that scripts/trace_summary.py validates.

#include <cstdio>
#include <string>

#include "core/report.h"
#include "core/trace.h"

namespace rhtm::trace {

inline constexpr const char* kTraceSchemaId = "rhtm-trace/v1";

namespace detail_export {

inline void begin_event(std::string& out, bool& first, std::uint16_t tid,
                        const char* ph, double ts_us) {
  out += first ? "\n  " : ",\n  ";
  first = false;
  out += "{\"pid\":1,\"tid\":";
  out += std::to_string(tid);
  out += ",\"ph\":\"";
  out += ph;
  out += "\",\"ts\":";
  report::json_number(out, ts_us < 0 ? 0.0 : ts_us);
}

inline void name_cat(std::string& out, const std::string& name, const char* cat) {
  out += ",\"name\":";
  report::json_escape(out, name);
  out += ",\"cat\":\"";
  out += cat;
  out += "\"";
}

}  // namespace detail_export

/// Renders the whole tracer as one Chrome trace-event JSON document.
[[nodiscard]] inline std::string chrome_json(const Tracer& tracer) {
  const double hz = tracer.tsc_hz();
  const std::uint64_t tsc0 = tracer.tsc0();
  const auto us_of = [&](std::uint64_t tsc) {
    return static_cast<double>(tsc - tsc0) / hz * 1e6;
  };
  const auto cycles_us = [&](std::uint32_t cycles) {
    return static_cast<double>(cycles) / hz * 1e6;
  };

  std::string out;
  out.reserve(1 << 16);
  out += "{\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{\"schema\":\"";
  out += kTraceSchemaId;
  out += "\",\"rings\":";
  out += std::to_string(tracer.ring_count());
  out += ",\"events\":";
  out += std::to_string(tracer.total_events());
  out += ",\"dropped\":";
  out += std::to_string(tracer.total_dropped());
  out += ",\"denied_rings\":";
  out += std::to_string(tracer.denied_rings());
  out += ",\"tsc_hz\":";
  report::json_number(out, hz);
  out += "},\n\"traceEvents\":[";

  bool first = true;
  {  // process + per-ring track metadata
    out += first ? "\n  " : ",\n  ";
    first = false;
    out += "{\"pid\":1,\"tid\":0,\"ph\":\"M\",\"name\":\"process_name\","
           "\"args\":{\"name\":\"rhtm\"}}";
  }
  tracer.for_each_ring([&](const TraceRing& r) {
    out += ",\n  {\"pid\":1,\"tid\":";
    out += std::to_string(r.id());
    out += ",\"ph\":\"M\",\"name\":\"thread_name\",\"args\":{\"name\":";
    report::json_escape(out, "ctx" + std::to_string(r.id()) + " (dropped=" +
                                 std::to_string(r.dropped()) + ")");
    out += "}}";
  });

  tracer.for_each_ring([&](const TraceRing& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      const Event& e = r.event(i);
      const double ts = us_of(e.tsc);
      switch (e.event_kind()) {
        case EventKind::kTxBegin:
          break;  // encoded in the commit slice's start
        case EventKind::kCommit: {
          const double dur = cycles_us(e.arg);
          const char* tier = to_string(static_cast<ExecPath>(e.a));
          detail_export::begin_event(out, first, r.id(), "X", ts - dur);
          out += ",\"dur\":";
          report::json_number(out, dur);
          detail_export::name_cat(out, std::string("tx:") + tier, "tx");
          out += ",\"args\":{\"tier\":\"";
          out += tier;
          out += "\"}}";
          break;
        }
        case EventKind::kDurLog:
        case EventKind::kDurMark:
        case EventKind::kDurApply: {
          const double dur = cycles_us(e.arg);
          const char* phase = e.event_kind() == EventKind::kDurLog    ? "log"
                              : e.event_kind() == EventKind::kDurMark ? "mark"
                                                                      : "apply";
          detail_export::begin_event(out, first, r.id(), "X", ts - dur);
          out += ",\"dur\":";
          report::json_number(out, dur);
          detail_export::name_cat(out, std::string("dur:") + phase, "durable");
          out += "}";
          break;
        }
        case EventKind::kAbort: {
          detail_export::begin_event(out, first, r.id(), "i", ts);
          detail_export::name_cat(
              out, std::string("abort:") + to_string(static_cast<AbortCause>(e.a)),
              "abort");
          out += ",\"s\":\"t\"}";
          break;
        }
        case EventKind::kHwAttempt: {
          detail_export::begin_event(out, first, r.id(), "i", ts);
          detail_export::name_cat(
              out, std::string("attempt:") + to_string(static_cast<ExecPath>(e.a)),
              "attempt");
          out += ",\"s\":\"t\"}";
          break;
        }
        case EventKind::kEscalate: {
          detail_export::begin_event(out, first, r.id(), "i", ts);
          detail_export::name_cat(
              out, std::string("esc:") + to_string(static_cast<ExecPath>(e.a)),
              "escalate");
          out += ",\"s\":\"t\"}";
          break;
        }
        case EventKind::kFallbackLock: {
          detail_export::begin_event(out, first, r.id(), "i", ts);
          detail_export::name_cat(out, "fallback_lock", "escalate");
          out += ",\"s\":\"t\"}";
          break;
        }
        case EventKind::kClockPublish: {
          detail_export::begin_event(out, first, r.id(), "i", ts);
          detail_export::name_cat(out, "clock_publish", "clock");
          out += ",\"s\":\"t\"}";
          break;
        }
        case EventKind::kSwModeEnter:
        case EventKind::kSwModeExit:
        case EventKind::kSwModeProbe: {
          detail_export::begin_event(out, first, r.id(), "i", ts);
          detail_export::name_cat(out, std::string("cm:") + to_string(e.event_kind()),
                                  "cm");
          out += ",\"s\":\"t\"}";
          break;
        }
      }
    }
  });

  out += "\n]\n}\n";
  return out;
}

/// Writes chrome_json() to `path`. Returns true on success.
inline bool write_chrome_json(const Tracer& tracer, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = chrome_json(tracer);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace rhtm::trace
