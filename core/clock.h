#pragma once

// Global version clock (paper §2.2). The counter lives in a TmCell so that
// hardware transactions can read (and, under GV1/GV4, advance) it inside
// their speculation window — which is exactly what makes the clock policy
// measurable: a policy that writes the clock makes every overlapping pair of
// hardware transactions conflict on the clock line.
//
// NUMA cached mode (UniverseConfig::numa = shard+clock): GV6-style lazy
// propagation across sockets. Each socket owns a padded cache cell that is a
// LAGGING REPLICA of the global cell — the invariant `cache <= global` is
// what keeps the scheme sound: a reader's rv comes from its home cache, so
// rv can only be stale-LOW, which manufactures extra validation aborts but
// never admits a concurrent committer's stamps into a snapshot. Writers
// never advance the global clock at commit (next() = global + 1 with no
// store, exactly GV6); they refresh their HOME cache from the global after
// committing (publish_home). The global advances only on a reader's
// validation failure (on_abort) — i.e. cross-socket clock traffic is paid
// only when cross-socket data flow actually happened, which is the
// clock_publishes_per_commit metric the numa scenario reports. The scheme
// self-regulates like GV6: stamps sit at global+1, so the first same-epoch
// reader of fresh data aborts once, bumps the global, and every socket's
// cache catches up through subsequent refreshes.

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/cell.h"
#include "core/topology.h"

namespace rhtm {

enum class GvMode : int {
  kGv1 = 0,  ///< fetch-add on every next(): precise, maximal clock traffic
  kGv4 = 1,  ///< one CAS per racing batch; losers adopt the winner's value
  kGv6 = 2,  ///< next() never writes; aborting readers advance the clock
};

[[nodiscard]] inline const char* to_string(GvMode m) {
  switch (m) {
    case GvMode::kGv1: return "GV1";
    case GvMode::kGv4: return "GV4";
    case GvMode::kGv6: return "GV6";
  }
  return "?";
}

class GlobalVersionClock {
 public:
  explicit GlobalVersionClock(GvMode mode = GvMode::kGv1) : mode_(mode) {}

  /// Cached (NUMA shard+clock) construction: one lagging replica cell per
  /// socket of `topo`. Null topology degrades to the plain clock.
  GlobalVersionClock(GvMode mode, const Topology* topo) : mode_(mode), topo_(topo) {
    if (topo_ != nullptr) {
      caches_ = std::vector<SocketCache>(topo_->socket_count());
    }
  }

  [[nodiscard]] GvMode mode() const { return mode_; }
  [[nodiscard]] bool cached() const { return !caches_.empty(); }

  /// Whether hardware commits should store the clock cell inside their
  /// speculation window. In cached mode they must not — the in-txn store is
  /// exactly the cross-socket clock-line conflict the mode removes; stamps
  /// at global+1 are admitted via the on_abort progress rule instead.
  [[nodiscard]] bool hw_writes_clock() const {
    return !cached() && mode_ != GvMode::kGv6;
  }

  /// The cell backing the counter — hardware paths subscribe through this.
  [[nodiscard]] TmCell& cell() { return cell_; }

  /// Read-version sample. Cached mode reads the caller's socket cache:
  /// stale-low is safe (extra aborts at worst), and the load stays on a
  /// socket-local line.
  [[nodiscard]] TmWord read() const {
    if (cached()) {
      return caches_[home_socket()].cell.word.load(std::memory_order_acquire);
    }
    return cell_.word.load(std::memory_order_acquire);
  }

  /// Next write-version for a software commit. Under GV6 the clock itself is
  /// not advanced; the returned stamp is still strictly greater than any
  /// read-version sampled before the commit, which is all validation needs.
  /// Cached mode is GV6 over the GLOBAL cell: no write, and since every
  /// socket cache lags the global, the stamp also exceeds every cached rv.
  TmWord next() {
    if (cached()) {
      return cell_.word.load(std::memory_order_acquire) + 1;
    }
    switch (mode_) {
      case GvMode::kGv1:
        count_global_publish();
        return cell_.word.fetch_add(1, std::memory_order_acq_rel) + 1;
      case GvMode::kGv4: {
        TmWord cur = cell_.word.load(std::memory_order_acquire);
        const TmWord want = cur + 1;
        if (cell_.word.compare_exchange_strong(cur, want, std::memory_order_acq_rel)) {
          count_global_publish();
          return want;
        }
        // Lost the race: `cur` now holds the winner's (newer) value — adopt
        // it instead of retrying, batching the whole racing group onto one
        // clock increment.
        return cur;
      }
      case GvMode::kGv6:
        return cell_.word.load(std::memory_order_acquire) + 1;
    }
    return 0;
  }

  /// GV6 progress rule: a reader that aborts on a too-new stripe version
  /// advances the clock so its next read-version admits the new data. In
  /// cached mode this is the ONLY write to the global cell — the one
  /// cross-socket publish — and the aborting reader's home cache is lifted
  /// to the new value so its retry sees it immediately.
  void on_abort() {
    if (cached()) {
      const TmWord g = cell_.word.fetch_add(1, std::memory_order_acq_rel) + 1;
      lift_cache(home_socket(), g);
      count_global_publish();
      return;
    }
    if (mode_ == GvMode::kGv6) {
      cell_.word.fetch_add(1, std::memory_order_acq_rel);
      count_global_publish();
    }
  }

  /// Post-commit lazy propagation (cached mode): refresh the committer's
  /// HOME socket cache from the global cell. Never lifts a cache above the
  /// global, preserving the lagging-replica invariant. No-op otherwise.
  void publish_home() {
    if (!cached()) return;
    lift_cache(home_socket(), cell_.word.load(std::memory_order_acquire));
    local_publishes_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Bookkeeping hook for a hardware commit that stamped stripes: in modes
  /// where the commit stored the clock cell in-txn that store IS a global
  /// publish; in cached mode the store was skipped, so propagate the home
  /// cache instead.
  void note_hw_commit() {
    if (cached()) {
      publish_home();
      return;
    }
    if (mode_ != GvMode::kGv6) count_global_publish();
  }

  /// Writes that hit the shared global cell (every socket pays coherence).
  [[nodiscard]] std::uint64_t global_publishes() const {
    return global_publishes_.load(std::memory_order_relaxed);
  }
  /// Socket-local cache refreshes (cached mode only).
  [[nodiscard]] std::uint64_t local_publishes() const {
    return local_publishes_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) SocketCache {
    TmCell cell;
  };

  [[nodiscard]] unsigned home_socket() const {
    return current_socket_of_thread(*topo_) %
           static_cast<unsigned>(caches_.size());
  }

  /// Monotonic CAS-max: never moves a cache backwards (concurrent lifts
  /// race benignly) and never above the value read from the global.
  void lift_cache(unsigned s, TmWord v) {
    auto& c = caches_[s].cell.word;
    TmWord cur = c.load(std::memory_order_relaxed);
    while (cur < v &&
           !c.compare_exchange_weak(cur, v, std::memory_order_acq_rel)) {
    }
  }

  void count_global_publish() {
    global_publishes_.fetch_add(1, std::memory_order_relaxed);
  }

  GvMode mode_;
  const Topology* topo_ = nullptr;
  TmCell cell_;
  std::vector<SocketCache> caches_;
  alignas(64) std::atomic<std::uint64_t> global_publishes_{0};
  std::atomic<std::uint64_t> local_publishes_{0};
};

}  // namespace rhtm
