#pragma once

// Global version clock (paper §2.2). The counter lives in a TmCell so that
// hardware transactions can read (and, under GV1/GV4, advance) it inside
// their speculation window — which is exactly what makes the clock policy
// measurable: a policy that writes the clock makes every overlapping pair of
// hardware transactions conflict on the clock line.

#include "core/cell.h"

namespace rhtm {

enum class GvMode : int {
  kGv1 = 0,  ///< fetch-add on every next(): precise, maximal clock traffic
  kGv4 = 1,  ///< one CAS per racing batch; losers adopt the winner's value
  kGv6 = 2,  ///< next() never writes; aborting readers advance the clock
};

[[nodiscard]] inline const char* to_string(GvMode m) {
  switch (m) {
    case GvMode::kGv1: return "GV1";
    case GvMode::kGv4: return "GV4";
    case GvMode::kGv6: return "GV6";
  }
  return "?";
}

class GlobalVersionClock {
 public:
  explicit GlobalVersionClock(GvMode mode = GvMode::kGv1) : mode_(mode) {}

  [[nodiscard]] GvMode mode() const { return mode_; }

  /// The cell backing the counter — hardware paths subscribe through this.
  [[nodiscard]] TmCell& cell() { return cell_; }

  [[nodiscard]] TmWord read() const { return cell_.word.load(std::memory_order_acquire); }

  /// Next write-version for a software commit. Under GV6 the clock itself is
  /// not advanced; the returned stamp is still strictly greater than any
  /// read-version sampled before the commit, which is all validation needs.
  TmWord next() {
    switch (mode_) {
      case GvMode::kGv1:
        return cell_.word.fetch_add(1, std::memory_order_acq_rel) + 1;
      case GvMode::kGv4: {
        TmWord cur = cell_.word.load(std::memory_order_acquire);
        const TmWord want = cur + 1;
        if (cell_.word.compare_exchange_strong(cur, want, std::memory_order_acq_rel)) {
          return want;
        }
        // Lost the race: `cur` now holds the winner's (newer) value — adopt
        // it instead of retrying, batching the whole racing group onto one
        // clock increment.
        return cur;
      }
      case GvMode::kGv6:
        return read() + 1;
    }
    return 0;
  }

  /// GV6 progress rule: a reader that aborts on a too-new stripe version
  /// advances the clock so its next read-version admits the new data.
  void on_abort() {
    if (mode_ == GvMode::kGv6) cell_.word.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  GvMode mode_;
  TmCell cell_;
};

}  // namespace rhtm
