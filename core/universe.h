#pragma once

// TmUniverse<H> — the shared world every protocol instance runs against:
// the HTM substrate instance, the striped version-word store, the global
// version clock, and (when configured durable) the simulated persistent
// domain every software write-back funnels through. Benches construct one
// universe per figure (or per protocol) and instantiate protocols over it.

#include <memory>

#include "core/clock.h"
#include "core/contention.h"
#include "core/htm_common.h"
#include "core/pmem.h"
#include "core/stripe.h"
#include "core/trace.h"

namespace rhtm {

struct UniverseConfig {
  HtmConfig htm;
  StripeConfig stripe;
  GvMode gv_mode = GvMode::kGv1;
  /// Contention management: retry/backoff/escalation policy applied by every
  /// protocol ThreadCtx constructed over this universe (see core/contention.h;
  /// --cm= bench flag). kFixed is bit-compatible with the historical coins
  /// and budgets.
  CmConfig cm;
  /// Durability mode: every committing write-back is redo-logged, fenced and
  /// applied to the PersistentDomain's durable image (see core/pmem.h).
  /// Requires a substrate with real commit atomicity — the durable hardware
  /// commits stamp their write stripes locked inside the transaction, and a
  /// substrate that cannot roll stores back (HtmEmul) would abandon those
  /// locks on abort.
  bool durable = false;
  PmemConfig pmem;
  /// Event tracing: when non-null, every protocol ThreadCtx constructed
  /// over this universe acquires a TraceRing from this tracer and records
  /// its full transaction lifecycle (core/trace.h; --trace bench flag).
  /// Non-owning — the tracer outlives every universe built over it. Null
  /// (the default) disables tracing: the per-event cost collapses to one
  /// predictable null-check branch.
  trace::Tracer* tracer = nullptr;
  /// NUMA geometry axis (core/topology.h; --numa bench flag). kOff keeps
  /// the flat stripe table and plain clock bit-identical to the pre-NUMA
  /// universe; kShard sockets-shards the stripe table (first-touch
  /// allocated); kShardClock additionally enables the per-socket cached
  /// version clock.
  NumaMode numa = NumaMode::kOff;
  /// Topology override for tests/benches; null resolves to
  /// Topology::system(). Non-owning — must outlive the universe.
  const Topology* topology = nullptr;
};

/// The topology a universe built from `cfg` operates over.
[[nodiscard]] inline const Topology& resolve_topology(const UniverseConfig& cfg) {
  return cfg.topology != nullptr ? *cfg.topology : Topology::system();
}

namespace detail {
/// Derives the stripe-table shard geometry from the numa mode: per-socket
/// shards (StripeTable rounds up to a power of two) when sharding is on,
/// the flat table otherwise.
[[nodiscard]] inline StripeConfig sharded_stripe_config(const UniverseConfig& cfg) {
  StripeConfig sc = cfg.stripe;
  if (cfg.numa != NumaMode::kOff) {
    const Topology& topo = resolve_topology(cfg);
    sc.shards = topo.socket_count();
    sc.topology = &topo;
  }
  return sc;
}
}  // namespace detail

template <class H>
class TmUniverse {
 public:
  TmUniverse() : TmUniverse(UniverseConfig{}) {}
  explicit TmUniverse(const UniverseConfig& cfg)
      : cfg_(cfg),
        topo_(&resolve_topology(cfg)),
        htm_(cfg.htm),
        stripes_(detail::sharded_stripe_config(cfg)),
        clock_(cfg.gv_mode,
               cfg.numa == NumaMode::kShardClock ? topo_ : nullptr) {
    if (cfg_.durable) pmem_ = std::make_unique<PersistentDomain>(cfg_.pmem);
  }

  TmUniverse(const TmUniverse&) = delete;
  TmUniverse& operator=(const TmUniverse&) = delete;

  [[nodiscard]] const UniverseConfig& config() const { return cfg_; }
  [[nodiscard]] H& htm() { return htm_; }
  [[nodiscard]] StripeTable& stripes() { return stripes_; }
  [[nodiscard]] GlobalVersionClock& clock() { return clock_; }

  /// True when this universe persists commits (cfg.durable). Non-durable
  /// universes never construct a PersistentDomain and emit zero fences.
  [[nodiscard]] bool durable() const { return pmem_ != nullptr; }
  /// The persistent domain; only valid when durable().
  [[nodiscard]] PersistentDomain& pmem() { return *pmem_; }

  /// The NUMA geometry axis this universe was built with.
  [[nodiscard]] NumaMode numa() const { return cfg_.numa; }
  /// The resolved topology (config override or Topology::system()).
  [[nodiscard]] const Topology& topology() const { return *topo_; }

  /// The flight recorder, or null when tracing is off.
  [[nodiscard]] trace::Tracer* tracer() const { return cfg_.tracer; }
  /// A fresh per-thread trace ring, or null when tracing is off (or the
  /// tracer's ring budget is exhausted — callers treat both as "no trace").
  [[nodiscard]] trace::TraceRing* acquire_trace_ring() const {
    return cfg_.tracer != nullptr ? cfg_.tracer->acquire_ring() : nullptr;
  }

 private:
  UniverseConfig cfg_;
  const Topology* topo_;
  H htm_;
  StripeTable stripes_;
  GlobalVersionClock clock_;
  std::unique_ptr<PersistentDomain> pmem_;
};

}  // namespace rhtm
