#pragma once

// TmUniverse<H> — the shared world every protocol instance runs against:
// the HTM substrate instance, the striped version-word store, the global
// version clock, and (when configured durable) the simulated persistent
// domain every software write-back funnels through. Benches construct one
// universe per figure (or per protocol) and instantiate protocols over it.

#include <memory>

#include "core/clock.h"
#include "core/contention.h"
#include "core/htm_common.h"
#include "core/pmem.h"
#include "core/stripe.h"
#include "core/trace.h"

namespace rhtm {

struct UniverseConfig {
  HtmConfig htm;
  StripeConfig stripe;
  GvMode gv_mode = GvMode::kGv1;
  /// Contention management: retry/backoff/escalation policy applied by every
  /// protocol ThreadCtx constructed over this universe (see core/contention.h;
  /// --cm= bench flag). kFixed is bit-compatible with the historical coins
  /// and budgets.
  CmConfig cm;
  /// Durability mode: every committing write-back is redo-logged, fenced and
  /// applied to the PersistentDomain's durable image (see core/pmem.h).
  /// Requires a substrate with real commit atomicity — the durable hardware
  /// commits stamp their write stripes locked inside the transaction, and a
  /// substrate that cannot roll stores back (HtmEmul) would abandon those
  /// locks on abort.
  bool durable = false;
  PmemConfig pmem;
  /// Event tracing: when non-null, every protocol ThreadCtx constructed
  /// over this universe acquires a TraceRing from this tracer and records
  /// its full transaction lifecycle (core/trace.h; --trace bench flag).
  /// Non-owning — the tracer outlives every universe built over it. Null
  /// (the default) disables tracing: the per-event cost collapses to one
  /// predictable null-check branch.
  trace::Tracer* tracer = nullptr;
};

template <class H>
class TmUniverse {
 public:
  TmUniverse() : TmUniverse(UniverseConfig{}) {}
  explicit TmUniverse(const UniverseConfig& cfg)
      : cfg_(cfg), htm_(cfg.htm), stripes_(cfg.stripe), clock_(cfg.gv_mode) {
    if (cfg_.durable) pmem_ = std::make_unique<PersistentDomain>(cfg_.pmem);
  }

  TmUniverse(const TmUniverse&) = delete;
  TmUniverse& operator=(const TmUniverse&) = delete;

  [[nodiscard]] const UniverseConfig& config() const { return cfg_; }
  [[nodiscard]] H& htm() { return htm_; }
  [[nodiscard]] StripeTable& stripes() { return stripes_; }
  [[nodiscard]] GlobalVersionClock& clock() { return clock_; }

  /// True when this universe persists commits (cfg.durable). Non-durable
  /// universes never construct a PersistentDomain and emit zero fences.
  [[nodiscard]] bool durable() const { return pmem_ != nullptr; }
  /// The persistent domain; only valid when durable().
  [[nodiscard]] PersistentDomain& pmem() { return *pmem_; }

  /// The flight recorder, or null when tracing is off.
  [[nodiscard]] trace::Tracer* tracer() const { return cfg_.tracer; }
  /// A fresh per-thread trace ring, or null when tracing is off (or the
  /// tracer's ring budget is exhausted — callers treat both as "no trace").
  [[nodiscard]] trace::TraceRing* acquire_trace_ring() const {
    return cfg_.tracer != nullptr ? cfg_.tracer->acquire_ring() : nullptr;
  }

 private:
  UniverseConfig cfg_;
  H htm_;
  StripeTable stripes_;
  GlobalVersionClock clock_;
  std::unique_ptr<PersistentDomain> pmem_;
};

}  // namespace rhtm
