#pragma once

// TmUniverse<H> — the shared world every protocol instance runs against:
// the HTM substrate instance, the striped version-word store, and the
// global version clock. Benches construct one universe per figure (or per
// protocol) and instantiate protocols over it.

#include "core/clock.h"
#include "core/htm_common.h"
#include "core/stripe.h"

namespace rhtm {

struct UniverseConfig {
  HtmConfig htm;
  StripeConfig stripe;
  GvMode gv_mode = GvMode::kGv1;
};

template <class H>
class TmUniverse {
 public:
  TmUniverse() : TmUniverse(UniverseConfig{}) {}
  explicit TmUniverse(const UniverseConfig& cfg)
      : cfg_(cfg), htm_(cfg.htm), stripes_(cfg.stripe), clock_(cfg.gv_mode) {}

  TmUniverse(const TmUniverse&) = delete;
  TmUniverse& operator=(const TmUniverse&) = delete;

  [[nodiscard]] const UniverseConfig& config() const { return cfg_; }
  [[nodiscard]] H& htm() { return htm_; }
  [[nodiscard]] StripeTable& stripes() { return stripes_; }
  [[nodiscard]] GlobalVersionClock& clock() { return clock_; }

 private:
  UniverseConfig cfg_;
  H htm_;
  StripeTable stripes_;
  GlobalVersionClock clock_;
};

}  // namespace rhtm
