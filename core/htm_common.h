#pragma once

// Shared pieces of the hardware-transaction substrates: configuration,
// outcome codes, the internal abort signal, and the line-set used for
// capacity accounting.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/cell.h"
#include "core/stats.h"

namespace rhtm {

/// The substrate axis: which best-effort HTM implementation backs a
/// TmUniverse. Protocols are templated over the substrate type and never
/// name a concrete kind; generic code (bench dispatch, report stamping,
/// substrate-parametrized tests) names substrates exclusively through this
/// enum and the SubstrateTraits below.
enum class SubstrateKind : std::uint8_t {
  kEmul,  ///< plain-access emulation (core/htm_emul.h)
  kSim,   ///< software-simulated HTM with real conflicts (core/htm_sim.h)
  kRtm,   ///< real hardware transactions over Intel RTM (core/htm_rtm.h)
};

/// Canonical substrate names: the --substrate= flag values and the JSON
/// reports' `substrate` field. Single source of truth for both.
[[nodiscard]] constexpr const char* to_string(SubstrateKind k) {
  switch (k) {
    case SubstrateKind::kEmul: return "emul";
    case SubstrateKind::kSim: return "sim";
    case SubstrateKind::kRtm: return "rtm";
  }
  return "?";
}

/// JSON `substrate` value for a report whose tables span more than one
/// substrate (e.g. a table following --substrate next to a pinned-sim one).
inline constexpr const char* kMixedSubstrateName = "mixed";

/// Parses a canonical substrate name. Returns false on an unknown name.
[[nodiscard]] inline bool parse_substrate_kind(const char* name, SubstrateKind* out) {
  for (const SubstrateKind k :
       {SubstrateKind::kEmul, SubstrateKind::kSim, SubstrateKind::kRtm}) {
    if (std::strcmp(name, to_string(k)) == 0) {
      *out = k;
      return true;
    }
  }
  return false;
}

/// Compile-time substrate metadata, specialized next to each substrate
/// class. `kAtomic` states whether the substrate gives multi-word commit
/// atomicity and conflict detection (HtmEmul does not — its concurrent
/// results are a modelling device, not serializable executions).
template <class H>
struct SubstrateTraits;

/// Capacity model for a best-effort hardware transaction. Budgets count
/// distinct *lines* (addresses >> line_shift); the default line_shift of 3
/// makes one 8-byte word per entry, matching the "512-entry write budget"
/// the extension benches assume.
struct HtmConfig {
  std::size_t max_read_set = 8192;
  std::size_t max_write_set = 512;
  unsigned line_shift = 3;
};

enum class HtmStatus : std::uint8_t {
  kCommitted,
  kConflict,  ///< sim only: commit-time validation failed
  kCapacity,
  kExplicit,
  kInjected,
};

struct HtmOutcome {
  HtmStatus status = HtmStatus::kCommitted;
  [[nodiscard]] bool ok() const { return status == HtmStatus::kCommitted; }
};

[[nodiscard]] inline AbortCause to_abort_cause(HtmStatus s) {
  switch (s) {
    case HtmStatus::kConflict: return AbortCause::kHtmConflict;
    case HtmStatus::kCapacity: return AbortCause::kHtmCapacity;
    case HtmStatus::kExplicit: return AbortCause::kHtmExplicit;
    case HtmStatus::kInjected: return AbortCause::kInjected;
    case HtmStatus::kCommitted: break;
  }
  return AbortCause::kHtmConflict;
}

namespace detail {

/// Thrown by substrate barriers to unwind out of a doomed speculation;
/// caught by execute(). Never escapes the substrate.
struct HtmAbort {
  HtmStatus status;
};

/// Open-addressed set of line ids with O(1) epoch-based clearing, used for
/// exact distinct-line capacity accounting in the simulated substrate.
class LineSet {
 public:
  explicit LineSet(std::size_t initial_slots = 1024)
      : slots_(initial_slots), epochs_(initial_slots, 0) {}

  void clear() {
    ++epoch_;
    count_ = 0;
    if (epoch_ == 0) {  // epoch wrapped: hard reset
      std::fill(epochs_.begin(), epochs_.end(), 0);
      epoch_ = 1;
    }
  }

  /// Returns true if the line was newly inserted.
  bool insert(std::uint64_t line) {
    if (count_ * 4 >= slots_.size() * 3) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(line * 0x9e3779b97f4a7c15ull >> 32) & mask;
    while (epochs_[i] == epoch_) {
      if (slots_[i] == line) return false;
      i = (i + 1) & mask;
    }
    slots_[i] = line;
    epochs_[i] = epoch_;
    ++count_;
    return true;
  }

  [[nodiscard]] std::size_t count() const { return count_; }

 private:
  void grow() {
    std::vector<std::uint64_t> old_slots = std::move(slots_);
    std::vector<std::uint32_t> old_epochs = std::move(epochs_);
    slots_.assign(old_slots.size() * 2, 0);
    epochs_.assign(old_slots.size() * 2, 0);
    const std::uint32_t live = epoch_;
    epoch_ = 1;
    count_ = 0;
    const std::uint32_t fresh = epoch_;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_epochs[i] == live) {
        // re-insert without growth recursion (load factor halved)
        const std::size_t mask = slots_.size() - 1;
        std::size_t j =
            static_cast<std::size_t>(old_slots[i] * 0x9e3779b97f4a7c15ull >> 32) & mask;
        while (epochs_[j] == fresh) j = (j + 1) & mask;
        slots_[j] = old_slots[i];
        epochs_[j] = fresh;
        ++count_;
      }
    }
  }

  std::vector<std::uint64_t> slots_;
  std::vector<std::uint32_t> epochs_;
  std::uint32_t epoch_ = 1;
  std::size_t count_ = 0;
};

inline std::uint64_t line_of(const void* addr, unsigned line_shift) {
  return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(addr)) >> line_shift;
}

/// Publication seqlock shared by the substrates whose software-visible
/// multi-word publications need torn-read protection: a spinlock
/// serializing publishers plus an odd/even epoch (odd = a publication is
/// in flight) that software read barriers bracket their stripe/data/stripe
/// load sequences with. Substrates that also need the lock for their own
/// commit protocol (HtmSim) drive the lock and epoch marks separately.
class PublicationSeqlock {
 public:
  /// One atomic batch: serialized against other publishers, epoch-marked
  /// for software readers. `entries` elements expose `.cell` and `.value`.
  template <class Entries>
  void publish(const Entries& entries) {
    lock();
    mark_in_flight();
    for (const auto& e : entries) {
      e.cell->word.store(e.value, std::memory_order_release);
    }
    mark_settled();
    unlock();
  }

  [[nodiscard]] TmWord epoch() const { return epoch_.load(std::memory_order_acquire); }

  void lock() {
    while (lock_.exchange(1, std::memory_order_acquire) != 0) cpu_relax();
  }
  void unlock() { lock_.store(0, std::memory_order_release); }

  /// Epoch marks for publishers already holding the lock.
  void mark_in_flight() { epoch_.fetch_add(1, std::memory_order_acq_rel); }
  void mark_settled() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

 private:
  std::atomic<std::uint32_t> lock_{0};
  std::atomic<TmWord> epoch_{0};
};

}  // namespace detail

}  // namespace rhtm
