#pragma once

// TatasElision — the classic lock-elision baseline: one global
// test-and-test-and-set spinlock protecting every transaction, with
// hardware transactions eliding it. A hardware attempt runs the body
// uninstrumented after subscribing to the lock word (reading it
// transactionally, aborting if held — so a real acquisition conflicts every
// elided transaction out); the fallback is simply taking the lock.
//
// This is the calibration floor for the hybrids: it has no STM, no stripe
// metadata, and no concurrency in the fallback — all parallelism comes from
// successful elision, so its throughput curve isolates what the
// ContentionManager's retry decisions are worth before any TM machinery is
// added. Like HtmOnly it is not durable-capable (nothing captures a redo
// log) and ignores universe durability mode.

#include <cstdint>

#include "core/htm_only.h"
#include "core/stats.h"
#include "core/universe.h"

namespace rhtm {

template <class H>
class TatasElision {
 public:
  struct Config {
    std::uint32_t inject_abort_bp = 0;
    unsigned max_hw_attempts = 8;   ///< elision retries before taking the lock
    unsigned capacity_retries = 2;  ///< capacity aborts before taking the lock
  };

  class ThreadCtx {
   public:
    explicit ThreadCtx(TatasElision& tm)
        : tx_(tm.u_.htm()),
          rng_(detail::next_ctx_seed()),
          cm_(tm.u_.config().cm,
              ContentionManager::Limits{0, tm.cfg_.max_hw_attempts,
                                        tm.cfg_.capacity_retries}),
          trace_(tm.u_.acquire_trace_ring()) {
      cm_.set_trace(trace_);
    }
    TxStats stats;

   private:
    friend class TatasElision;
    typename H::Tx tx_;
    Xoshiro256 rng_;
    ContentionManager cm_;
    trace::TraceRing* trace_;
  };

  explicit TatasElision(TmUniverse<H>& u, Config cfg = {})
      : u_(u), cfg_(cfg), injector_(cfg.inject_abort_bp) {}

  template <class Body>
  void atomically(ThreadCtx& ctx, Body&& body) {
    detail::timed_section(ctx.stats, [&] { run(ctx, body); });
  }

  /// Exposed for tests: true while some thread holds the lock.
  [[nodiscard]] bool lock_held() const { return (lock_.unsafe_load() & 1) != 0; }

 private:
  template <class Body>
  void run(ThreadCtx& ctx, Body& body) {
    trace::tx_begin(ctx.trace_);
    if (!ctx.cm_.start_in_software()) {
      for (;;) {
        ctx.stats.count_attempt(ExecPath::kHtm);
        trace::attempt(ctx.trace_, ExecPath::kHtm);
        const bool poison = injector_.fire(ctx.rng_);
        const HtmOutcome out = u_.htm().execute(ctx.tx_, [&](typename H::Tx& t) {
          // Elision subscription: the lock word joins the read set, so an
          // acquire (word goes odd) aborts every in-flight elided body.
          if ((t.load(lock_) & 1) != 0) t.abort_explicit();
          if (poison) t.poison();
          detail::HwPlainHandle<typename H::Tx> h{t};
          body(h);
        });
        if (out.ok()) {
          ctx.stats.count_commit(ExecPath::kHtm);
          trace::commit(ctx.trace_, ExecPath::kHtm);
          ctx.cm_.on_hardware_commit();
          return;
        }
        ctx.stats.count_abort(to_abort_cause(out.status));
        trace::abort(ctx.trace_, to_abort_cause(out.status));
        if (ctx.cm_.give_up_hardware(to_abort_cause(out.status), ctx.rng_)) break;
        ctx.cm_.backoff_hardware();
      }
    }
    trace::fallback_lock(ctx.trace_);
    acquire();
    detail::NonSpecHandle<H> h{u_.htm()};
    body(h);
    release();
    ctx.stats.count_commit(ExecPath::kHtm);
    trace::commit(ctx.trace_, ExecPath::kHtm);
    ctx.cm_.on_software_commit();
  }

  /// Test-and-test-and-set: spin on plain loads (shared line, no coherence
  /// storm) and attempt the RMW only when the lock reads free.
  void acquire() {
    for (;;) {
      TmWord s = lock_.word.load(std::memory_order_acquire);
      if ((s & 1) == 0 &&
          lock_.word.compare_exchange_weak(s, s + 1, std::memory_order_acq_rel)) {
        return;
      }
      detail::cpu_relax();
    }
  }
  void release() { lock_.word.fetch_add(1, std::memory_order_acq_rel); }

  TmUniverse<H>& u_;
  Config cfg_;
  AbortInjector injector_;
  TmCell lock_;  ///< seqlock-shaped: odd = held; every bump aborts subscribers
};

}  // namespace rhtm
