#pragma once

// TL2 — the software baseline and the shared STM machinery (read/write
// barriers and the all-software stripe-locked commit). The figure benches
// use Tl2<H> both as the "TL2" series and as the calibration run whose
// abort ratio is injected into the hardware-mode series. StandardHytm's
// software fallback and PhasedTm's software phase reuse detail::tl2_run.

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/stats.h"
#include "core/universe.h"
#include "stm/read_set.h"
#include "stm/stripe_set.h"
#include "stm/write_set.h"

namespace rhtm {

namespace detail {

/// Thrown by software-path barriers/commits; caught by the retry loop.
struct StmAbort {
  AbortCause cause;
};

/// The post-validated software read (the TL2 read barrier's slow half,
/// shared by the TL2 and RH2 handles): stripe word, data word, stripe word
/// again — bracketed by the substrate's publication epoch so a hardware
/// commit's multi-word write-back (which software readers do not otherwise
/// synchronize with) can never interleave a torn view. Records the read in
/// `rs` on success; throws StmAbort on a locked or too-new stripe.
template <class H>
inline TmWord stripe_validated_read(TmUniverse<H>& u, const TmCell& c, std::size_t s, TmWord rv,
                                    ReadSet& rs) {
  StripeTable& st = u.stripes();
  for (;;) {
    const TmWord e1 = u.htm().publication_epoch();
    const TmWord w1 = st.word(s).word.load(std::memory_order_acquire);
    const TmWord val = c.word.load(std::memory_order_acquire);
    const TmWord w2 = st.word(s).word.load(std::memory_order_acquire);
    const TmWord e2 = u.htm().publication_epoch();
    if ((e1 & 1) != 0 || e1 != e2) {  // a publication overlapped: re-read
      cpu_relax();
      continue;
    }
    if (StripeTable::is_locked(w1)) throw StmAbort{AbortCause::kStmLocked};
    if (w1 != w2 || StripeTable::version_of(w1) > rv) {
      throw StmAbort{AbortCause::kStmValidation};
    }
    rs.add(static_cast<std::uint32_t>(s));
    return val;
  }
}

/// TL2 access barriers over a universe. Read: bloom-checked write-set
/// lookup, then stripe-validated post-read. Write: write-set insert.
template <class H>
struct Tl2Handle {
  TmUniverse<H>& u;
  ReadSet& rs;
  WriteSet& ws;
  TmWord rv;

  TmWord load(const TmCell& c) {
    if (const WriteEntry* e = ws.find(c)) return e->value;
    return stripe_validated_read(u, c, u.stripes().index_of(&c), rv, rs);
  }

  void store(TmCell& c, TmWord v) {
    ws.put(c, v, static_cast<std::uint32_t>(u.stripes().index_of(&c)));
  }
};

/// The all-software TL2 commit: lock the write stripes (deduplicated and
/// sorted), fetch a write version, revalidate the read-set, write back,
/// release to the new version. Throws StmAbort with locks released on any
/// failure.
///
/// The lock list is the write-set's exact deduped stripe view, sorted into
/// canonical order — every committer acquires in the same global order, so
/// two overlapping commits cannot each hold half of the other's stripes
/// and livelock. "Is this stripe mine?" during read validation is an O(1)
/// `wrote_stripe` probe; the old per-entry linear scan made large commits
/// O(W^2).
///
/// `self_read_masks`, when non-null, is the set of stripes on which the
/// committing transaction itself published an RH2 read mask; the commit
/// then refuses to overwrite a stripe that carries any *other* visible
/// reader (the RH2 slow-slow path's obligation).
template <class H>
inline void tl2_software_commit(TmUniverse<H>& u, ReadSet& rs, WriteSet& ws, TmWord rv,
                                std::vector<std::uint32_t>& locked,
                                const StripeSet* self_read_masks = nullptr,
                                trace::TraceRing* ring = nullptr) {
  if (ws.empty()) return;  // read-only: post-validated reads suffice
  StripeTable& st = u.stripes();
  locked = ws.write_stripes();  // deduped; assign reuses the scratch capacity
  std::sort(locked.begin(), locked.end());
  std::size_t acquired = 0;
  const auto release_restore = [&] {
    for (std::size_t i = 0; i < acquired; ++i) st.unlock_restore(locked[i]);
  };
  for (; acquired < locked.size(); ++acquired) {
    // The sorted stripe indices hash to scattered table words; prefetch the
    // next lock word (exclusive) so its miss overlaps this CAS.
    if (acquired + 1 < locked.size()) {
      st.prefetch_word(locked[acquired + 1], /*for_write=*/true);
    }
    if (!st.try_lock(locked[acquired])) {
      release_restore();
      throw StmAbort{AbortCause::kStmLocked};
    }
  }
  if (self_read_masks != nullptr) {
    for (const std::uint32_t s : locked) {
      // publish_once guarantees at most one own mask per stripe.
      const TmWord self = self_read_masks->contains(s) ? 1 : 0;
      if (st.readers(s) > self) {
        release_restore();
        throw StmAbort{AbortCause::kStmLocked};
      }
    }
  }
  const TmWord wv = u.clock().next();
  const auto is_self = [&](std::uint32_t s) { return ws.wrote_stripe(s); };
  if (!rs.validate(st, rv, is_self)) {
    release_restore();
    throw StmAbort{AbortCause::kStmValidation};
  }
  if (u.durable()) {
    // Log-then-fence-then-apply, stripe locks held across the whole persist
    // sequence: the commit marker lands in the redo log in stripe-lock
    // serialization order, and no reader observes the new values (in memory
    // or in the image) before they are durably marked. RH2's slow-slow
    // escalation funnels through here too — same path, same kill points.
    PersistentDomain& pd = u.pmem();
    const std::uint64_t t0 = rdtsc();
    const std::uint64_t txid = pd.durable_log(ws.entries(), pmem::kPathTl2);
    const std::uint64_t t1 = rdtsc();
    trace::durable_phase(ring, trace::EventKind::kDurLog, t1 - t0);
    pd.durable_mark(txid, pmem::kPathTl2);
    trace::durable_phase(ring, trace::EventKind::kDurMark, rdtsc() - t1);
    u.htm().nontx_publish(ws.entries());  // one atomic batch, not N racy stores
    const std::uint64_t t2 = rdtsc();
    pd.durable_apply(ws.entries(), pmem::kPathTl2);
    trace::durable_phase(ring, trace::EventKind::kDurApply, rdtsc() - t2);
  } else {
    u.htm().nontx_publish(ws.entries());  // one atomic batch, not N racy stores
  }
  for (const std::uint32_t s : locked) st.unlock_to(s, wv);
  u.clock().publish_home();  // cached-clock lazy propagation; no-op otherwise
}

/// Full TL2 transaction loop: retry until the body runs and commits. The
/// caller's ContentionManager shapes the inter-retry backoff (for pure
/// software paths only the backoff shape applies; escalation is a no-op).
/// `ring` records the lifecycle when tracing is on; callers that escalate
/// into this loop have already emitted their tx_begin, so the loop only
/// emits attempt/abort/commit.
template <class H, class Body>
inline void tl2_run(TmUniverse<H>& u, ReadSet& rs, WriteSet& ws,
                    std::vector<std::uint32_t>& lock_scratch, TxStats& stats, ExecPath path,
                    ContentionManager& cm, trace::TraceRing* ring, Body& body) {
  cm.begin_software();
  for (;;) {
    stats.count_attempt(path);
    trace::attempt(ring, path);
    rs.clear();
    ws.clear();
    const TmWord rv = u.clock().read();
    Tl2Handle<H> h{u, rs, ws, rv};
    try {
      body(h);
      tl2_software_commit(u, rs, ws, rv, lock_scratch, nullptr, ring);
    } catch (const StmAbort& a) {
      stats.count_abort(a.cause);
      trace::abort(ring, a.cause);
      u.clock().on_abort();
      if (u.clock().cached()) trace::clock_publish(ring);
      cm.backoff_software();
      continue;
    }
    stats.count_commit(path);
    trace::commit(ring, path);
    cm.on_software_commit();
    return;
  }
}

}  // namespace detail

template <class H>
class Tl2 {
 public:
  struct Config {};

  class ThreadCtx {
   public:
    explicit ThreadCtx(Tl2& tm)
        : cm_(tm.u_.config().cm, ContentionManager::Limits{}),
          trace_(tm.u_.acquire_trace_ring()) {
      cm_.set_trace(trace_);
    }
    TxStats stats;

   private:
    friend class Tl2;
    ContentionManager cm_;
    trace::TraceRing* trace_;
    ReadSet rs_;
    WriteSet ws_;
    std::vector<std::uint32_t> lock_scratch_;
  };

  explicit Tl2(TmUniverse<H>& u, Config = {}) : u_(u) {}

  template <class Body>
  void atomically(ThreadCtx& ctx, Body&& body) {
    detail::timed_section(ctx.stats, [&] {
      trace::tx_begin(ctx.trace_);
      detail::tl2_run(u_, ctx.rs_, ctx.ws_, ctx.lock_scratch_, ctx.stats, ExecPath::kStm,
                      ctx.cm_, ctx.trace_, body);
    });
  }

 private:
  TmUniverse<H>& u_;
};

}  // namespace rhtm
