#pragma once

// Stripe (ownership-record) table: maps every address to a versioned-lock
// word, plus the RH2 visible-reader mask array. Geometry is configurable —
// fewer stripes / coarser granules alias more addresses onto one word and
// manufacture false conflicts (ablation A2).
//
// NUMA sharding (UniverseConfig::numa != off): the flat array becomes a
// façade over per-socket shards. The global stripe index i is unchanged —
// index_of hashes exactly as before — but its storage decomposes as
// (shard = i >> per_shard_log2, local = i & per_shard_mask), i.e. the shard
// id lives in the HIGH bits. That makes plain integer order on i identical
// to lexicographic (shard, local) order, so the TL2 sorted lock-acquire is
// already in canonical (shard, index) order and cross-shard commits stay
// livelock-free with zero changes to the commit loops. Shard s's cells are
// first-touch allocated on socket s % socket_count (the topology rule), so
// with scatter pinning thread t's home shard is socket-local. shards == 1
// is bit-identical to the historical flat table.

#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/cell.h"
#include "core/topology.h"

namespace rhtm {

/// How RH2 readers publish themselves on the stripe read mask (paper §4.1).
enum class MaskRmw : int {
  kFetchAdd,  ///< one unconditional fetch-add per publish/unpublish
  kCasLoop,   ///< compare-and-swap retry loop (the alternative it beats)
};

[[nodiscard]] inline const char* to_string(MaskRmw m) {
  switch (m) {
    case MaskRmw::kFetchAdd: return "fetch_add";
    case MaskRmw::kCasLoop: return "cas_loop";
  }
  return "?";
}

struct StripeConfig {
  unsigned log2_count = 16;       ///< 2^16 stripes = 512 KiB of version words
  unsigned granularity_log2 = 5;  ///< 32-byte granules: 4 words share a stripe
  MaskRmw mask_rmw = MaskRmw::kFetchAdd;
  /// Socket shard count (UniverseConfig::numa derives it from the topology;
  /// rounded up to a power of two, capped at the stripe count). 1 = the
  /// flat pre-NUMA layout.
  unsigned shards = 1;
  /// First-touch geometry: shard s is allocated on socket s % socket_count
  /// of this topology. Null (or single-socket) skips the pinned first touch.
  const Topology* topology = nullptr;
};

/// Versioned-lock word layout: bit 0 = locked, bits 63..1 = version.
class StripeTable {
 public:
  static constexpr TmWord kLockBit = 1;

  StripeTable() : StripeTable(StripeConfig{}) {}
  explicit StripeTable(const StripeConfig& cfg)
      : cfg_(cfg), mask_(((std::size_t{1}) << cfg.log2_count) - 1) {
    unsigned shard_log2 = 0;
    while ((1u << shard_log2) < (cfg.shards == 0 ? 1u : cfg.shards) &&
           shard_log2 < cfg.log2_count) {
      ++shard_log2;
    }
    per_shard_log2_ = cfg.log2_count - shard_log2;
    per_shard_mask_ = ((std::size_t{1}) << per_shard_log2_) - 1;
    shards_ = std::vector<Shard>(std::size_t{1} << shard_log2);
    const std::size_t per_shard = std::size_t{1} << per_shard_log2_;
    const Topology* topo = cfg.topology;
    if (shards_.size() > 1 && topo != nullptr && topo->socket_count() > 1) {
      // First touch: build each shard's arrays from a thread pinned to the
      // shard's home socket, so the pages land in that socket's memory.
      std::vector<std::thread> builders;
      builders.reserve(shards_.size());
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        builders.emplace_back([this, s, per_shard, topo] {
          const auto& cpus =
              topo->cpus_of_socket(static_cast<unsigned>(s) % topo->socket_count());
          if (!cpus.empty()) (void)pin_this_thread_to_cpu(cpus[0]);
          shards_[s].words = std::vector<TmCell>(per_shard);
          shards_[s].read_masks = std::vector<TmCell>(per_shard);
        });
      }
      for (auto& b : builders) b.join();
    } else {
      for (auto& s : shards_) {
        s.words = std::vector<TmCell>(per_shard);
        s.read_masks = std::vector<TmCell>(per_shard);
      }
    }
  }

  [[nodiscard]] std::size_t count() const { return mask_ + 1; }
  [[nodiscard]] const StripeConfig& config() const { return cfg_; }
  [[nodiscard]] unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }
  /// The shard a global stripe index routes to (high bits of i).
  [[nodiscard]] unsigned shard_of(std::size_t i) const {
    return static_cast<unsigned>(i >> per_shard_log2_);
  }
  /// The socket shard s is first-touched on (the topology home rule).
  [[nodiscard]] unsigned home_socket_of_shard(unsigned s) const {
    const unsigned n = cfg_.topology != nullptr ? cfg_.topology->socket_count() : 1;
    return s % (n == 0 ? 1 : n);
  }

  /// Address -> stripe index. Granule-aligned addresses are multiplied by a
  /// golden-ratio constant so nearby granules spread across the table.
  [[nodiscard]] std::size_t index_of(const void* addr) const {
    const auto granule = reinterpret_cast<std::uintptr_t>(addr) >> cfg_.granularity_log2;
    return (static_cast<std::uint64_t>(granule) * 0x9e3779b97f4a7c15ull >> 32) & mask_;
  }

  [[nodiscard]] TmCell& word(std::size_t i) {
    return shards_[i >> per_shard_log2_].words[i & per_shard_mask_];
  }
  [[nodiscard]] TmCell& read_mask(std::size_t i) {
    return shards_[i >> per_shard_log2_].read_masks[i & per_shard_mask_];
  }

  /// Software prefetch of a stripe's version word. The commit loops walk
  /// exact-deduped stripe lists whose words are scattered across the table
  /// (index_of hashes), so every iteration is a fresh cache miss the
  /// hardware stride prefetcher cannot predict; issuing the next index's
  /// prefetch one iteration ahead overlaps that miss with the current
  /// check/stamp. `for_write` hints exclusive ownership (stamp loops).
  void prefetch_word(std::size_t i, bool for_write = false) const {
#if (defined(__GNUC__) || defined(__clang__)) && !defined(RHTM_NO_PREFETCH)
    const TmCell* cell = &shards_[i >> per_shard_log2_].words[i & per_shard_mask_];
    if (for_write) {
      __builtin_prefetch(static_cast<const void*>(cell), 1, 3);
    } else {
      __builtin_prefetch(static_cast<const void*>(cell), 0, 3);
    }
#else
    (void)i;
    (void)for_write;
#endif
  }

  static constexpr TmWord version_of(TmWord w) { return w >> 1; }
  static constexpr bool is_locked(TmWord w) { return (w & kLockBit) != 0; }
  static constexpr TmWord make_word(TmWord version) { return version << 1; }

  /// Software commit locking (TL2 / slow-slow path). Callers acquire in
  /// ascending global-index order, which is (shard, local) order by
  /// construction — the canonical cross-shard lock order.
  bool try_lock(std::size_t i) {
    auto& cell = word(i).word;
    TmWord w = cell.load(std::memory_order_acquire);
    if (is_locked(w)) return false;
    return cell.compare_exchange_strong(w, w | kLockBit, std::memory_order_acq_rel);
  }
  void unlock_to(std::size_t i, TmWord version) {
    word(i).word.store(make_word(version), std::memory_order_release);
  }
  void unlock_restore(std::size_t i) {
    word(i).word.fetch_and(~kLockBit, std::memory_order_release);
  }

  /// RH2 visible-read publication: per-stripe reader counter.
  void publish_read(std::size_t i) {
    auto& m = read_mask(i).word;
    if (cfg_.mask_rmw == MaskRmw::kFetchAdd) {
      m.fetch_add(1, std::memory_order_acq_rel);
    } else {
      TmWord cur = m.load(std::memory_order_acquire);
      while (!m.compare_exchange_weak(cur, cur + 1, std::memory_order_acq_rel)) {
      }
    }
  }
  void unpublish_read(std::size_t i) {
    auto& m = read_mask(i).word;
    if (cfg_.mask_rmw == MaskRmw::kFetchAdd) {
      m.fetch_sub(1, std::memory_order_acq_rel);
    } else {
      TmWord cur = m.load(std::memory_order_acquire);
      while (!m.compare_exchange_weak(cur, cur - 1, std::memory_order_acq_rel)) {
      }
    }
  }
  [[nodiscard]] TmWord readers(std::size_t i) const {
    return shards_[i >> per_shard_log2_].read_masks[i & per_shard_mask_].word.load(
        std::memory_order_acquire);
  }

 private:
  /// One socket's slice of the table. alignas keeps shard headers off each
  /// other's cache lines; the cell arrays themselves are separate (ideally
  /// socket-local) heap allocations.
  struct alignas(64) Shard {
    std::vector<TmCell> words;
    std::vector<TmCell> read_masks;
  };

  StripeConfig cfg_;
  std::size_t mask_;
  unsigned per_shard_log2_ = 0;
  std::size_t per_shard_mask_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace rhtm
