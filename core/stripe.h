#pragma once

// Stripe (ownership-record) table: maps every address to a versioned-lock
// word, plus the RH2 visible-reader mask array. Geometry is configurable —
// fewer stripes / coarser granules alias more addresses onto one word and
// manufacture false conflicts (ablation A2).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cell.h"

namespace rhtm {

/// How RH2 readers publish themselves on the stripe read mask (paper §4.1).
enum class MaskRmw : int {
  kFetchAdd,  ///< one unconditional fetch-add per publish/unpublish
  kCasLoop,   ///< compare-and-swap retry loop (the alternative it beats)
};

[[nodiscard]] inline const char* to_string(MaskRmw m) {
  switch (m) {
    case MaskRmw::kFetchAdd: return "fetch_add";
    case MaskRmw::kCasLoop: return "cas_loop";
  }
  return "?";
}

struct StripeConfig {
  unsigned log2_count = 16;       ///< 2^16 stripes = 512 KiB of version words
  unsigned granularity_log2 = 5;  ///< 32-byte granules: 4 words share a stripe
  MaskRmw mask_rmw = MaskRmw::kFetchAdd;
};

/// Versioned-lock word layout: bit 0 = locked, bits 63..1 = version.
class StripeTable {
 public:
  static constexpr TmWord kLockBit = 1;

  StripeTable() : StripeTable(StripeConfig{}) {}
  explicit StripeTable(const StripeConfig& cfg)
      : cfg_(cfg),
        mask_(((std::size_t{1}) << cfg.log2_count) - 1),
        words_(std::size_t{1} << cfg.log2_count),
        read_masks_(std::size_t{1} << cfg.log2_count) {}

  [[nodiscard]] std::size_t count() const { return words_.size(); }
  [[nodiscard]] const StripeConfig& config() const { return cfg_; }

  /// Address -> stripe index. Granule-aligned addresses are multiplied by a
  /// golden-ratio constant so nearby granules spread across the table.
  [[nodiscard]] std::size_t index_of(const void* addr) const {
    const auto granule = reinterpret_cast<std::uintptr_t>(addr) >> cfg_.granularity_log2;
    return (static_cast<std::uint64_t>(granule) * 0x9e3779b97f4a7c15ull >> 32) & mask_;
  }

  [[nodiscard]] TmCell& word(std::size_t i) { return words_[i]; }
  [[nodiscard]] TmCell& read_mask(std::size_t i) { return read_masks_[i]; }

  /// Software prefetch of a stripe's version word. The commit loops walk
  /// exact-deduped stripe lists whose words are scattered across the table
  /// (index_of hashes), so every iteration is a fresh cache miss the
  /// hardware stride prefetcher cannot predict; issuing the next index's
  /// prefetch one iteration ahead overlaps that miss with the current
  /// check/stamp. `for_write` hints exclusive ownership (stamp loops).
  void prefetch_word(std::size_t i, bool for_write = false) const {
#if (defined(__GNUC__) || defined(__clang__)) && !defined(RHTM_NO_PREFETCH)
    if (for_write) {
      __builtin_prefetch(static_cast<const void*>(&words_[i]), 1, 3);
    } else {
      __builtin_prefetch(static_cast<const void*>(&words_[i]), 0, 3);
    }
#else
    (void)i;
    (void)for_write;
#endif
  }

  static constexpr TmWord version_of(TmWord w) { return w >> 1; }
  static constexpr bool is_locked(TmWord w) { return (w & kLockBit) != 0; }
  static constexpr TmWord make_word(TmWord version) { return version << 1; }

  /// Software commit locking (TL2 / slow-slow path).
  bool try_lock(std::size_t i) {
    TmWord w = words_[i].word.load(std::memory_order_acquire);
    if (is_locked(w)) return false;
    return words_[i].word.compare_exchange_strong(w, w | kLockBit, std::memory_order_acq_rel);
  }
  void unlock_to(std::size_t i, TmWord version) {
    words_[i].word.store(make_word(version), std::memory_order_release);
  }
  void unlock_restore(std::size_t i) {
    words_[i].word.fetch_and(~kLockBit, std::memory_order_release);
  }

  /// RH2 visible-read publication: per-stripe reader counter.
  void publish_read(std::size_t i) {
    auto& m = read_masks_[i].word;
    if (cfg_.mask_rmw == MaskRmw::kFetchAdd) {
      m.fetch_add(1, std::memory_order_acq_rel);
    } else {
      TmWord cur = m.load(std::memory_order_acquire);
      while (!m.compare_exchange_weak(cur, cur + 1, std::memory_order_acq_rel)) {
      }
    }
  }
  void unpublish_read(std::size_t i) {
    auto& m = read_masks_[i].word;
    if (cfg_.mask_rmw == MaskRmw::kFetchAdd) {
      m.fetch_sub(1, std::memory_order_acq_rel);
    } else {
      TmWord cur = m.load(std::memory_order_acquire);
      while (!m.compare_exchange_weak(cur, cur - 1, std::memory_order_acq_rel)) {
      }
    }
  }
  [[nodiscard]] TmWord readers(std::size_t i) const {
    return read_masks_[i].word.load(std::memory_order_acquire);
  }

 private:
  StripeConfig cfg_;
  std::size_t mask_;
  std::vector<TmCell> words_;
  std::vector<TmCell> read_masks_;
};

}  // namespace rhtm
