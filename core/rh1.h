#pragma once

// HybridTm — the paper's RH1 algorithm, with the RH2 / slow-slow escalation
// chain of §4.
//
// Fast path (kRh1Fast): the whole body runs in ONE hardware transaction.
// Reads are completely uninstrumented (one load). Writes store the data
// word and record the stripe; at the commit point the transaction re-reads
// the clock and publishes every written stripe at clock+1, so software
// readers serialize against fast commits through the ordinary TL2
// validation rules. No read-set, no write buffering, no logging.
//
// Slow path (kRh1Slow): a TL2-style software body (instrumented reads into
// a ReadSet, writes buffered in a WriteSet) committed by a *reduced
// hardware transaction*: one short HTM transaction that revalidates the
// read stripes (metadata only — one stripe word per granule of data, the
// ~4x capacity headroom of §1.2), fetches a write version, and publishes
// write-set data + stripe versions atomically. No stripe locks anywhere on
// this path.
//
// RH2 (kRh2Slow): if the reduced commit itself exceeds the hardware budget,
// the transaction re-executes with *visible* reads — readers publish
// themselves on per-stripe read masks (fetch-add vs CAS-loop is ablation
// A4) — and commits with a write-set-only hardware transaction that refuses
// to overwrite stripes carrying foreign readers. While any RH2 transaction
// is active (a global counter both fast and RH1-slow commits subscribe to),
// every committer checks the masks of its write stripes.
//
// Slow-slow (kRh2SlowSlow): the final all-software fallback — the TL2
// stripe-locked commit, mask-respecting. Needs no hardware at all.
//
// Mixed-mode policy (§2.3): an aborted fast transaction retries in
// hardware; the per-thread ContentionManager (core/contention.h) decides
// when to fall back to the slow path instead. Under the default kFixed
// policy that is exactly the paper's `slow_retry_percent` coin; kAdaptive
// replaces the coin with abort-density-derived escalation thresholds and a
// software mode that skips doomed hardware attempts and re-probes
// periodically; kAggressive holds on to hardware.

#include <cstdint>
#include <utility>
#include <vector>

#include "core/tl2.h"
#include "stm/stripe_set.h"

namespace rhtm {

template <class H>
class HybridTm {
 public:
  struct Config {
    std::uint32_t inject_abort_bp = 0;
    unsigned slow_retry_percent = 100;  ///< Mixed-N: % of aborts retried in software
    bool force_slow_path = false;       ///< breakdown bench: software body + HTM commit
    bool force_rh2 = false;             ///< ablation A4: visible-read slow mode
    unsigned commit_retries = 8;        ///< reduced-commit conflict retries
    unsigned capacity_retries = 2;      ///< fast-path capacity aborts before fallback
  };

  class ThreadCtx {
   public:
    explicit ThreadCtx(HybridTm& tm)
        : tx_(tm.u_.htm()),
          rng_(detail::next_ctx_seed()),
          cm_(tm.u_.config().cm,
              ContentionManager::Limits{tm.cfg_.slow_retry_percent, 0,
                                        tm.cfg_.capacity_retries}),
          trace_(tm.u_.acquire_trace_ring()) {
      cm_.set_trace(trace_);
    }
    TxStats stats;
    /// The per-thread retry/escalation policy engine (tests introspect it).
    [[nodiscard]] ContentionManager& cm() { return cm_; }

   private:
    friend class HybridTm;
    typename H::Tx tx_;
    Xoshiro256 rng_;
    ContentionManager cm_;
    trace::TraceRing* trace_;
    ReadSet rs_;
    WriteSet ws_;
    StripeSet fast_written_;  ///< distinct stripes the fast path stamps
    std::vector<pmem::CapturedWrite> fast_redo_;  ///< durable: fast-path write capture
    std::vector<std::uint32_t> lock_scratch_;
    StripeSet masks_;  ///< stripes with our RH2 read mask published (O(1) self test)
  };

  explicit HybridTm(TmUniverse<H>& u, Config cfg = {})
      : u_(u), cfg_(cfg), injector_(cfg.inject_abort_bp) {}

  template <class Body>
  void atomically(ThreadCtx& ctx, Body&& body) {
    detail::timed_section(ctx.stats, [&] { run(ctx, body); });
  }

 private:
  // ---------------------------------------------------------------- fast --
  /// Uninstrumented reads; writes = data store + stripe bookkeeping. The
  /// written-stripe record is exactly deduplicated, so the commit point
  /// stamps each stripe once however the body's stores interleave.
  struct FastHandle {
    typename H::Tx& t;
    StripeTable& st;
    StripeSet& written;
    std::vector<pmem::CapturedWrite>* redo;  ///< non-null in durable mode

    TmWord load(const TmCell& c) {
      if (redo != nullptr &&
          StripeTable::is_locked(t.load(st.word(st.index_of(&c))))) {
        // Durable mode's one extra load per read (the fast-path fine-grained
        // locking cost): a locked stripe belongs to a commit that has
        // published its values in memory but not yet durably — reading them
        // now could make this transaction durable before its antecedent.
        // The stripe word joins the HTM read set, so the owner's unlock
        // conflicts us out rather than racing the data load.
        t.abort_explicit();
      }
      return t.load(c);
    }

    void store(TmCell& c, TmWord v) {
      const std::size_t s = st.index_of(&c);
      if (StripeTable::is_locked(t.load(st.word(s)))) t.abort_explicit();
      t.store(c, v);
      written.insert(static_cast<std::uint32_t>(s));
      if (redo != nullptr) redo->push_back({&c, v});
    }
  };

  template <class Body>
  void run(ThreadCtx& ctx, Body& body) {
    trace::tx_begin(ctx.trace_);
    if (cfg_.force_slow_path || cfg_.force_rh2) {
      run_slow(ctx, body, cfg_.force_rh2);
      return;
    }
    if (ctx.cm_.start_in_software()) {
      run_slow(ctx, body, false);  // adaptive software mode: skip doomed hardware
      return;
    }
    for (;;) {
      ctx.stats.count_attempt(ExecPath::kRh1Fast);
      trace::attempt(ctx.trace_, ExecPath::kRh1Fast);
      const bool poison = injector_.fire(ctx.rng_);
      const bool durable = u_.durable();
      ctx.fast_written_.clear();
      if (durable) ctx.fast_redo_.clear();  // aborted attempts leave entries behind
      TmWord fast_wv = 0;
      const HtmOutcome out = u_.htm().execute(ctx.tx_, [&](typename H::Tx& t) {
        if (poison) t.poison();
        FastHandle h{t, u_.stripes(), ctx.fast_written_,
                     durable ? &ctx.fast_redo_ : nullptr};
        body(h);
        fast_commit_stamp(t, ctx.fast_written_, &fast_wv);
      });
      if (out.ok()) {
        if (!ctx.fast_written_.empty()) u_.clock().note_hw_commit();
        if (durable && !ctx.fast_written_.empty()) {
          durable_publish(ctx.fast_redo_, ctx.fast_written_.items(), fast_wv,
                          pmem::kPathRh1Fast, ctx.trace_);
        }
        ctx.stats.count_commit(ExecPath::kRh1Fast);
        trace::commit(ctx.trace_, ExecPath::kRh1Fast);
        ctx.cm_.on_hardware_commit();
        return;
      }
      ctx.stats.count_abort(to_abort_cause(out.status));
      trace::abort(ctx.trace_, to_abort_cause(out.status));
      if (ctx.cm_.give_up_hardware(to_abort_cause(out.status), ctx.rng_)) {
        trace::escalate(ctx.trace_, ExecPath::kRh1Slow);
        run_slow(ctx, body, false);
        return;
      }
      ctx.cm_.backoff_hardware();
    }
  }

  /// Commit-point publication for the fast path: fresh clock, one stamp
  /// per distinct written stripe, and — only while RH2 readers exist —
  /// mask checks. In durable mode the stamps carry the lock bit: the
  /// transaction's in-memory effects become visible at _xend, but every
  /// written stripe stays locked until durable_publish() has logged,
  /// marked and applied them — so no reader consumes state that is not
  /// yet on the durable medium. `*wv_out` receives the commit version the
  /// post-_xend unlock releases to.
  void fast_commit_stamp(typename H::Tx& t, const StripeSet& written, TmWord* wv_out) {
    if (written.empty()) return;
    if (t.load(rh2_active_) != 0) {
      for (const std::uint32_t s : written.items()) {
        if (t.load(u_.stripes().read_mask(s)) != 0) t.abort_explicit();
      }
    }
    const TmWord wv = t.load(u_.clock().cell()) + 1;
    if (u_.clock().hw_writes_clock()) t.store(u_.clock().cell(), wv);
    const TmWord stamp = u_.durable()
                             ? (StripeTable::make_word(wv) | StripeTable::kLockBit)
                             : StripeTable::make_word(wv);
    for (const std::uint32_t s : written.items()) {
      t.store(u_.stripes().word(s), stamp);
    }
    *wv_out = wv;
  }

  // ---------------------------------------------------------------- slow --
  /// RH2 visible-read barrier; the RH1-slow barrier is the plain Tl2Handle.
  struct Rh2Handle {
    HybridTm& tm;
    ThreadCtx& ctx;
    TmWord rv;

    TmWord load(const TmCell& c) {
      if (const WriteEntry* e = ctx.ws_.find(c)) return e->value;
      const std::size_t s = tm.u_.stripes().index_of(&c);
      tm.publish_once(ctx, static_cast<std::uint32_t>(s));
      return detail::stripe_validated_read(tm.u_, c, s, rv, ctx.rs_);
    }

    void store(TmCell& c, TmWord v) {
      ctx.ws_.put(c, v, static_cast<std::uint32_t>(tm.u_.stripes().index_of(&c)));
    }
  };

  template <class Body>
  void run_slow(ThreadCtx& ctx, Body& body, bool rh2) {
    ctx.cm_.begin_software();
    for (;;) {
      const ExecPath path = rh2 ? ExecPath::kRh2Slow : ExecPath::kRh1Slow;
      ctx.stats.count_attempt(path);
      trace::attempt(ctx.trace_, path);
      ctx.rs_.clear();
      ctx.ws_.clear();
      const TmWord rv = u_.clock().read();
      try {
        if (!rh2) {
          detail::Tl2Handle<H> h{u_, ctx.rs_, ctx.ws_, rv};
          body(h);
          if (!rh1_reduced_commit(ctx, rv)) {
            rh2 = true;  // commit exceeds the hardware budget: go visible
            trace::escalate(ctx.trace_, ExecPath::kRh2Slow);
            continue;
          }
          ctx.stats.count_commit(ExecPath::kRh1Slow);
          trace::commit(ctx.trace_, ExecPath::kRh1Slow);
        } else {
          rh2_active_.word.fetch_add(1, std::memory_order_acq_rel);
          ctx.masks_.clear();
          try {
            Rh2Handle h{*this, ctx, rv};
            body(h);
            const ExecPath commit_path = rh2_commit(ctx, rv);
            unpublish_all(ctx);
            rh2_active_.word.fetch_sub(1, std::memory_order_acq_rel);
            ctx.stats.count_commit(commit_path);
            trace::commit(ctx.trace_, commit_path);
          } catch (...) {
            unpublish_all(ctx);
            rh2_active_.word.fetch_sub(1, std::memory_order_acq_rel);
            throw;
          }
        }
      } catch (const detail::StmAbort& a) {
        ctx.stats.count_abort(a.cause);
        trace::abort(ctx.trace_, a.cause);
        u_.clock().on_abort();
        if (u_.clock().cached()) trace::clock_publish(ctx.trace_);
        ctx.cm_.backoff_software();
        continue;
      }
      ctx.cm_.on_software_commit();
      return;
    }
  }

  /// The reduced hardware commit (§2.1): metadata-only read validation +
  /// write-set publication in one short HTM transaction. Returns false when
  /// the commit transaction cannot fit in hardware (escalate to RH2);
  /// throws StmAbort when validation fails (retry the whole transaction).
  ///
  /// Both metadata loops run over exact-deduped stripe views (the ReadSet
  /// logs each stripe once, the WriteSet keeps a distinct-stripe list), so
  /// the transaction's hardware footprint is proportional to the DISTINCT
  /// stripe count of the transaction — re-reading a hot stripe a hundred
  /// times costs one commit-time load, not a hundred.
  bool rh1_reduced_commit(ThreadCtx& ctx, TmWord rv) {
    if (ctx.ws_.empty()) return true;  // read-only: access-time validation suffices
    StripeTable& st = u_.stripes();
    const bool durable = u_.durable();
    unsigned tries = 0;
    for (;;) {
      TmWord wv_out = 0;
      const HtmOutcome out = u_.htm().execute(ctx.tx_, [&](typename H::Tx& t) {
        const auto& read_stripes = ctx.rs_.stripes();  // distinct by construction
        for (std::size_t i = 0; i < read_stripes.size(); ++i) {
          // Hide the next validation load's miss behind this one's check:
          // the stripe list is exact-deduped insertion order, so the walk
          // has no stride the hardware prefetcher could learn.
          if (i + 1 < read_stripes.size()) st.prefetch_word(read_stripes[i + 1]);
          const TmWord w = t.load(st.word(read_stripes[i]));
          if (StripeTable::is_locked(w) || StripeTable::version_of(w) > rv) {
            t.abort_explicit();
          }
        }
        const bool check_masks = t.load(rh2_active_) != 0;
        const TmWord wv = t.load(u_.clock().cell()) + 1;
        if (u_.clock().hw_writes_clock()) t.store(u_.clock().cell(), wv);
        // Durable: stamp LOCKED inside the hardware transaction, so the
        // values published at _xend stay unreadable until durable_publish()
        // has persisted them and unlocked to wv (fine-grained fast-path
        // locking — the reduced commit stays lock-free in non-durable mode).
        const TmWord stamped = durable
                                   ? (StripeTable::make_word(wv) | StripeTable::kLockBit)
                                   : StripeTable::make_word(wv);
        const auto& write_stripes = ctx.ws_.write_stripes();  // one stamp per stripe
        for (std::size_t i = 0; i < write_stripes.size(); ++i) {
          if (i + 1 < write_stripes.size()) {
            st.prefetch_word(write_stripes[i + 1], /*for_write=*/true);
          }
          const std::uint32_t s = write_stripes[i];
          if (StripeTable::is_locked(t.load(st.word(s)))) t.abort_explicit();
          if (check_masks && t.load(st.read_mask(s)) != 0) t.abort_explicit();
          t.store(st.word(s), stamped);
        }
        for (const WriteEntry& e : ctx.ws_.entries()) {
          t.store(*e.cell, e.value);
        }
        wv_out = wv;
      });
      if (out.ok()) {
        u_.clock().note_hw_commit();
        if (durable) {
          durable_publish(ctx.ws_.entries(), ctx.ws_.write_stripes(), wv_out,
                          pmem::kPathRh1, ctx.trace_);
        }
        return true;
      }
      if (out.status == HtmStatus::kCapacity) {
        // The reduced commit itself overflowed hardware; the transaction
        // re-executes with visible reads (RH2), so this is a real abort —
        // count it, or capacity escalation is invisible in every report.
        ctx.stats.count_abort(AbortCause::kHtmCapacity);
        trace::abort(ctx.trace_, AbortCause::kHtmCapacity);
        return false;
      }
      if (out.status == HtmStatus::kExplicit || ++tries >= cfg_.commit_retries) {
        throw detail::StmAbort{AbortCause::kStmValidation};
      }
      ctx.cm_.backoff_commit(tries);
    }
  }

  /// RH2 commit: write-set-only hardware transaction. Reads are protected by
  /// the published masks, so the transaction never touches read metadata —
  /// it only refuses to overwrite stripes carrying *foreign* readers.
  /// Escalates to the all-software slow-slow commit when hardware fails.
  ExecPath rh2_commit(ThreadCtx& ctx, TmWord rv) {
    if (ctx.ws_.empty()) return ExecPath::kRh2Slow;  // visible reads validated at access
    StripeTable& st = u_.stripes();
    const bool durable = u_.durable();
    unsigned tries = 0;
    for (;;) {
      TmWord wv_out = 0;
      const HtmOutcome out = u_.htm().execute(ctx.tx_, [&](typename H::Tx& t) {
        const TmWord wv = t.load(u_.clock().cell()) + 1;
        if (u_.clock().hw_writes_clock()) t.store(u_.clock().cell(), wv);
        // Same durable discipline as the reduced commit: locked stamps in
        // hardware, persist + unlock after _xend.
        const TmWord stamped = durable
                                   ? (StripeTable::make_word(wv) | StripeTable::kLockBit)
                                   : StripeTable::make_word(wv);
        for (const std::uint32_t s : ctx.ws_.write_stripes()) {  // one check+stamp each
          const TmWord w = t.load(st.word(s));
          if (StripeTable::is_locked(w) || StripeTable::version_of(w) > rv) {
            t.abort_explicit();
          }
          if (t.load(st.read_mask(s)) > self_mask(ctx, s)) {
            t.abort_explicit();  // a foreign visible reader holds this stripe
          }
          t.store(st.word(s), stamped);
        }
        for (const WriteEntry& e : ctx.ws_.entries()) {
          t.store(*e.cell, e.value);
        }
        wv_out = wv;
      });
      if (out.ok()) {
        u_.clock().note_hw_commit();
        if (durable) {
          durable_publish(ctx.ws_.entries(), ctx.ws_.write_stripes(), wv_out,
                          pmem::kPathRh2, ctx.trace_);
        }
        return ExecPath::kRh2Slow;
      }
      if (out.status == HtmStatus::kExplicit) throw detail::StmAbort{AbortCause::kStmValidation};
      if (out.status == HtmStatus::kCapacity || ++tries >= cfg_.commit_retries) {
        if (out.status == HtmStatus::kCapacity) {
          // Same observability rule as the reduced commit: the hardware
          // commit overflowed, and escalation must be visible in reports
          // even though the slow-slow commit completes this same attempt.
          ctx.stats.count_abort(AbortCause::kHtmCapacity);
          trace::abort(ctx.trace_, AbortCause::kHtmCapacity);
        }
        trace::escalate(ctx.trace_, ExecPath::kRh2SlowSlow);
        detail::tl2_software_commit(u_, ctx.rs_, ctx.ws_, rv, ctx.lock_scratch_, &ctx.masks_,
                                    ctx.trace_);
        return ExecPath::kRh2SlowSlow;
      }
      ctx.cm_.backoff_commit(tries);
    }
  }

  /// Post-_xend persist sequence shared by the durable hardware commits
  /// (fast, reduced, RH2). The transaction already published its values and
  /// LOCKED stripe stamps atomically at _xend; while the locks are held, no
  /// reader — the durable fast path checks the lock bit, software reads
  /// validate it — can consume the new state. Log, mark (the durability
  /// point), apply to the image, then release the locks to the commit
  /// version. Marker order therefore respects stripe-conflict serialization.
  /// A crash anywhere in this sequence abandons only in-memory locks (they
  /// die with the process); recovery replays or discards from the log.
  template <class Entries, class Stripes>
  void durable_publish(const Entries& entries, const Stripes& stripes, TmWord wv,
                       const char* path, trace::TraceRing* ring) {
    PersistentDomain& pd = u_.pmem();
    const std::uint64_t t0 = rdtsc();
    const std::uint64_t txid = pd.durable_log(entries, path);
    const std::uint64_t t1 = rdtsc();
    trace::durable_phase(ring, trace::EventKind::kDurLog, t1 - t0);
    pd.durable_mark(txid, path);
    const std::uint64_t t2 = rdtsc();
    trace::durable_phase(ring, trace::EventKind::kDurMark, t2 - t1);
    pd.durable_apply(entries, path);
    trace::durable_phase(ring, trace::EventKind::kDurApply, rdtsc() - t2);
    for (const std::uint32_t s : stripes) u_.stripes().unlock_to(s, wv);
  }

  void publish_once(ThreadCtx& ctx, std::uint32_t stripe) {
    if (ctx.masks_.insert(stripe)) u_.stripes().publish_read(stripe);
  }

  void unpublish_all(ThreadCtx& ctx) {
    for (const std::uint32_t s : ctx.masks_.items()) u_.stripes().unpublish_read(s);
    ctx.masks_.clear();
  }

  /// 1 when this transaction published a read mask on `stripe`, else 0.
  /// O(1): the mask set is an exact stripe set, not a scanned list.
  [[nodiscard]] TmWord self_mask(const ThreadCtx& ctx, std::uint32_t stripe) const {
    return ctx.masks_.contains(stripe) ? 1 : 0;
  }

  TmUniverse<H>& u_;
  Config cfg_;
  AbortInjector injector_;
  TmCell rh2_active_;  ///< live RH2 transactions; committers subscribe

 public:
  /// Exposed for tests: number of in-flight RH2 transactions.
  [[nodiscard]] TmWord rh2_active() const { return rh2_active_.unsafe_load(); }
};

}  // namespace rhtm
