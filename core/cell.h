#pragma once

// The transactional memory word. Every piece of transactional state — data
// words, stripe version words, the global clock, protocol lock words — is a
// TmCell so the hardware substrates can load/store it inside a transaction
// and the software paths can access it atomically outside one.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace rhtm {

using TmWord = std::uint64_t;

struct TmCell {
  std::atomic<TmWord> word{0};

  TmCell() = default;
  explicit TmCell(TmWord v) : word(v) {}
  TmCell(const TmCell&) = delete;
  TmCell& operator=(const TmCell&) = delete;

  /// Non-transactional accessors for initialization and tests.
  [[nodiscard]] TmWord unsafe_load() const { return word.load(std::memory_order_relaxed); }
  void unsafe_store(TmWord v) { word.store(v, std::memory_order_relaxed); }
};

/// A typed transactional variable. All transactional access goes through a
/// protocol handle `h` providing `TmWord load(const TmCell&)` and
/// `void store(TmCell&, TmWord)`; the handle decides the barrier (plain
/// hardware access, TL2 read barrier, write-set insert, ...).
template <class T = TmWord>
class TVar {
  static_assert(sizeof(T) <= sizeof(TmWord) && std::is_trivially_copyable_v<T>,
                "TVar payload must fit a TmWord");

 public:
  TVar() = default;
  explicit TVar(T v) : cell_(to_word(v)) {}

  template <class Handle>
  T read(Handle& h) const {
    return from_word(h.load(cell_));
  }

  template <class Handle>
  void write(Handle& h, T v) const {
    h.store(cell_, to_word(v));
  }

  [[nodiscard]] T unsafe_read() const { return from_word(cell_.unsafe_load()); }
  void unsafe_write(T v) const { cell_.unsafe_store(to_word(v)); }

  [[nodiscard]] TmCell& cell() const { return cell_; }

 private:
  static TmWord to_word(T v) {
    TmWord w = 0;
    std::memcpy(&w, &v, sizeof(T));
    return w;
  }
  static T from_word(TmWord w) {
    T v;
    std::memcpy(&v, &w, sizeof(T));
    return v;
  }

  mutable TmCell cell_;
};

/// A protocol-handle-shaped wrapper over the unsafe accessors: lets
/// templated transactional algorithms (tree descent, queue ops, invariant
/// walks) run outside any transaction — for single-threaded initialization
/// and quiescent validation in tests. Never use it while other threads run
/// transactions over the same cells.
struct UnsafeHandle {
  TmWord load(const TmCell& c) { return c.unsafe_load(); }
  void store(TmCell& c, TmWord v) { c.unsafe_store(v); }
};

}  // namespace rhtm
