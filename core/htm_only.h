#pragma once

// HtmOnly — the paper's "HTM" series: every transaction is one hardware
// transaction with completely uninstrumented accesses. The only concession
// to liveness is a global-seqlock fallback for transactions that
// deterministically exceed the hardware budget (classic lock elision);
// hardware attempts subscribe to the fallback lock so the two are mutually
// atomic on the simulated substrate.
//
// HtmOnly is NOT durable-capable: with zero instrumentation there is
// nowhere to capture a redo log, so it ignores TmUniverse durability mode
// (the durable scenarios exclude it). The durable hardware-commit designs
// live in core/rh1.h and core/ext_hybrids.h.

#include <cstdint>

#include "core/stats.h"
#include "core/universe.h"

namespace rhtm {

namespace detail {

/// Seqlock used as the non-speculative fallback: odd = held.
class FallbackLock {
 public:
  [[nodiscard]] TmCell& cell() { return cell_; }

  void acquire() {
    for (;;) {
      TmWord s = cell_.word.load(std::memory_order_acquire);
      if ((s & 1) == 0 &&
          cell_.word.compare_exchange_weak(s, s + 1, std::memory_order_acq_rel)) {
        return;
      }
      cpu_relax();
    }
  }
  void release() { cell_.word.fetch_add(1, std::memory_order_acq_rel); }

  /// Hardware-side subscription: read the lock word inside the transaction
  /// and bail if it is held. Any later acquire/release changes the word, so
  /// the simulated substrate's commit validation aborts the transaction.
  template <class Tx>
  void subscribe(Tx& t) {
    if ((t.load(cell_) & 1) != 0) t.abort_explicit();
  }

 private:
  TmCell cell_;
};

/// Uninstrumented transactional accessors over a hardware transaction.
template <class Tx>
struct HwPlainHandle {
  Tx& t;
  TmWord load(const TmCell& c) { return t.load(c); }
  void store(TmCell& c, TmWord v) { t.store(c, v); }
};

/// Plain accessors for code running under the fallback lock.
template <class H>
struct NonSpecHandle {
  H& htm;
  TmWord load(const TmCell& c) { return htm.nontx_load(c); }
  void store(TmCell& c, TmWord v) { htm.nontx_store(c, v); }
};

}  // namespace detail

template <class H>
class HtmOnly {
 public:
  struct Config {
    std::uint32_t inject_abort_bp = 0;
    unsigned capacity_retries = 4;  ///< capacity aborts before the lock fallback
  };

  class ThreadCtx {
   public:
    explicit ThreadCtx(HtmOnly& tm)
        : tx_(tm.u_.htm()),
          rng_(detail::next_ctx_seed()),
          cm_(tm.u_.config().cm,
              ContentionManager::Limits{0, 0, tm.cfg_.capacity_retries}),
          trace_(tm.u_.acquire_trace_ring()) {
      cm_.set_trace(trace_);
    }
    TxStats stats;

   private:
    friend class HtmOnly;
    typename H::Tx tx_;
    Xoshiro256 rng_;
    ContentionManager cm_;
    trace::TraceRing* trace_;
  };

  explicit HtmOnly(TmUniverse<H>& u, Config cfg = {}) : u_(u), cfg_(cfg),
                                                        injector_(cfg.inject_abort_bp) {}

  template <class Body>
  void atomically(ThreadCtx& ctx, Body&& body) {
    detail::timed_section(ctx.stats, [&] { run(ctx, body); });
  }

 private:
  template <class Body>
  void run(ThreadCtx& ctx, Body& body) {
    trace::tx_begin(ctx.trace_);
    if (!ctx.cm_.start_in_software()) {
      for (;;) {
        ctx.stats.count_attempt(ExecPath::kHtm);
        trace::attempt(ctx.trace_, ExecPath::kHtm);
        const bool poison = injector_.fire(ctx.rng_);
        const HtmOutcome out = u_.htm().execute(ctx.tx_, [&](typename H::Tx& t) {
          fallback_.subscribe(t);
          if (poison) t.poison();
          detail::HwPlainHandle<typename H::Tx> h{t};
          body(h);
        });
        if (out.ok()) {
          ctx.stats.count_commit(ExecPath::kHtm);
          trace::commit(ctx.trace_, ExecPath::kHtm);
          ctx.cm_.on_hardware_commit();
          return;
        }
        ctx.stats.count_abort(to_abort_cause(out.status));
        trace::abort(ctx.trace_, to_abort_cause(out.status));
        // Fixed policy gives up only on deterministic overflow; adaptive may
        // also retire a hopeless conflict streak to the lock.
        if (ctx.cm_.give_up_hardware(to_abort_cause(out.status), ctx.rng_)) break;
        ctx.cm_.backoff_hardware();
      }
    }
    trace::fallback_lock(ctx.trace_);
    fallback_.acquire();
    detail::NonSpecHandle<H> h{u_.htm()};
    body(h);
    fallback_.release();
    ctx.stats.count_commit(ExecPath::kHtm);
    trace::commit(ctx.trace_, ExecPath::kHtm);
    ctx.cm_.on_software_commit();
  }

  TmUniverse<H>& u_;
  Config cfg_;
  AbortInjector injector_;
  detail::FallbackLock fallback_;
};

}  // namespace rhtm
