#pragma once

// NUMA topology discovery — the geometry layer the socket-sharded universe
// (core/stripe.h shards, core/clock.h socket caches) and the --pin affinity
// policies (workloads/driver.h) share, so pinning and sharding always agree
// on which CPU belongs to which socket.
//
// Discovery reads the Linux sysfs node directory
// (/sys/devices/system/node/node<N>/cpulist, "0-9,20-29" range syntax).
// Where that fails — non-Linux, containers that hide sysfs, single-node
// boxes with no node dirs — it falls back to ONE socket spanning every CPU
// (`discovered() == false`), which reproduces the pre-NUMA flat behaviour
// exactly. Tests inject fake topologies (Topology::fake / from_sysfs over a
// scratch directory) so every multi-socket code path is exercisable on a
// single-socket CI runner.
//
// Geometry conventions (the single source of truth):
//  * compact placement: sockets are filled one at a time, each socket's
//    CPUs in sysfs order (compact_cpu(t) = t-th CPU of that concatenation);
//  * scatter placement: threads round-robin ACROSS sockets first
//    (scatter_cpu(t) lands on socket t % socket_count), so thread t and the
//    stripe shard t % shard_count share a home socket;
//  * shard s of a sharded stripe table is first-touched on socket
//    s % socket_count (core/stripe.h follows this rule).

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include <thread>

namespace rhtm {

// -------------------------------------------------------------- numa mode --

/// The NUMA axis of UniverseConfig (--numa bench flag):
///  * off         — flat stripe table + plain clock: bit-identical to the
///                  pre-NUMA universe (the replay tests pin this).
///  * shard       — stripe table sharded per socket, first-touch allocated.
///  * shard+clock — sharding plus the per-socket cached version clock.
enum class NumaMode : int { kOff = 0, kShard, kShardClock };

[[nodiscard]] inline const char* to_string(NumaMode m) {
  switch (m) {
    case NumaMode::kOff: return "off";
    case NumaMode::kShard: return "shard";
    case NumaMode::kShardClock: return "shard+clock";
  }
  return "?";
}

/// Parses a canonical numa-mode name. Returns false on an unknown name.
[[nodiscard]] inline bool parse_numa_mode(const char* name, NumaMode* out) {
  for (const NumaMode m : {NumaMode::kOff, NumaMode::kShard, NumaMode::kShardClock}) {
    if (std::strcmp(name, to_string(m)) == 0) {
      *out = m;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------- cpulist parse --

/// Parses the sysfs cpulist syntax ("0-3,8,10-11", trailing newline
/// tolerated) into ascending CPU ids. An empty/whitespace-only list is
/// valid and yields no CPUs (memory-only NUMA nodes have one). Returns
/// false on malformed text (the caller treats the node as undiscoverable).
[[nodiscard]] inline bool parse_cpulist(const char* text, std::vector<unsigned>* out) {
  out->clear();
  const char* p = text;
  const auto skip_ws = [&] {
    while (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r') ++p;
  };
  skip_ws();
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long lo = std::strtoul(p, &end, 10);
    if (end == p || lo > 0xffffffu) return false;
    unsigned long hi = lo;
    p = end;
    if (*p == '-') {
      ++p;
      hi = std::strtoul(p, &end, 10);
      if (end == p || hi < lo || hi > 0xffffffu) return false;
      p = end;
    }
    for (unsigned long c = lo; c <= hi; ++c) out->push_back(static_cast<unsigned>(c));
    skip_ws();
    if (*p == ',') {
      ++p;
      skip_ws();
      if (*p == '\0') return false;  // dangling comma
      continue;
    }
    if (*p != '\0') return false;
  }
  return true;
}

// --------------------------------------------------------------- topology --

class Topology {
 public:
  /// The fallback geometry: one socket spanning CPUs [0, ncpu).
  [[nodiscard]] static Topology single_node(unsigned ncpu) {
    Topology t;
    t.sockets_.emplace_back();
    for (unsigned c = 0; c < (ncpu == 0 ? 1 : ncpu); ++c) t.sockets_[0].push_back(c);
    t.discovered_ = false;
    t.finalize();
    return t;
  }

  /// An injected geometry for tests/benches (counts as discovered). Empty
  /// socket lists are dropped; an entirely empty spec degrades to
  /// single_node(1).
  [[nodiscard]] static Topology fake(std::vector<std::vector<unsigned>> sockets) {
    Topology t;
    for (auto& s : sockets) {
      if (!s.empty()) t.sockets_.push_back(std::move(s));
    }
    if (t.sockets_.empty()) return single_node(1);
    t.discovered_ = true;
    t.finalize();
    return t;
  }

  /// Discovery over a sysfs-style node directory: reads
  /// `<node_root>/node<N>/cpulist` for N = 0, 1, ... until the first
  /// missing node. Any parse failure, or no node with CPUs at all, falls
  /// back to single_node over the hardware concurrency.
  [[nodiscard]] static Topology from_sysfs(const std::string& node_root) {
    Topology t;
    for (unsigned n = 0; n < kMaxNodes; ++n) {
      const std::string path = node_root + "/node" + std::to_string(n) + "/cpulist";
      std::FILE* f = std::fopen(path.c_str(), "r");
      if (f == nullptr) break;
      char buf[4096];
      const std::size_t got = std::fread(buf, 1, sizeof buf - 1, f);
      std::fclose(f);
      buf[got] = '\0';
      std::vector<unsigned> cpus;
      if (!parse_cpulist(buf, &cpus)) {
        t.sockets_.clear();
        break;
      }
      if (!cpus.empty()) t.sockets_.push_back(std::move(cpus));
    }
    if (t.sockets_.empty()) {
      return single_node(std::thread::hardware_concurrency());
    }
    t.discovered_ = true;
    t.finalize();
    return t;
  }

  /// The host's topology, discovered once per process.
  [[nodiscard]] static const Topology& system() {
    static const Topology t = from_sysfs("/sys/devices/system/node");
    return t;
  }

  /// False when discovery fell back to the single-node geometry.
  [[nodiscard]] bool discovered() const { return discovered_; }
  [[nodiscard]] unsigned socket_count() const {
    return static_cast<unsigned>(sockets_.size());
  }
  [[nodiscard]] unsigned cpu_count() const {
    return static_cast<unsigned>(compact_order_.size());
  }
  [[nodiscard]] const std::vector<unsigned>& cpus_of_socket(unsigned s) const {
    return sockets_[s % sockets_.size()];
  }

  /// The socket owning `cpu`, or -1 for a CPU the topology does not cover.
  [[nodiscard]] int socket_of_cpu(unsigned cpu) const {
    if (cpu >= socket_of_cpu_.size()) return -1;
    return socket_of_cpu_[cpu];
  }

  /// Compact placement: fill each socket's CPUs before moving to the next.
  [[nodiscard]] unsigned compact_cpu(unsigned tid) const {
    return compact_order_[tid % compact_order_.size()];
  }

  /// Scatter placement: round-robin across sockets first — thread t lands
  /// on socket t % socket_count (the shard home-socket rule), walking that
  /// socket's CPUs in order as tids wrap around.
  [[nodiscard]] unsigned scatter_cpu(unsigned tid) const {
    const unsigned s = tid % socket_count();
    const std::vector<unsigned>& cpus = sockets_[s];
    return cpus[(tid / socket_count()) % cpus.size()];
  }

 private:
  static constexpr unsigned kMaxNodes = 1024;

  void finalize() {
    compact_order_.clear();
    unsigned max_cpu = 0;
    for (const auto& s : sockets_) {
      for (const unsigned c : s) {
        compact_order_.push_back(c);
        max_cpu = c > max_cpu ? c : max_cpu;
      }
    }
    socket_of_cpu_.assign(static_cast<std::size_t>(max_cpu) + 1, -1);
    for (std::size_t s = 0; s < sockets_.size(); ++s) {
      for (const unsigned c : sockets_[s]) socket_of_cpu_[c] = static_cast<int>(s);
    }
  }

  std::vector<std::vector<unsigned>> sockets_;
  std::vector<int> socket_of_cpu_;
  std::vector<unsigned> compact_order_;
  bool discovered_ = false;
};

// --------------------------------------------------------- thread helpers --

/// Best-effort pin of the calling thread to one absolute CPU id (the
/// first-touch builder in core/stripe.h and the per-socket sweeps use it).
/// Returns false where unsupported or when the syscall fails.
inline bool pin_this_thread_to_cpu(unsigned cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

namespace detail_topology {
/// Test hook: forces current_socket_of_thread to a fixed socket on this
/// thread (-1 = disabled). Lets single-socket CI exercise the per-socket
/// clock caches deterministically.
inline int& thread_socket_override() {
  thread_local int s = -1;
  return s;
}
}  // namespace detail_topology

inline void set_thread_socket_override(int socket) {
  detail_topology::thread_socket_override() = socket;
}

/// The socket the calling thread currently runs on, resolved once per
/// (thread, topology) — measurement threads are pinned before their first
/// transaction, so one resolution is exact; for unpinned threads a stale
/// answer only means publishing to a non-home cache, which the cached
/// clock's monotonic-replica invariant keeps safe (core/clock.h).
[[nodiscard]] inline unsigned current_socket_of_thread(const Topology& topo) {
  const int forced = detail_topology::thread_socket_override();
  if (forced >= 0) return static_cast<unsigned>(forced) % topo.socket_count();
  if (topo.socket_count() <= 1) return 0;
  thread_local const Topology* resolved_for = nullptr;
  thread_local unsigned resolved = 0;
  if (resolved_for == &topo) return resolved;
  unsigned s = 0;
#if defined(__linux__)
  const int cpu = sched_getcpu();
  if (cpu >= 0) {
    const int so = topo.socket_of_cpu(static_cast<unsigned>(cpu));
    if (so >= 0) s = static_cast<unsigned>(so);
  }
#endif
  resolved_for = &topo;
  resolved = s;
  return s;
}

}  // namespace rhtm
