#pragma once

// PMU-grounded RTM abort attribution: per-thread perf_event_open counters
// for Intel's RTM retirement events, aggregated into the rtm substrate's
// stats. The _xbegin status bits already classify each abort's cause; the
// PMU grounds the *aggregate* in hardware truth — how many transactional
// regions actually started, how many committed, and how many in-transaction
// cycles were thrown away on aborted speculation (the hardware's own
// wasted-work measure, independent of our software counters).
//
// Events (raw encodings, Intel SDM Vol 3 ch. 19 — stable across the
// RTM-capable generations):
//   RTM_RETIRED.START   event 0xC9 umask 0x01 -> raw config 0x01C9
//   RTM_RETIRED.COMMIT  event 0xC9 umask 0x02 -> raw config 0x02C9
//   CPU_CLK_UNHALTED.THREAD_P with the IN_TX flag      (cycles inside RTM)
//   ... with IN_TX_CP (checkpointed: aborted cycles rolled back)
// aborted cycles = cycles_in_tx - cycles_in_tx_checkpointed.
//
// Graceful unavailable-fallback is the contract: perf may be denied
// (perf_event_paranoid, seccomp, containers), absent (no PMU, VMs), or the
// events unsupported (non-Intel, no TSX) — every failure mode leaves the
// counters marked unavailable and costs one syscall per process (the first
// failing errno is latched), never a crash and never a changed run. Each
// counter is opened per-thread (pid=0, any cpu) in its own group, so a
// partially schedulable PMU degrades per event, not wholesale.

#include <atomic>
#include <cstdint>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace rhtm::pmu {

// Raw perf configs (PERF_TYPE_RAW). The IN_TX/IN_TX_CP flags live at bits
// 32/33 of the raw config in perf's x86 encoding.
constexpr std::uint64_t kEvtRtmStart = 0x01c9;
constexpr std::uint64_t kEvtRtmCommit = 0x02c9;
constexpr std::uint64_t kEvtCyclesInTx = 0x003c | (1ull << 32);
constexpr std::uint64_t kEvtCyclesInTxCp = 0x003c | (1ull << 32) | (1ull << 33);

/// One reading of a thread's RTM counters. `valid` covers start/commit;
/// `cycles_valid` the two in-transaction cycle counters (a PMU can support
/// the former and not the latter).
struct RtmSample {
  bool valid = false;
  bool cycles_valid = false;
  std::uint64_t tx_starts = 0;
  std::uint64_t tx_commits = 0;
  std::uint64_t cycles_in_tx = 0;
  std::uint64_t cycles_in_tx_cp = 0;

  /// Cycles spent inside transactions that aborted (work thrown away).
  [[nodiscard]] std::uint64_t aborted_cycles() const {
    return cycles_in_tx > cycles_in_tx_cp ? cycles_in_tx - cycles_in_tx_cp : 0;
  }
};

/// Process-wide aggregate, merged from per-thread counters as protocol
/// thread contexts retire. Plain-struct snapshots let benches delta a run.
struct RtmTotalsSnapshot {
  std::uint64_t threads_sampled = 0;
  std::uint64_t threads_with_cycles = 0;
  std::uint64_t tx_starts = 0;
  std::uint64_t tx_commits = 0;
  std::uint64_t cycles_in_tx = 0;
  std::uint64_t cycles_in_tx_cp = 0;

  [[nodiscard]] std::uint64_t aborted_cycles() const {
    return cycles_in_tx > cycles_in_tx_cp ? cycles_in_tx - cycles_in_tx_cp : 0;
  }
};

class RtmTotals {
 public:
  void merge(const RtmSample& s) {
    if (!s.valid) return;
    threads_sampled_.fetch_add(1, std::memory_order_relaxed);
    tx_starts_.fetch_add(s.tx_starts, std::memory_order_relaxed);
    tx_commits_.fetch_add(s.tx_commits, std::memory_order_relaxed);
    if (s.cycles_valid) {
      threads_with_cycles_.fetch_add(1, std::memory_order_relaxed);
      cycles_in_tx_.fetch_add(s.cycles_in_tx, std::memory_order_relaxed);
      cycles_in_tx_cp_.fetch_add(s.cycles_in_tx_cp, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] RtmTotalsSnapshot snapshot() const {
    RtmTotalsSnapshot s;
    s.threads_sampled = threads_sampled_.load(std::memory_order_relaxed);
    s.threads_with_cycles = threads_with_cycles_.load(std::memory_order_relaxed);
    s.tx_starts = tx_starts_.load(std::memory_order_relaxed);
    s.tx_commits = tx_commits_.load(std::memory_order_relaxed);
    s.cycles_in_tx = cycles_in_tx_.load(std::memory_order_relaxed);
    s.cycles_in_tx_cp = cycles_in_tx_cp_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<std::uint64_t> threads_sampled_{0};
  std::atomic<std::uint64_t> threads_with_cycles_{0};
  std::atomic<std::uint64_t> tx_starts_{0};
  std::atomic<std::uint64_t> tx_commits_{0};
  std::atomic<std::uint64_t> cycles_in_tx_{0};
  std::atomic<std::uint64_t> cycles_in_tx_cp_{0};
};

/// Maps a perf_event_open errno to a stable diagnostic (JSON meta value).
[[nodiscard]] inline const char* open_error_reason(int err) {
#if defined(__linux__)
  switch (err) {
    case EACCES:
    case EPERM:
      return "EACCES (perf_event_paranoid or seccomp denies perf_event_open)";
    case ENOENT: return "ENOENT (event not supported on this PMU)";
    case ENODEV: return "ENODEV (no PMU exposed, likely a VM)";
    case EOPNOTSUPP: return "EOPNOTSUPP (PMU feature unavailable)";
    case EINVAL: return "EINVAL (event encoding rejected)";
    case ENOSYS: return "ENOSYS (kernel without perf_event_open)";
    default: return "perf_event_open failed";
  }
#else
  (void)err;
  return "perf_event_open is Linux-only";
#endif
}

/// Per-thread RTM counter set. Open one per protocol thread context (worker
/// threads construct their own contexts, so pid=0 counts the right thread);
/// sample() reads the running totals; the destructor closes the fds.
class RtmCounters {
 public:
  /// Test seam: opens one counter for `config`, returns an fd >= 0 or
  /// -errno. The default implementation is the real perf_event_open.
  using OpenFn = int (*)(std::uint64_t config);

  /// `try_open=false` constructs a permanently-unavailable instance at zero
  /// cost (non-rtm builds, substrates without hardware). The real opener
  /// latches the first failing errno process-wide, so in denied
  /// environments only the first thread pays the syscall.
  explicit RtmCounters(bool try_open = true) {
    if (!try_open) {
      reason_ = "not requested (no RTM hardware in use)";
      return;
    }
    const int latched = latched_errno().load(std::memory_order_relaxed);
    if (latched != 0) {
      reason_ = open_error_reason(latched);
      return;
    }
    open_all(&default_open, /*latch=*/true);
  }

  /// Injected-opener constructor (tests): no process-wide latching.
  explicit RtmCounters(OpenFn opener) { open_all(opener, /*latch=*/false); }

  RtmCounters(const RtmCounters&) = delete;
  RtmCounters& operator=(const RtmCounters&) = delete;

  ~RtmCounters() {
#if defined(__linux__)
    for (const int fd : {fd_start_, fd_commit_, fd_cyc_, fd_cyc_cp_}) {
      if (fd >= 0) ::close(fd);
    }
#endif
  }

  /// True when start/commit counters are live (cycles may still be absent).
  [[nodiscard]] bool available() const { return fd_start_ >= 0 && fd_commit_ >= 0; }
  [[nodiscard]] bool cycles_available() const { return fd_cyc_ >= 0 && fd_cyc_cp_ >= 0; }
  /// Why the counters are unavailable (static string; valid when !available).
  [[nodiscard]] const char* reason() const { return reason_; }

  /// The first errno the real opener hit in this process, 0 if none.
  [[nodiscard]] static int first_open_errno() {
    return latched_errno().load(std::memory_order_relaxed);
  }

  [[nodiscard]] RtmSample sample() const {
    RtmSample s;
    if (!available()) return s;
    s.valid = read_u64(fd_start_, &s.tx_starts) && read_u64(fd_commit_, &s.tx_commits);
    if (s.valid && cycles_available()) {
      s.cycles_valid =
          read_u64(fd_cyc_, &s.cycles_in_tx) && read_u64(fd_cyc_cp_, &s.cycles_in_tx_cp);
    }
    return s;
  }

 private:
  void open_all(OpenFn opener, bool latch) {
#if defined(__linux__)
    fd_start_ = opener(kEvtRtmStart);
    if (fd_start_ < 0) {
      fail(-fd_start_, latch);
      fd_start_ = -1;
      return;
    }
    fd_commit_ = opener(kEvtRtmCommit);
    if (fd_commit_ < 0) {
      fail(-fd_commit_, latch);
      ::close(fd_start_);
      fd_start_ = -1;
      fd_commit_ = -1;
      return;
    }
    // Cycle counters are best-effort: some PMUs schedule the RTM retirement
    // events but reject the IN_TX cycle flags.
    fd_cyc_ = opener(kEvtCyclesInTx);
    fd_cyc_cp_ = fd_cyc_ >= 0 ? opener(kEvtCyclesInTxCp) : -1;
    if (fd_cyc_cp_ < 0) {
      if (fd_cyc_ >= 0) ::close(fd_cyc_);
      fd_cyc_ = -1;
      fd_cyc_cp_ = -1;
    }
#else
    (void)opener;
    (void)latch;
    reason_ = "perf_event_open is Linux-only";
#endif
  }

  void fail(int err, bool latch) {
    reason_ = open_error_reason(err);
    if (latch) {
      int expected = 0;
      latched_errno().compare_exchange_strong(expected, err, std::memory_order_relaxed);
    }
  }

  static std::atomic<int>& latched_errno() {
    static std::atomic<int> e{0};
    return e;
  }

  static bool read_u64(int fd, std::uint64_t* out) {
#if defined(__linux__)
    return ::read(fd, out, sizeof(*out)) == static_cast<ssize_t>(sizeof(*out));
#else
    (void)fd;
    (void)out;
    return false;
#endif
  }

#if defined(__linux__)
  static int default_open(std::uint64_t config) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof attr);
    attr.type = PERF_TYPE_RAW;
    attr.size = sizeof attr;
    attr.config = config;
    attr.disabled = 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    const long fd = ::syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0ul);
    return fd >= 0 ? static_cast<int>(fd) : -errno;
  }
#else
  static int default_open(std::uint64_t) { return -1; }
#endif

  int fd_start_ = -1;
  int fd_commit_ = -1;
  int fd_cyc_ = -1;
  int fd_cyc_cp_ = -1;
  const char* reason_ = "";
};

}  // namespace rhtm::pmu
