#pragma once

// HtmSim — the simulated best-effort HTM substrate: software read/write-set
// tracking with genuine atomicity and conflict detection. Loads are
// value-logged, stores are buffered, and commit validates the read log and
// publishes the write buffer under a global commit lock. Capacity is
// accounted in distinct lines, so capacity aborts are real (the extension
// benches and the A3 headroom ablation rely on this). Slower than HtmEmul
// by design: fidelity over speed.

#include <utility>
#include <vector>

#include "core/htm_common.h"

namespace rhtm {

class HtmSim {
 public:
  HtmSim() = default;
  explicit HtmSim(const HtmConfig& cfg) : cfg_(cfg) {}

  [[nodiscard]] const HtmConfig& config() const { return cfg_; }

  class Tx {
   public:
    explicit Tx(HtmSim& htm) : htm_(htm) {}

    TmWord load(const TmCell& c) {
      if (const WriteEnt* e = find_write(&c)) return e->value;  // read-after-write
      const TmWord v = c.word.load(std::memory_order_acquire);
      read_log_.push_back({&c, v});
      if (read_lines_.insert(detail::line_of(&c, htm_.cfg_.line_shift)) &&
          read_lines_.count() > htm_.cfg_.max_read_set) {
        throw detail::HtmAbort{HtmStatus::kCapacity};
      }
      return v;
    }

    void store(TmCell& c, TmWord v) {
      put_write(&c, v);
      if (write_lines_.insert(detail::line_of(&c, htm_.cfg_.line_shift)) &&
          write_lines_.count() > htm_.cfg_.max_write_set) {
        throw detail::HtmAbort{HtmStatus::kCapacity};
      }
    }

    [[noreturn]] void abort_explicit() { throw detail::HtmAbort{HtmStatus::kExplicit}; }

    void poison() { poisoned_ = true; }

   private:
    friend class HtmSim;

    struct WriteEnt {
      TmCell* cell;
      TmWord value;
    };

    void reset() {
      read_log_.clear();
      writes_.clear();
      read_lines_.clear();
      write_lines_.clear();
      write_index_.clear();
      poisoned_ = false;
    }

    const WriteEnt* find_write(const TmCell* c) const {
      if (write_index_.count() == 0) return nullptr;
      const std::size_t idx = write_index_.find(reinterpret_cast<std::uintptr_t>(c));
      return idx != kNoSlot ? &writes_[idx] : nullptr;
    }

    void put_write(TmCell* c, TmWord v) {
      const std::size_t idx = write_index_.find(reinterpret_cast<std::uintptr_t>(c));
      if (idx != kNoSlot) {
        writes_[idx].value = v;
        return;
      }
      writes_.push_back({c, v});
      write_index_.put(reinterpret_cast<std::uintptr_t>(c), writes_.size() - 1);
    }

    static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

    /// Tiny open-addressed pointer -> index map with epoch clearing.
    class PtrIndex {
     public:
      PtrIndex() : keys_(1024, 0), vals_(1024, 0), epochs_(1024, 0) {}
      void clear() {
        ++epoch_;
        count_ = 0;
        if (epoch_ == 0) {
          std::fill(epochs_.begin(), epochs_.end(), 0);
          epoch_ = 1;
        }
      }
      [[nodiscard]] std::size_t count() const { return count_; }
      [[nodiscard]] std::size_t find(std::uintptr_t key) const {
        const std::size_t mask = keys_.size() - 1;
        std::size_t i = hash(key) & mask;
        while (epochs_[i] == epoch_) {
          if (keys_[i] == key) return vals_[i];
          i = (i + 1) & mask;
        }
        return kNoSlot;
      }
      void put(std::uintptr_t key, std::size_t val) {
        if (count_ * 4 >= keys_.size() * 3) grow();
        const std::size_t mask = keys_.size() - 1;
        std::size_t i = hash(key) & mask;
        while (epochs_[i] == epoch_) {
          if (keys_[i] == key) {
            vals_[i] = val;
            return;
          }
          i = (i + 1) & mask;
        }
        keys_[i] = key;
        vals_[i] = val;
        epochs_[i] = epoch_;
        ++count_;
      }

     private:
      static std::size_t hash(std::uintptr_t key) {
        return static_cast<std::size_t>(static_cast<std::uint64_t>(key >> 3) *
                                        0x9e3779b97f4a7c15ull >> 32);
      }
      void grow() {
        std::vector<std::uintptr_t> old_keys = std::move(keys_);
        std::vector<std::size_t> old_vals = std::move(vals_);
        std::vector<std::uint32_t> old_epochs = std::move(epochs_);
        const std::uint32_t live = epoch_;
        keys_.assign(old_keys.size() * 2, 0);
        vals_.assign(old_keys.size() * 2, 0);
        epochs_.assign(old_keys.size() * 2, 0);
        epoch_ = 1;
        count_ = 0;
        for (std::size_t i = 0; i < old_keys.size(); ++i) {
          if (old_epochs[i] == live) put(old_keys[i], old_vals[i]);
        }
      }

      std::vector<std::uintptr_t> keys_;
      std::vector<std::size_t> vals_;
      std::vector<std::uint32_t> epochs_;
      std::uint32_t epoch_ = 1;
      std::size_t count_ = 0;
    };

    HtmSim& htm_;
    std::vector<std::pair<const TmCell*, TmWord>> read_log_;
    std::vector<WriteEnt> writes_;
    PtrIndex write_index_;
    detail::LineSet read_lines_;
    detail::LineSet write_lines_;
    bool poisoned_ = false;
  };

  template <class Body>
  HtmOutcome execute(Tx& tx, Body&& body) {
    tx.reset();
    try {
      std::forward<Body>(body)(tx);
    } catch (const detail::HtmAbort& a) {
      return HtmOutcome{a.status};
    }
    if (tx.poisoned_) return HtmOutcome{HtmStatus::kInjected};
    return commit(tx);
  }

  /// Non-transactional accesses. Stores serialize against the commit lock so
  /// that a software write-back cannot slip between a hardware commit's
  /// validation and its publication.
  [[nodiscard]] TmWord nontx_load(const TmCell& c) const {
    return c.word.load(std::memory_order_acquire);
  }
  void nontx_store(TmCell& c, TmWord v) {
    pub_.lock();
    c.word.store(v, std::memory_order_release);
    pub_.unlock();
  }

  /// Multi-word software publication (TL2 / slow-slow / NOrec write-back):
  /// holds the commit lock across the whole batch so a hardware commit's
  /// validation can never observe a half-published software commit, and
  /// marks the publication window on the epoch for software readers.
  template <class Entries>
  void nontx_publish(const Entries& entries) {
    pub_.publish(entries);
  }

  /// Seqlock epoch over every multi-word publication (hardware commit
  /// write-back and nontx_publish). Odd = a publication is in flight.
  /// Software read barriers bracket their stripe/data/stripe load sequence
  /// with this to rule out torn views of a commit they do not otherwise
  /// synchronize with.
  [[nodiscard]] TmWord publication_epoch() const { return pub_.epoch(); }

 private:
  HtmOutcome commit(Tx& tx) {
    pub_.lock();
    for (const auto& [cell, seen] : tx.read_log_) {
      if (cell->word.load(std::memory_order_acquire) != seen) {
        pub_.unlock();
        return HtmOutcome{HtmStatus::kConflict};
      }
    }
    if (!tx.writes_.empty()) {
      pub_.mark_in_flight();
      for (const auto& w : tx.writes_) {
        w.cell->word.store(w.value, std::memory_order_release);
      }
      pub_.mark_settled();
    }
    pub_.unlock();
    return HtmOutcome{HtmStatus::kCommitted};
  }

  HtmConfig cfg_;
  detail::PublicationSeqlock pub_;
};

template <>
struct SubstrateTraits<HtmSim> {
  static constexpr SubstrateKind kKind = SubstrateKind::kSim;
  static constexpr const char* kName = to_string(kKind);
  static constexpr bool kAtomic = true;  ///< validated commits, real conflicts
};

}  // namespace rhtm
