#pragma once

// Contention management: the per-thread policy engine that decides, per
// transaction attempt, (a) whether to speculate in hardware at all,
// (b) when to give up on hardware and escalate to the software path, and
// (c) what shape of backoff to apply between retries.
//
// Before this layer existed, every protocol burned retries through one
// fixed bounded-exponential backoff and two fixed knobs (a Mixed-N
// percentage coin and a capacity-retry count). Alistarh et al. ("Inherent
// Limitations of Hybrid Transactional Memory") argue that *when a hybrid
// gives up on hardware* dominates its progressiveness, and Brown & Ravi
// ("On the Cost of Concurrency in Hybrid TM") quantify why a wrong
// fallback decision is expensive: every wasted hardware attempt is thrown-
// away speculative work. The ContentionManager consumes the existing
// AbortCause stream plus recent commit/abort history and adapts:
//
//  * kFixed      — bit-compatible with the historical behaviour: the
//                  Mixed-N coin, the fixed capacity-retry count, the fixed
//                  attempt budget, and the bounded-exponential backoff.
//                  Decision sequences AND RNG consumption are identical to
//                  the pre-ContentionManager code, so every existing series
//                  remains the baseline (tests pin this).
//  * kAdaptive   — per-thread escalation thresholds derived from an EWMA
//                  of recent hardware-abort density: under contention the
//                  thread gives up on hardware after fewer attempts, and a
//                  long failure streak sends it straight to software with
//                  periodic hardware re-probes (progressiveness without
//                  burning doomed speculation). Backoff is shaped by cause:
//                  none after capacity (escalation is imminent),
//                  proportional to the observed conflict density after
//                  conflicts, bounded-exponential otherwise.
//  * kAggressive — hold on to hardware: no Mixed-N coin, a high attempt
//                  ceiling, near-zero backoff. The greedy end of the sweep
//                  (and a liveness bound so 100%-abort pressure cannot
//                  livelock).
//
// The policy is selected per universe (UniverseConfig::cm, bench flag
// --cm=fixed|adaptive|aggressive); the per-protocol *limits* (coin
// percentage, attempt budget, capacity retries) stay in each protocol's
// Config and are merged in at ThreadCtx construction. All state is
// per-thread and all decisions are deterministic functions of the call
// sequence and the caller-supplied RNG — no clocks, no globals.

#include <cstdint>
#include <cstring>

#include "core/rng.h"
#include "core/stats.h"
#include "core/trace.h"

namespace rhtm {

/// The contention-management policy axis (--cm= flag, UniverseConfig::cm).
enum class CmPolicy : std::uint8_t { kFixed, kAdaptive, kAggressive };

/// Canonical policy names: the --cm= flag values and the JSON reports'
/// `cm` meta field. Single source of truth for both.
[[nodiscard]] constexpr const char* to_string(CmPolicy p) {
  switch (p) {
    case CmPolicy::kFixed: return "fixed";
    case CmPolicy::kAdaptive: return "adaptive";
    case CmPolicy::kAggressive: return "aggressive";
  }
  return "?";
}

/// Parses a canonical policy name. Returns false on an unknown name.
[[nodiscard]] inline bool parse_cm_policy(const char* name, CmPolicy* out) {
  for (const CmPolicy p :
       {CmPolicy::kFixed, CmPolicy::kAdaptive, CmPolicy::kAggressive}) {
    if (std::strcmp(name, to_string(p)) == 0) {
      *out = p;
      return true;
    }
  }
  return false;
}

/// Universe-level contention-management configuration: the policy plus the
/// adaptive engine's knobs. Per-protocol limits (the Mixed-N coin, the
/// hardware attempt budget, capacity retries) live in each protocol's own
/// Config — see ContentionManager::Limits.
struct CmConfig {
  CmPolicy policy = CmPolicy::kFixed;
  // Adaptive escalation thresholds: attempts-before-software interpolated
  // between these bounds by the abort-density EWMA (quiet -> max, fully
  // contended -> min).
  unsigned adapt_min_attempts = 1;
  unsigned adapt_max_attempts = 6;
  unsigned ewma_shift = 3;     ///< EWMA decay: new = old + (obs - old) >> shift
  // Software mode: after this many *consecutive* hardware failures the
  // thread stops attempting hardware entirely...
  unsigned sw_streak = 4;
  // ...and re-probes hardware once every probe_period transactions.
  unsigned probe_period = 64;
  unsigned backoff_cap_shift = 10;      ///< exponential backoff cap: 1<<cap pauses
  unsigned aggressive_attempts = 16;    ///< aggressive liveness bound
};

namespace detail {

/// The raw bounded-exponential spin (the historical detail::backoff body).
inline void exponential_spin(unsigned step, unsigned cap_shift) {
  const unsigned shift = step < cap_shift ? step : cap_shift;
  for (unsigned i = 0; i < (1u << shift); ++i) cpu_relax();
}

}  // namespace detail

/// Per-thread contention manager. One instance per protocol ThreadCtx;
/// never shared across threads (all state is thread-local by construction,
/// which the tests pin as "per-thread independence").
class ContentionManager {
 public:
  /// The per-protocol fixed-policy limits, merged in by each ThreadCtx.
  struct Limits {
    unsigned slow_retry_percent = 0;  ///< Mixed-N coin; 0 = never by coin
    unsigned max_hw_attempts = 0;     ///< fixed attempt budget; 0 = unbounded
    unsigned capacity_retries = 2;    ///< capacity aborts before escalation
  };

  ContentionManager() : ContentionManager(CmConfig{}, Limits{}) {}
  ContentionManager(const CmConfig& cfg, const Limits& lim) : cfg_(cfg), lim_(lim) {
    if (cfg_.adapt_min_attempts == 0) cfg_.adapt_min_attempts = 1;
    if (cfg_.adapt_max_attempts < cfg_.adapt_min_attempts) {
      cfg_.adapt_max_attempts = cfg_.adapt_min_attempts;
    }
  }

  [[nodiscard]] CmPolicy policy() const { return cfg_.policy; }
  [[nodiscard]] const Limits& limits() const { return lim_; }

  /// Attaches the owning ThreadCtx's trace ring (null = no tracing). The
  /// manager then records its mode decisions — software-mode enter/exit
  /// and hardware re-probes — as cm:* events on that ring.
  void set_trace(trace::TraceRing* r) { trace_ = r; }

  /// Start of a transaction: resets the per-transaction attempt counters
  /// and decides whether to skip hardware entirely this transaction.
  /// Adaptive only: after sw_streak consecutive hardware failures the
  /// thread runs software-first, re-probing hardware once every
  /// probe_period transactions. Fixed and aggressive always return false.
  [[nodiscard]] bool start_in_software() {
    tx_attempts_ = 0;
    tx_capacity_ = 0;
    if (cfg_.policy != CmPolicy::kAdaptive) return false;
    if (streak_ < cfg_.sw_streak) return false;
    if (++since_probe_ >= cfg_.probe_period) {
      since_probe_ = 0;  // probe hardware again this once
      trace::cm_event(trace_, trace::EventKind::kSwModeProbe);
      return false;
    }
    return true;
  }

  /// Records a hardware abort and decides whether to stop speculating and
  /// escalate to the software path (or non-speculative fallback). `rng` is
  /// the caller's per-thread RNG; the fixed policy's Mixed-N coin draws
  /// from it exactly as the historical code did (bit-compat).
  [[nodiscard]] bool give_up_hardware(AbortCause cause, Xoshiro256& rng) {
    ++tx_attempts_;
    last_cause_ = cause;
    ++streak_;
    if (cfg_.policy == CmPolicy::kAdaptive && streak_ == cfg_.sw_streak) {
      trace::cm_event(trace_, trace::EventKind::kSwModeEnter);
    }
    ewma_bp_ += (10000 - ewma_bp_) >> cfg_.ewma_shift;
    // Deterministic overflow: retrying an over-budget transaction in
    // hardware is futile under every policy.
    if (cause == AbortCause::kHtmCapacity && ++tx_capacity_ >= lim_.capacity_retries) {
      return true;
    }
    switch (cfg_.policy) {
      case CmPolicy::kFixed:
        if (lim_.max_hw_attempts != 0 && tx_attempts_ >= lim_.max_hw_attempts) return true;
        return lim_.slow_retry_percent > 0 &&
               rng.percent_chance(lim_.slow_retry_percent);
      case CmPolicy::kAdaptive:
        return tx_attempts_ >= hw_threshold();
      case CmPolicy::kAggressive:
        return tx_attempts_ >= cfg_.aggressive_attempts;
    }
    return false;
  }

  /// A hardware transaction committed: the streak breaks, the abort
  /// density decays, and software mode (if any) ends.
  void on_hardware_commit() {
    if (cfg_.policy == CmPolicy::kAdaptive && streak_ >= cfg_.sw_streak) {
      trace::cm_event(trace_, trace::EventKind::kSwModeExit);
    }
    streak_ = 0;
    since_probe_ = 0;
    ewma_bp_ -= ewma_bp_ >> cfg_.ewma_shift;
  }

  /// A software-path commit. Deliberately does NOT reset the failure
  /// streak: only hardware succeeding is evidence that hardware works, so
  /// adaptive software mode persists until a probe commits in hardware.
  void on_software_commit() {}

  /// Entry to a software execution (run_slow / tl2_run): resets the
  /// software backoff step, mirroring the historical per-call counter.
  void begin_software() { sw_step_ = 0; }

  /// Backoff between hardware retries, shaped by policy and last cause.
  void backoff_hardware() {
    const unsigned step = tx_attempts_ > 0 ? tx_attempts_ - 1 : 0;
    switch (cfg_.policy) {
      case CmPolicy::kFixed:
        detail::exponential_spin(step, cfg_.backoff_cap_shift);
        return;
      case CmPolicy::kAdaptive:
        if (last_cause_ == AbortCause::kHtmCapacity) return;  // escalation imminent
        if (last_cause_ == AbortCause::kHtmConflict ||
            last_cause_ == AbortCause::kInjected) {
          proportional_spin(step);
          return;
        }
        detail::exponential_spin(step, cfg_.backoff_cap_shift);
        return;
      case CmPolicy::kAggressive:
        for (unsigned i = 0; i < 4; ++i) detail::cpu_relax();
        return;
    }
  }

  /// Backoff between software-path retries (locked stripes, failed
  /// validation). The step counter spans all software retries of the
  /// current transaction, mirroring the historical per-call counter.
  void backoff_software() {
    const unsigned cap =
        cfg_.policy == CmPolicy::kAggressive ? 6 : cfg_.backoff_cap_shift;
    detail::exponential_spin(sw_step_++, cap);
    if (sw_step_ > cap + 1) sw_step_ = cap + 1;  // saturate; spin is capped anyway
  }

  /// Backoff between retries of a hardware *commit* transaction (the RH1
  /// reduced commit / RH2 commit conflict loop). `step` is the commit
  /// loop's own retry counter.
  void backoff_commit(unsigned step) {
    if (cfg_.policy == CmPolicy::kAggressive) {
      for (unsigned i = 0; i < 4; ++i) detail::cpu_relax();
      return;
    }
    detail::exponential_spin(step, cfg_.backoff_cap_shift);
  }

  // ---- introspection (tests, metrics) -------------------------------------
  /// Recent hardware-abort density in basis points (0..10000 EWMA).
  [[nodiscard]] unsigned abort_ewma_bp() const { return ewma_bp_; }
  /// Consecutive hardware failures (across transactions).
  [[nodiscard]] unsigned failure_streak() const { return streak_; }
  /// The adaptive policy's current attempts-before-software threshold:
  /// interpolated between adapt_max (quiet) and adapt_min (contended) by
  /// the abort-density EWMA — monotonically non-increasing in density.
  [[nodiscard]] unsigned hw_threshold() const {
    const unsigned span = cfg_.adapt_max_attempts - cfg_.adapt_min_attempts;
    // Round-half interpolation: the shift-based EWMA saturates a few basis
    // points shy of 10000, and a floor here would leave the threshold one
    // above adapt_min under full contention.
    return cfg_.adapt_max_attempts -
           static_cast<unsigned>((static_cast<std::uint64_t>(span) * ewma_bp_ + 5000) / 10000);
  }

 private:
  /// Conflict backoff proportional to observed contention: a thread seeing
  /// a dense abort stream yields longer (there are many conflicters to
  /// drain), a thread seeing its first conflict in a while barely waits.
  void proportional_spin(unsigned step) const {
    const unsigned cap = 1u << cfg_.backoff_cap_shift;
    unsigned iters = (ewma_bp_ >> 5) * (step + 1);
    if (iters > cap) iters = cap;
    for (unsigned i = 0; i < iters; ++i) detail::cpu_relax();
  }

  CmConfig cfg_;
  Limits lim_;
  trace::TraceRing* trace_ = nullptr;
  // Per-transaction state (reset by start_in_software).
  unsigned tx_attempts_ = 0;
  unsigned tx_capacity_ = 0;
  unsigned sw_step_ = 0;
  AbortCause last_cause_ = AbortCause::kHtmConflict;
  // Cross-transaction history.
  unsigned streak_ = 0;
  unsigned since_probe_ = 0;
  unsigned ewma_bp_ = 0;
};

}  // namespace rhtm
