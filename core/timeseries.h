#pragma once

// Periodic metrics sampling — the `timeline` array in BENCH_*.json.
//
// A MetricsSampler runs one background thread that, every `interval`,
// snapshots the live per-worker TxStats (plus any registered queue-depth
// gauges) into a cumulative Sample. Workers register their TxStats through
// ScopedStatsSource — one central hook in run_worker_pool covers every
// driver — and the open-loop driver additionally registers a
// ScopedDepthGauge for its admission-queue occupancy.
//
// The sampler reads live counters WHILE workers increment them. That race
// is deliberate and benign: TxStats fields are 8-byte naturally-aligned
// integers read with relaxed atomic loads, so each field is individually
// torn-free; a sample may see commit counts from an instant apart across
// fields, which is exactly the precision an interval timeline needs. What
// must be exact is monotonicity across worker lifetimes: when a source
// unregisters, its final counters fold into a retired accumulator, so
// cumulative values never go backwards as worker pools come and go.
//
// timeline_points() converts the cumulative samples into per-interval
// report::Points (x = seconds since sampling started): ops_per_sec and
// abort_rate over the interval, cumulative commit/abort totals, per-path
// commit deltas, per-cause abort deltas, and the instantaneous queue depth.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/report.h"
#include "core/stats.h"

namespace rhtm::timeseries {

namespace detail_ts {

/// Field-wise relaxed-atomic copy of a TxStats a worker may be mutating.
inline TxStats racy_snapshot(const TxStats* s) {
  TxStats out;
  const auto ld = [](const std::uint64_t* p) {
    return __atomic_load_n(p, __ATOMIC_RELAXED);
  };
  out.commits = ld(&s->commits);
  out.aborts = ld(&s->aborts);
  out.reads = ld(&s->reads);
  out.writes = ld(&s->writes);
  for (std::size_t i = 0; i < static_cast<std::size_t>(ExecPath::kCount); ++i) {
    out.commits_by_path[i] = ld(&s->commits_by_path[i]);
    out.attempts_by_path[i] = ld(&s->attempts_by_path[i]);
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(AbortCause::kCount); ++i) {
    out.aborts_by_cause[i] = ld(&s->aborts_by_cause[i]);
  }
  return out;
}

}  // namespace detail_ts

/// One interval snapshot. Stats are CUMULATIVE (retired + live at sample
/// time); timeline_points() differences consecutive samples.
struct Sample {
  double t = 0;  ///< seconds since start()
  TxStats stats;
  std::uint64_t queue_depth = 0;  ///< sum over registered gauges, instantaneous
  std::size_t live_sources = 0;
};

class MetricsSampler {
 public:
  explicit MetricsSampler(double interval_seconds)
      : interval_(interval_seconds > 0.0005 ? interval_seconds : 0.0005) {}

  ~MetricsSampler() { stop(); }
  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  void start() {
    std::lock_guard<std::mutex> g(mu_);
    if (running_) return;
    running_ = true;
    t0_ = std::chrono::steady_clock::now();
    thread_ = std::thread([this] { run(); });
  }

  /// Joins the sampling thread after recording one final sample, so the
  /// timeline always covers the tail of the run.
  void stop() {
    {
      std::lock_guard<std::mutex> g(mu_);
      if (!running_) return;
      running_ = false;
    }
    cv_.notify_all();
    thread_.join();
    std::lock_guard<std::mutex> g(mu_);
    samples_.push_back(sample_locked());
  }

  void register_stats(const TxStats* s) {
    std::lock_guard<std::mutex> g(mu_);
    live_.push_back(s);
  }

  /// Folds the source's final counters into the retired accumulator —
  /// cumulative sample values stay monotone across worker-pool lifetimes.
  void unregister_stats(const TxStats* s) {
    std::lock_guard<std::mutex> g(mu_);
    for (std::size_t i = 0; i < live_.size(); ++i) {
      if (live_[i] == s) {
        live_[i] = live_.back();
        live_.pop_back();
        retired_.merge(*s);
        return;
      }
    }
  }

  void register_gauge(const std::atomic<std::uint64_t>* g) {
    std::lock_guard<std::mutex> lk(mu_);
    gauges_.push_back(g);
  }

  void unregister_gauge(const std::atomic<std::uint64_t>* g) {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t i = 0; i < gauges_.size(); ++i) {
      if (gauges_[i] == g) {
        gauges_[i] = gauges_.back();
        gauges_.pop_back();
        return;
      }
    }
  }

  [[nodiscard]] std::vector<Sample> samples() const {
    std::lock_guard<std::mutex> g(mu_);
    return samples_;
  }

  [[nodiscard]] double interval() const { return interval_; }

  /// Per-interval timeline for BenchReport::timeline. x = seconds since
  /// start; rates are over the interval ending at x.
  [[nodiscard]] std::vector<report::Point> timeline_points() const {
    const std::vector<Sample> snap = samples();
    std::vector<report::Point> out;
    out.reserve(snap.size());
    Sample prev;  // zero baseline
    for (const Sample& s : snap) {
      const double dt = s.t - prev.t;
      TxStats d;  // interval delta of the counters the timeline reports
      d.commits = s.stats.commits - prev.stats.commits;
      d.aborts = s.stats.aborts - prev.stats.aborts;
      for (std::size_t i = 0; i < static_cast<std::size_t>(ExecPath::kCount); ++i) {
        d.commits_by_path[i] = s.stats.commits_by_path[i] - prev.stats.commits_by_path[i];
      }
      for (std::size_t i = 0; i < static_cast<std::size_t>(AbortCause::kCount); ++i) {
        d.aborts_by_cause[i] = s.stats.aborts_by_cause[i] - prev.stats.aborts_by_cause[i];
      }
      report::Point p;
      p.x = s.t;
      p.set("ops_per_sec", dt > 0 ? static_cast<double>(d.commits) / dt : 0.0);
      const double att = static_cast<double>(d.commits + d.aborts);
      p.set("abort_rate", att > 0 ? static_cast<double>(d.aborts) / att : 0.0);
      p.set("commits_total", static_cast<double>(s.stats.commits));
      p.set("aborts_total", static_cast<double>(s.stats.aborts));
      p.set("queue_depth", static_cast<double>(s.queue_depth));
      p.set("live_threads", static_cast<double>(s.live_sources));
      for (std::size_t i = 0; i < static_cast<std::size_t>(ExecPath::kCount); ++i) {
        if (d.commits_by_path[i] != 0) {
          p.set(std::string("commits_") + to_string(static_cast<ExecPath>(i)),
                static_cast<double>(d.commits_by_path[i]));
        }
      }
      for (std::size_t i = 0; i < static_cast<std::size_t>(AbortCause::kCount); ++i) {
        if (d.aborts_by_cause[i] != 0) {
          p.set(std::string("aborts_") + to_string(static_cast<AbortCause>(i)),
                static_cast<double>(d.aborts_by_cause[i]));
        }
      }
      out.push_back(std::move(p));
      prev = s;
    }
    return out;
  }

 private:
  [[nodiscard]] Sample sample_locked() const {
    Sample s;
    s.t = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
    s.stats = retired_;
    for (const TxStats* src : live_) s.stats.merge(detail_ts::racy_snapshot(src));
    for (const auto* g : gauges_) s.queue_depth += g->load(std::memory_order_relaxed);
    s.live_sources = live_.size();
    return s;
  }

  void run() {
    std::unique_lock<std::mutex> lk(mu_);
    while (running_) {
      cv_.wait_for(lk, std::chrono::duration<double>(interval_),
                   [this] { return !running_; });
      if (!running_) break;
      samples_.push_back(sample_locked());
    }
  }

  const double interval_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  std::chrono::steady_clock::time_point t0_{};
  std::vector<const TxStats*> live_;
  std::vector<const std::atomic<std::uint64_t>*> gauges_;
  TxStats retired_;
  std::vector<Sample> samples_;
};

/// The process-wide sampler the drivers report into. run_all installs one
/// per scenario when --timeline is set; null means sampling is off and the
/// scoped helpers below are no-ops.
inline std::atomic<MetricsSampler*> g_sampler{nullptr};

/// RAII registration of one worker's TxStats with the active sampler.
/// Capture the sampler once: registration and unregistration must pair
/// against the same instance even if g_sampler changes mid-run.
class ScopedStatsSource {
 public:
  explicit ScopedStatsSource(const TxStats* s)
      : sampler_(g_sampler.load(std::memory_order_acquire)), stats_(s) {
    if (sampler_ != nullptr) sampler_->register_stats(stats_);
  }
  ~ScopedStatsSource() {
    if (sampler_ != nullptr) sampler_->unregister_stats(stats_);
  }
  ScopedStatsSource(const ScopedStatsSource&) = delete;
  ScopedStatsSource& operator=(const ScopedStatsSource&) = delete;

 private:
  MetricsSampler* sampler_;
  const TxStats* stats_;
};

/// RAII queue-depth gauge (open-loop admission queue). The owner stores
/// into value(); the sampler reads it each interval.
class ScopedDepthGauge {
 public:
  ScopedDepthGauge() : sampler_(g_sampler.load(std::memory_order_acquire)) {
    if (sampler_ != nullptr) sampler_->register_gauge(&value_);
  }
  ~ScopedDepthGauge() {
    if (sampler_ != nullptr) sampler_->unregister_gauge(&value_);
  }
  ScopedDepthGauge(const ScopedDepthGauge&) = delete;
  ScopedDepthGauge& operator=(const ScopedDepthGauge&) = delete;

  void set(std::uint64_t depth) { value_.store(depth, std::memory_order_relaxed); }

 private:
  MetricsSampler* sampler_;
  std::atomic<std::uint64_t> value_{0};
};

}  // namespace rhtm::timeseries
