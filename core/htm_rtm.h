#pragma once

// HtmRtm — the real-hardware substrate: the same substrate concept as
// HtmEmul/HtmSim (Tx::load/store, execute, nontx_*, publication_epoch)
// implemented over Intel RTM (_xbegin/_xend/_xabort), so the protocol
// templates run unchanged on genuine best-effort hardware transactions.
//
// Compile gate: RHTM_HAVE_RTM, derived from __RTM__ (set by -mrtm /
// -DRHTM_ENABLE_RTM=ON). Without it the class still compiles on any
// platform: execute() then reports every attempt as a capacity failure so
// protocols escalate to their software paths, and available() is false so
// the bench driver refuses --substrate=rtm with a diagnostic instead of
// ever reaching an illegal instruction.
//
// Runtime gate: available() checks CPUID.07H:EBX.RTM[bit 11] once. Some
// machines advertise RTM but abort every transaction (TSX disabled by
// microcode against TAA); hardware_viable() additionally probes that a
// trivial transaction can commit.
//
// Fidelity notes (docs/ARCHITECTURE.md has the full comparison):
//  * Loads and stores are genuinely uninstrumented apart from a register
//    counter that enforces the *configured* HtmConfig budgets, mirroring the
//    paper's emulation. Real hardware may abort on capacity well before the
//    configured ceiling (its read/write sets are cache-geometry bound) —
//    the counter only makes deterministic-overflow behaviour (and the
//    capacity ablations) portable across substrates.
//  * Aborts roll back all transactional stores — unlike HtmEmul.
//  * An abort with no hardware cause bits (page fault, interrupt, TSX
//    force-abort) is classified as kCapacity: the hardware is saying
//    "retrying is futile", and protocols treat capacity as the signal to
//    escalate, which preserves liveness on hostile machines.

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "core/htm_common.h"
#include "core/pmu.h"

#ifndef RHTM_HAVE_RTM
#if defined(__RTM__)
#define RHTM_HAVE_RTM 1
#else
#define RHTM_HAVE_RTM 0
#endif
#endif

#if RHTM_HAVE_RTM
#include <immintrin.h>
#if defined(__GNUC__)
#include <cpuid.h>
#endif
#endif

namespace rhtm {

/// True when a substrate kind can be dispatched by this binary at all
/// (emul/sim always; rtm only in an RHTM_HAVE_RTM build).
[[nodiscard]] constexpr bool substrate_compiled(SubstrateKind k) {
  return k != SubstrateKind::kRtm || RHTM_HAVE_RTM != 0;
}

class HtmRtm {
 public:
  HtmRtm() = default;
  explicit HtmRtm(const HtmConfig& cfg) : cfg_(cfg) {}

  [[nodiscard]] const HtmConfig& config() const { return cfg_; }

  /// Compiled with RTM intrinsics AND the CPU advertises RTM (checked once).
  [[nodiscard]] static bool available() {
#if RHTM_HAVE_RTM
    static const bool ok = cpu_has_rtm();
    return ok;
#else
    return false;
#endif
  }

  /// available() plus proof: a trivial transaction actually committed.
  /// False on CPUs whose microcode force-aborts every transaction.
  [[nodiscard]] static bool hardware_viable() {
#if RHTM_HAVE_RTM
    static const bool ok = probe_commits();
    return ok;
#else
    return false;
#endif
  }

  // _xabort codes (immediates). 0x7e is reserved for injection so explicit
  // protocol aborts (kExplicitCode) stay distinguishable.
  static constexpr unsigned kExplicitCode = 0x01;
  static constexpr unsigned kCapacityCode = 0x02;  ///< configured-budget ceiling
  static constexpr unsigned kInjectedCode = 0x7e;

  class Tx {
   public:
    /// Opens this thread's RTM PMU counters (protocol thread contexts are
    /// constructed on their worker thread, so pid=0 counts the right
    /// thread); unavailable perf degrades to a latched no-op (core/pmu.h).
    explicit Tx(HtmRtm& htm)
        : htm_(htm), pmu_(RHTM_HAVE_RTM != 0 && HtmRtm::available()) {}

    Tx(const Tx&) = delete;
    Tx& operator=(const Tx&) = delete;

    /// Folds this thread's hardware-measured RTM totals into the substrate.
    ~Tx() {
      if (pmu_.available()) htm_.pmu_totals_.merge(pmu_.sample());
    }

    /// One mov; the hardware tracks the line. The counter enforces only the
    /// configured ceiling (see header comment).
    TmWord load(const TmCell& c) {
#if RHTM_HAVE_RTM
      if (++reads_ > htm_.cfg_.max_read_set) _xabort(kCapacityCode);
#endif
      return c.word.load(std::memory_order_acquire);
    }

    void store(TmCell& c, TmWord v) {
#if RHTM_HAVE_RTM
      if (++writes_ > htm_.cfg_.max_write_set) _xabort(kCapacityCode);
#endif
      c.word.store(v, std::memory_order_release);
    }

    /// Only callable from inside execute()'s body, i.e. inside a live
    /// hardware transaction, where _xabort transfers control back to
    /// _xbegin. The trap is unreachable by construction.
    [[noreturn]] void abort_explicit() {
#if RHTM_HAVE_RTM
      _xabort(kExplicitCode);
#endif
      std::abort();
    }

    /// Mark the attempt injected-doomed: the body still runs (wasted work,
    /// like a real conflict) and execute() aborts it at the commit point, so
    /// unlike HtmEmul the poisoned stores really are rolled back.
    void poison() { poisoned_ = true; }

   private:
    friend class HtmRtm;
    void reset() {
      reads_ = 0;
      writes_ = 0;
      poisoned_ = false;
    }

    HtmRtm& htm_;
    pmu::RtmCounters pmu_;
    std::size_t reads_ = 0;
    std::size_t writes_ = 0;
    bool poisoned_ = false;
  };

  /// Hardware-measured RTM aggregate (PMU), summed over retired thread
  /// contexts. threads_sampled == 0 means the PMU was unavailable — the
  /// benches then mark the counters absent in the report meta instead of
  /// emitting zeros as if they were measurements.
  [[nodiscard]] pmu::RtmTotalsSnapshot pmu_totals() const { return pmu_totals_.snapshot(); }

  template <class Body>
  HtmOutcome execute(Tx& tx, Body&& body) {
#if RHTM_HAVE_RTM
    if (!available()) return HtmOutcome{HtmStatus::kCapacity};
    tx.reset();
    const unsigned status = _xbegin();
    if (status == _XBEGIN_STARTED) {
      std::forward<Body>(body)(tx);
      if (tx.poisoned_) _xabort(kInjectedCode);
      _xend();
      return HtmOutcome{HtmStatus::kCommitted};
    }
    return HtmOutcome{classify(status)};
#else
    // No hardware in this build: report a permanent capacity failure so the
    // caller escalates to its software path (never crashes, never commits).
    (void)tx;
    (void)body;
    return HtmOutcome{HtmStatus::kCapacity};
#endif
  }

  /// Real RTM is strongly isolated: a non-transactional store to a line a
  /// hardware transaction touched aborts that transaction, so plain atomic
  /// accesses suffice here — no commit lock (contrast HtmSim::nontx_store).
  [[nodiscard]] TmWord nontx_load(const TmCell& c) const {
    return c.word.load(std::memory_order_acquire);
  }
  void nontx_store(TmCell& c, TmWord v) { c.word.store(v, std::memory_order_release); }

  /// Multi-word software publication. Hardware transactions are protected by
  /// strong isolation (any overlap aborts them); concurrent *software*
  /// readers rule out torn views through the shared publication seqlock,
  /// exactly as on HtmSim.
  template <class Entries>
  void nontx_publish(const Entries& entries) {
    pub_.publish(entries);
  }

  [[nodiscard]] TmWord publication_epoch() const { return pub_.epoch(); }

 private:
#if RHTM_HAVE_RTM
  [[nodiscard]] static HtmStatus classify(unsigned status) {
    if ((status & _XABORT_EXPLICIT) != 0) {
      switch (_XABORT_CODE(status)) {
        case kInjectedCode: return HtmStatus::kInjected;
        case kCapacityCode: return HtmStatus::kCapacity;
        default: return HtmStatus::kExplicit;
      }
    }
    if ((status & _XABORT_CAPACITY) != 0) return HtmStatus::kCapacity;
    if ((status & (_XABORT_CONFLICT | _XABORT_RETRY)) != 0) return HtmStatus::kConflict;
    // No cause bits: page fault, interrupt, unfriendly instruction, or
    // microcode force-abort. Retrying in hardware is futile — report
    // capacity so protocols escalate (see header comment).
    return HtmStatus::kCapacity;
  }

  [[nodiscard]] static bool cpu_has_rtm() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    unsigned a = 0, b = 0, c = 0, d = 0;
    if (__get_cpuid_count(7, 0, &a, &b, &c, &d) == 0) return false;
    return (b & (1u << 11)) != 0;
#else
    return false;
#endif
  }

  [[nodiscard]] static bool probe_commits() {
    if (!available()) return false;
    for (int i = 0; i < 64; ++i) {
      if (_xbegin() == _XBEGIN_STARTED) {
        _xend();
        return true;
      }
    }
    return false;
  }
#endif

  HtmConfig cfg_;
  detail::PublicationSeqlock pub_;
  pmu::RtmTotals pmu_totals_;
};

template <>
struct SubstrateTraits<HtmRtm> {
  static constexpr SubstrateKind kKind = SubstrateKind::kRtm;
  static constexpr const char* kName = to_string(kKind);
  static constexpr bool kAtomic = true;  ///< hardware-atomic commits, real rollback
};

}  // namespace rhtm
