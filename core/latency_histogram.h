#pragma once

// LatencyHistogram — a fixed-size log-bucketed (HdrHistogram-style
// log-linear) histogram for per-request latency recording on the open-loop
// measurement path (workloads/open_loop.h).
//
// Design constraints, in order:
//  * record() must be cheap and allocation-free: the driver calls it once
//    per completed request on the measured path. One bit-scan, one add.
//  * Bounded relative quantile error: each power-of-two range is split into
//    kSubBuckets linear sub-buckets, so a reported quantile overstates the
//    true sample by at most 1/kSubBuckets (~3.1%) — tight enough that
//    p99 vs p999 separation is real, small enough to stay at 1089 counters
//    (~8.5 KB) per histogram.
//  * Mergeable: per-thread histograms merge by counter addition, and
//    merge-of-histograms is exactly histogram-of-union (same buckets), so
//    the driver aggregates workers without sharing on the hot path.
//
// Values are dimensionless u64s; the open-loop driver records nanoseconds.
// Values above kMaxTrackable (~4.6 minutes in ns) land in one overflow
// bucket; quantiles that fall into it report the exact maximum recorded
// value (the conservative answer for a tail metric).

#include <array>
#include <bit>
#include <cstdint>

namespace rhtm {

class LatencyHistogram {
 public:
  static constexpr unsigned kSubBucketBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;  // 32
  static constexpr unsigned kMaxExp = 38;  ///< top tracked power of two
  static constexpr std::uint64_t kMaxTrackable = (1ull << kMaxExp) - 1;

  void record(std::uint64_t value) {
    ++counts_[index_of(value)];
    ++total_;
    sum_ += value;
    if (value > max_) max_ = value;
    if (value < min_) min_ = value;
  }

  /// Counter-wise addition: after `a.merge(b)`, every quantile of `a` equals
  /// the quantile of the union of both sample streams.
  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
    if (other.min_ < min_) min_ = other.min_;
  }

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t max() const { return total_ != 0 ? max_ : 0; }
  [[nodiscard]] std::uint64_t min() const { return total_ != 0 ? min_ : 0; }
  [[nodiscard]] double mean() const {
    return total_ != 0 ? static_cast<double>(sum_) / static_cast<double>(total_) : 0.0;
  }

  /// Value at quantile `q` in [0, 1]: the upper bound of the bucket holding
  /// the ceil(q * count)-th smallest sample (so the true sample is <= the
  /// reported value, within one sub-bucket width of it). q <= 0 reports the
  /// first occupied bucket, q >= 1 the last; an empty histogram reports 0.
  [[nodiscard]] std::uint64_t quantile(double q) const {
    if (total_ == 0) return 0;
    std::uint64_t target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
    if (static_cast<double>(target) < q * static_cast<double>(total_)) ++target;
    if (target == 0) target = 1;
    if (target > total_) target = total_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= target) {
        // The overflow bucket has no finite upper bound; the exact max
        // recorded value is the honest answer there — and it also clamps
        // the top bucket's upper bound, so no quantile ever exceeds max().
        if (i == kBuckets - 1) return max_;
        const std::uint64_t upper = bucket_upper(i);
        return upper < max_ ? upper : max_;
      }
    }
    return max_;  // unreachable: seen == total_ >= target after the loop
  }

  /// Samples recorded above kMaxTrackable (the overflow bucket's count).
  [[nodiscard]] std::uint64_t overflow_count() const { return counts_[kBuckets - 1]; }

 private:
  // Buckets: [0, kSubBuckets) exact, then (kMaxExp - kSubBucketBits)
  // log-linear decades of kSubBuckets each, then one overflow bucket.
  static constexpr std::size_t kBuckets =
      kSubBuckets + (kMaxExp - kSubBucketBits) * kSubBuckets + 1;

  static std::size_t index_of(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    if (v > kMaxTrackable) return kBuckets - 1;
    const unsigned e = 63 - static_cast<unsigned>(std::countl_zero(v));
    const std::uint64_t sub = (v >> (e - kSubBucketBits)) - kSubBuckets;
    return static_cast<std::size_t>(
        kSubBuckets + static_cast<std::uint64_t>(e - kSubBucketBits) * kSubBuckets + sub);
  }

  /// Largest value mapping to bucket `i` (inverse of index_of for the
  /// non-overflow buckets).
  static std::uint64_t bucket_upper(std::size_t i) {
    if (i < kSubBuckets) return static_cast<std::uint64_t>(i);
    const std::uint64_t idx = static_cast<std::uint64_t>(i) - kSubBuckets;
    const unsigned e = kSubBucketBits + static_cast<unsigned>(idx >> kSubBucketBits);
    const std::uint64_t sub = idx & (kSubBuckets - 1);
    const std::uint64_t width = 1ull << (e - kSubBucketBits);
    return (1ull << e) + (sub + 1) * width - 1;
  }

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
};

}  // namespace rhtm
