#pragma once

// Umbrella header for the rhtm library: the TM universe, the three HTM
// substrates, the four paper protocols (HtmOnly, StandardHytm, Tl2,
// HybridTm/RH1) and the two extension hybrids (HybridNorec, PhasedTm),
// plus the substrate-bound aliases the benches use.
//
// Layering (see docs/ARCHITECTURE.md):
//   substrate (HtmEmul | HtmSim | HtmRtm)
//     -> universe (stripes + clock + substrate instance)
//       -> protocols (this header's classes)
//         -> STM sets (stm/read_set.h, stm/write_set.h)
//           -> workloads + bench harness (workloads/, bench/)

#include "core/cell.h"
#include "core/clock.h"
#include "core/contention.h"
#include "core/ext_hybrids.h"
#include "core/htm_emul.h"
#include "core/htm_only.h"
#include "core/htm_rtm.h"
#include "core/htm_sim.h"
#include "core/pmu.h"
#include "core/rh1.h"
#include "core/rng.h"
#include "core/standard_hytm.h"
#include "core/stats.h"
#include "core/stripe.h"
#include "core/tatas.h"
#include "core/timeseries.h"
#include "core/tl2.h"
#include "core/topology.h"
#include "core/trace.h"
#include "core/trace_export.h"
#include "core/universe.h"

namespace rhtm {

// Substrate-bound aliases used by the micro and ablation benches.
using EmulHtmOnly = HtmOnly<HtmEmul>;
using EmulStandardHytm = StandardHytm<HtmEmul>;
using EmulTl2 = Tl2<HtmEmul>;
using EmulHybridTm = HybridTm<HtmEmul>;

using SimHtmOnly = HtmOnly<HtmSim>;
using SimStandardHytm = StandardHytm<HtmSim>;
using SimTl2 = Tl2<HtmSim>;
using SimHybridTm = HybridTm<HtmSim>;

using RtmHtmOnly = HtmOnly<HtmRtm>;
using RtmStandardHytm = StandardHytm<HtmRtm>;
using RtmTl2 = Tl2<HtmRtm>;
using RtmHybridTm = HybridTm<HtmRtm>;

}  // namespace rhtm
