#pragma once

// StandardHytm — the conventional hybrid baseline the paper argues against:
// the hardware path instruments *every* access with a stripe-metadata read
// (and writes additionally publish the stripe version), so hardware
// transactions pay a metadata load + branch per data access and generate
// coherence traffic on the stripe words. The software fallback is TL2.
//
// `hardware_only` is the paper's best-case configuration: the software
// fallback is disabled, so the series shows pure instrumentation overhead
// with no mixed-mode penalty (deterministic capacity overflows still take a
// non-speculative lock fallback for liveness).

#include <cstdint>
#include <vector>

#include "core/htm_only.h"
#include "core/tl2.h"
#include "stm/stripe_set.h"

namespace rhtm {

template <class H>
class StandardHytm {
 public:
  struct Config {
    bool hardware_only = false;
    std::uint32_t inject_abort_bp = 0;
    unsigned max_hw_attempts = 8;   ///< before falling back to software
    unsigned capacity_retries = 2;  ///< capacity aborts before giving up on HW
  };

  class ThreadCtx {
   public:
    explicit ThreadCtx(StandardHytm& tm)
        : tx_(tm.u_.htm()),
          rng_(detail::next_ctx_seed()),
          cm_(tm.u_.config().cm,
              ContentionManager::Limits{
                  0, tm.cfg_.hardware_only ? 0 : tm.cfg_.max_hw_attempts,
                  tm.cfg_.capacity_retries}),
          trace_(tm.u_.acquire_trace_ring()) {
      cm_.set_trace(trace_);
    }
    TxStats stats;

   private:
    friend class StandardHytm;
    typename H::Tx tx_;
    Xoshiro256 rng_;
    ContentionManager cm_;
    trace::TraceRing* trace_;
    ReadSet rs_;
    WriteSet ws_;
    std::vector<std::uint32_t> lock_scratch_;
    StripeSet hw_written_;  ///< distinct stripes the hardware path stamps
  };

  explicit StandardHytm(TmUniverse<H>& u, Config cfg = {})
      : u_(u), cfg_(cfg), injector_(cfg.inject_abort_bp) {}

  template <class Body>
  void atomically(ThreadCtx& ctx, Body&& body) {
    detail::timed_section(ctx.stats, [&] { run(ctx, body); });
  }

 private:
  /// The instrumented hardware handle: metadata load + locked-check on every
  /// access; writes record their stripe (exactly deduplicated) for
  /// commit-time publication.
  struct HwHandle {
    typename H::Tx& t;
    StripeTable& st;
    StripeSet& written;

    TmWord load(const TmCell& c) {
      const std::size_t s = st.index_of(&c);
      if (StripeTable::is_locked(t.load(st.word(s)))) t.abort_explicit();
      return t.load(c);
    }
    void store(TmCell& c, TmWord v) {
      const std::size_t s = st.index_of(&c);
      if (StripeTable::is_locked(t.load(st.word(s)))) t.abort_explicit();
      t.store(c, v);
      written.insert(static_cast<std::uint32_t>(s));
    }
  };

  template <class Body>
  void run(ThreadCtx& ctx, Body& body) {
    // Durable universes go straight to the TL2 fallback (which redo-logs
    // its write-back); the instrumented hardware handle has no redo capture
    // and the baseline's contract is not worth complicating — the durable
    // hardware commit story is HybridTm's (core/rh1.h).
    trace::tx_begin(ctx.trace_);
    if (!u_.durable() && (cfg_.hardware_only || cfg_.max_hw_attempts > 0) &&
        !ctx.cm_.start_in_software()) {
      for (;;) {
        ctx.stats.count_attempt(ExecPath::kHtm);
        trace::attempt(ctx.trace_, ExecPath::kHtm);
        const bool poison = injector_.fire(ctx.rng_);
        ctx.hw_written_.clear();
        const HtmOutcome out = u_.htm().execute(ctx.tx_, [&](typename H::Tx& t) {
          fallback_.subscribe(t);
          if (poison) t.poison();
          HwHandle h{t, u_.stripes(), ctx.hw_written_};
          body(h);
          publish_stamps(t, ctx.hw_written_);
        });
        if (out.ok()) {
          if (!ctx.hw_written_.empty()) u_.clock().note_hw_commit();
          ctx.stats.count_commit(ExecPath::kHtm);
          trace::commit(ctx.trace_, ExecPath::kHtm);
          ctx.cm_.on_hardware_commit();
          return;
        }
        ctx.stats.count_abort(to_abort_cause(out.status));
        trace::abort(ctx.trace_, to_abort_cause(out.status));
        if (ctx.cm_.give_up_hardware(to_abort_cause(out.status), ctx.rng_)) break;
        ctx.cm_.backoff_hardware();
      }
    }
    if (!u_.durable() && cfg_.hardware_only) {
      // No STM fallback in hardware-only mode: capacity overflow (and, under
      // the adaptive policy, a hopeless conflict streak) takes the
      // non-speculative lock for liveness.
      run_under_lock(ctx, body);
      return;
    }
    trace::escalate(ctx.trace_, ExecPath::kStm);
    detail::tl2_run(u_, ctx.rs_, ctx.ws_, ctx.lock_scratch_, ctx.stats, ExecPath::kStm,
                    ctx.cm_, ctx.trace_, body);
  }

  /// Commit-point stamping: re-read the clock inside the transaction so the
  /// published version is provably newer than any concurrent software
  /// reader's read-version, then publish every written stripe exactly once.
  void publish_stamps(typename H::Tx& t, const StripeSet& written) {
    if (written.empty()) return;
    const TmWord wv = t.load(u_.clock().cell()) + 1;
    if (u_.clock().hw_writes_clock()) t.store(u_.clock().cell(), wv);
    for (const std::uint32_t s : written.items()) {
      t.store(u_.stripes().word(s), StripeTable::make_word(wv));
    }
  }

  template <class Body>
  void run_under_lock(ThreadCtx& ctx, Body& body) {
    trace::fallback_lock(ctx.trace_);
    fallback_.acquire();
    detail::NonSpecHandle<H> h{u_.htm()};
    body(h);
    fallback_.release();
    ctx.stats.count_commit(ExecPath::kHtm);
    trace::commit(ctx.trace_, ExecPath::kHtm);
    ctx.cm_.on_software_commit();
  }

  TmUniverse<H>& u_;
  Config cfg_;
  AbortInjector injector_;
  detail::FallbackLock fallback_;
};

}  // namespace rhtm
