#pragma once

// The two alternative hybrid designs RH1 was proposed to replace (§1),
// implemented for the ext_hybrids bench:
//
//  * HybridNorec — tiny instrumentation (one global sequence lock), but a
//    writer's commit bumps the sequence word that every concurrent hardware
//    transaction has subscribed to, so writer commits abort ALL overlapping
//    hardware transactions: coarse-grained conflicts.
//
//  * PhasedTm — runs everyone in uninstrumented hardware while it can, but
//    a single transaction needing software flips a global phase word and
//    drags every thread into the STM phase until the stragglers drain.

#include <cstdint>
#include <utility>
#include <vector>

#include "core/htm_only.h"
#include "core/tl2.h"

namespace rhtm {

// ---------------------------------------------------------------------------
// HybridNorec
// ---------------------------------------------------------------------------
template <class H>
class HybridNorec {
 public:
  struct Config {
    std::uint32_t inject_abort_bp = 0;
    unsigned max_hw_attempts = 8;
    unsigned capacity_retries = 2;
  };

  class ThreadCtx {
   public:
    explicit ThreadCtx(HybridNorec& tm)
        : tx_(tm.u_.htm()),
          rng_(detail::next_ctx_seed()),
          cm_(tm.u_.config().cm,
              ContentionManager::Limits{0, tm.cfg_.max_hw_attempts,
                                        tm.cfg_.capacity_retries}),
          trace_(tm.u_.acquire_trace_ring()) {
      cm_.set_trace(trace_);
    }
    TxStats stats;

   private:
    friend class HybridNorec;
    typename H::Tx tx_;
    Xoshiro256 rng_;
    ContentionManager cm_;
    trace::TraceRing* trace_;
    WriteSet ws_;
    std::vector<std::pair<const TmCell*, TmWord>> read_log_;  ///< value-based (NOrec)
    std::vector<pmem::CapturedWrite> hw_redo_;  ///< durable: hw-path write capture
  };

  explicit HybridNorec(TmUniverse<H>& u, Config cfg = {})
      : u_(u), cfg_(cfg), injector_(cfg.inject_abort_bp) {}

  template <class Body>
  void atomically(ThreadCtx& ctx, Body&& body) {
    detail::timed_section(ctx.stats, [&] { run(ctx, body); });
  }

 private:
  /// Hardware handle: plain accesses; only tracks whether we wrote (and, in
  /// durable mode, captures the writes for the post-_xend redo log).
  struct HwHandle {
    typename H::Tx& t;
    bool& wrote;
    std::vector<pmem::CapturedWrite>* redo;  ///< non-null in durable mode
    TmWord load(const TmCell& c) { return t.load(c); }
    void store(TmCell& c, TmWord v) {
      wrote = true;
      t.store(c, v);
      if (redo != nullptr) redo->push_back({&c, v});
    }
  };

  /// Software handle: NOrec value-based read log + buffered writes.
  struct SwHandle {
    HybridNorec& tm;
    ThreadCtx& ctx;
    TmWord& snapshot;

    TmWord load(const TmCell& c) {
      if (const WriteEntry* e = ctx.ws_.find(c)) return e->value;
      for (;;) {
        // Epoch-bracketed so a hardware commit's multi-word write-back (data
        // stores before its seq bump) cannot slip a torn value past the
        // snapshot check.
        const TmWord e1 = tm.u_.htm().publication_epoch();
        const TmWord val = tm.u_.htm().nontx_load(c);
        const TmWord e2 = tm.u_.htm().publication_epoch();
        if ((e1 & 1) != 0 || e1 != e2) {
          detail::cpu_relax();
          continue;
        }
        if (tm.seq_.word.load(std::memory_order_acquire) != snapshot) {
          snapshot = tm.revalidate(ctx);
          continue;
        }
        // Consecutive re-reads of the same cell add nothing to value-based
        // revalidation (an unchanged seq snapshot pins the value), so the
        // log — like the stripe-indexed sets — only grows on new
        // observations. Prefix-scan shapes no longer quadruple it.
        if (ctx.read_log_.empty() || ctx.read_log_.back().first != &c) {
          ctx.read_log_.push_back({&c, val});
        }
        return val;
      }
    }

    // NOrec has no stripe metadata; the write-set's stripe field is unused.
    void store(TmCell& c, TmWord v) { ctx.ws_.put(c, v, 0); }
  };

  template <class Body>
  void run(ThreadCtx& ctx, Body& body) {
    trace::tx_begin(ctx.trace_);
    const bool durable = u_.durable();
    // max_hw_attempts == 0 disables the hardware path outright (the crash
    // harness uses it to force the software commit path deterministically).
    if (cfg_.max_hw_attempts == 0 || ctx.cm_.start_in_software()) {
      run_software(ctx, body);
      return;
    }
    for (;;) {
      ctx.stats.count_attempt(ExecPath::kHtm);
      trace::attempt(ctx.trace_, ExecPath::kHtm);
      const bool poison = injector_.fire(ctx.rng_);
      bool wrote = false;
      if (durable) ctx.hw_redo_.clear();  // aborted attempts leave entries behind
      TmWord seq_held = 0;
      const HtmOutcome out = u_.htm().execute(ctx.tx_, [&](typename H::Tx& t) {
        const TmWord s0 = t.load(seq_);  // subscribe to the global sequence lock
        if ((s0 & 1) != 0) t.abort_explicit();
        if (poison) t.poison();
        HwHandle h{t, wrote, durable ? &ctx.hw_redo_ : nullptr};
        body(h);
        // Durable writers come out of _xend still HOLDING the sequence lock
        // (odd): the values are in memory, but every concurrent reader —
        // hardware txns subscribe to seq_, software revalidates against it —
        // is fenced out until the post-_xend persist releases it. The
        // non-durable commit bump releases immediately (s0 + 2).
        if (wrote) t.store(seq_, durable ? s0 + 1 : s0 + 2);
        seq_held = s0;
      });
      if (out.ok()) {
        if (durable && wrote) {
          PersistentDomain& pd = u_.pmem();
          const std::uint64_t t0 = rdtsc();
          const std::uint64_t txid = pd.durable_log(ctx.hw_redo_, pmem::kPathNorecHw);
          const std::uint64_t t1 = rdtsc();
          trace::durable_phase(ctx.trace_, trace::EventKind::kDurLog, t1 - t0);
          pd.durable_mark(txid, pmem::kPathNorecHw);
          const std::uint64_t t2 = rdtsc();
          trace::durable_phase(ctx.trace_, trace::EventKind::kDurMark, t2 - t1);
          pd.durable_apply(ctx.hw_redo_, pmem::kPathNorecHw);
          trace::durable_phase(ctx.trace_, trace::EventKind::kDurApply, rdtsc() - t2);
          seq_.word.store(seq_held + 2, std::memory_order_release);
        }
        ctx.stats.count_commit(ExecPath::kHtm);
        trace::commit(ctx.trace_, ExecPath::kHtm);
        ctx.cm_.on_hardware_commit();
        return;
      }
      ctx.stats.count_abort(to_abort_cause(out.status));
      trace::abort(ctx.trace_, to_abort_cause(out.status));
      if (ctx.cm_.give_up_hardware(to_abort_cause(out.status), ctx.rng_)) break;
      ctx.cm_.backoff_hardware();
    }
    trace::escalate(ctx.trace_, ExecPath::kStm);
    run_software(ctx, body);
  }

  template <class Body>
  void run_software(ThreadCtx& ctx, Body& body) {
    ctx.cm_.begin_software();
    for (;;) {
      ctx.stats.count_attempt(ExecPath::kStm);
      trace::attempt(ctx.trace_, ExecPath::kStm);
      ctx.ws_.clear();
      ctx.read_log_.clear();
      TmWord snapshot = wait_quiescent();
      try {
        SwHandle h{*this, ctx, snapshot};
        body(h);
        if (!ctx.ws_.empty()) {
          for (;;) {  // acquire the sequence lock at our validated snapshot
            TmWord expected = snapshot;
            if (seq_.word.compare_exchange_strong(expected, snapshot + 1,
                                                  std::memory_order_acq_rel)) {
              break;
            }
            snapshot = revalidate(ctx);
          }
          if (u_.durable()) {
            // Sequence lock held (odd) across the whole persist: log + mark
            // before values become visible, apply before release — readers
            // never consume a value that is not yet durably marked.
            PersistentDomain& pd = u_.pmem();
            const std::uint64_t t0 = rdtsc();
            const std::uint64_t txid =
                pd.durable_log(ctx.ws_.entries(), pmem::kPathNorecSw);
            const std::uint64_t t1 = rdtsc();
            trace::durable_phase(ctx.trace_, trace::EventKind::kDurLog, t1 - t0);
            pd.durable_mark(txid, pmem::kPathNorecSw);
            trace::durable_phase(ctx.trace_, trace::EventKind::kDurMark, rdtsc() - t1);
            u_.htm().nontx_publish(ctx.ws_.entries());
            const std::uint64_t t2 = rdtsc();
            pd.durable_apply(ctx.ws_.entries(), pmem::kPathNorecSw);
            trace::durable_phase(ctx.trace_, trace::EventKind::kDurApply, rdtsc() - t2);
          } else {
            u_.htm().nontx_publish(ctx.ws_.entries());
          }
          seq_.word.store(snapshot + 2, std::memory_order_release);
        }
      } catch (const detail::StmAbort& a) {
        ctx.stats.count_abort(a.cause);
        trace::abort(ctx.trace_, a.cause);
        ctx.cm_.backoff_software();
        continue;
      }
      ctx.stats.count_commit(ExecPath::kStm);
      trace::commit(ctx.trace_, ExecPath::kStm);
      ctx.cm_.on_software_commit();
      return;
    }
  }

  TmWord wait_quiescent() {
    for (;;) {
      const TmWord s = seq_.word.load(std::memory_order_acquire);
      if ((s & 1) == 0) return s;
      detail::cpu_relax();
    }
  }

  /// NOrec value-based revalidation: wait for a quiescent sequence, re-read
  /// every logged value, and adopt the new snapshot if nothing moved.
  TmWord revalidate(ThreadCtx& ctx) {
    for (;;) {
      const TmWord s = wait_quiescent();
      for (const auto& [cell, seen] : ctx.read_log_) {
        if (u_.htm().nontx_load(*cell) != seen) {
          throw detail::StmAbort{AbortCause::kStmValidation};
        }
      }
      if (seq_.word.load(std::memory_order_acquire) == s) return s;
    }
  }

  TmUniverse<H>& u_;
  Config cfg_;
  AbortInjector injector_;
  TmCell seq_;  ///< global sequence lock: even = quiet, odd = writer committing
};

// ---------------------------------------------------------------------------
// PhasedTm
// ---------------------------------------------------------------------------
template <class H>
class PhasedTm {
 public:
  struct Config {
    std::uint32_t inject_abort_bp = 0;
    unsigned max_hw_attempts = 8;
    unsigned capacity_retries = 2;
  };

  class ThreadCtx {
   public:
    explicit ThreadCtx(PhasedTm& tm)
        : tx_(tm.u_.htm()),
          rng_(detail::next_ctx_seed()),
          cm_(tm.u_.config().cm,
              ContentionManager::Limits{0, tm.cfg_.max_hw_attempts,
                                        tm.cfg_.capacity_retries}),
          trace_(tm.u_.acquire_trace_ring()) {
      cm_.set_trace(trace_);
    }
    TxStats stats;

   private:
    friend class PhasedTm;
    typename H::Tx tx_;
    Xoshiro256 rng_;
    ContentionManager cm_;
    trace::TraceRing* trace_;
    ReadSet rs_;
    WriteSet ws_;
    std::vector<std::uint32_t> lock_scratch_;
  };

  explicit PhasedTm(TmUniverse<H>& u, Config cfg = {})
      : u_(u), cfg_(cfg), injector_(cfg.inject_abort_bp) {}

  template <class Body>
  void atomically(ThreadCtx& ctx, Body&& body) {
    detail::timed_section(ctx.stats, [&] { run(ctx, body); });
  }

  /// Exposed for tests: number of transactions currently in software mode.
  [[nodiscard]] TmWord software_pending() const { return phase_.unsafe_load(); }

 private:
  template <class Body>
  void run(ThreadCtx& ctx, Body& body) {
    // Durable universes always run the software phase: the uninstrumented
    // hardware handle captures no redo, so its commits could not be logged.
    // (HybridTm's fast path shows what a durable hardware phase costs; the
    // phased design's whole point is zero instrumentation, so it opts out.)
    trace::tx_begin(ctx.trace_);
    if (!u_.durable() && cfg_.max_hw_attempts > 0 && !ctx.cm_.start_in_software()) {
      for (;;) {
        if (phase_.word.load(std::memory_order_acquire) != 0) break;  // SW phase active
        ctx.stats.count_attempt(ExecPath::kHtm);
        trace::attempt(ctx.trace_, ExecPath::kHtm);
        const bool poison = injector_.fire(ctx.rng_);
        const HtmOutcome out = u_.htm().execute(ctx.tx_, [&](typename H::Tx& t) {
          if (t.load(phase_) != 0) t.abort_explicit();  // subscribe to the phase word
          if (poison) t.poison();
          detail::HwPlainHandle<typename H::Tx> h{t};
          body(h);
        });
        if (out.ok()) {
          ctx.stats.count_commit(ExecPath::kHtm);
          trace::commit(ctx.trace_, ExecPath::kHtm);
          ctx.cm_.on_hardware_commit();
          return;
        }
        ctx.stats.count_abort(to_abort_cause(out.status));
        trace::abort(ctx.trace_, to_abort_cause(out.status));
        if (ctx.cm_.give_up_hardware(to_abort_cause(out.status), ctx.rng_)) break;
        ctx.cm_.backoff_hardware();
      }
    }
    // Software phase: registering flips (or keeps) the phase word nonzero,
    // which aborts every in-flight hardware transaction and diverts new ones
    // here — the whole system pays STM until the count drains back to zero.
    trace::escalate(ctx.trace_, ExecPath::kStm);
    phase_.word.fetch_add(1, std::memory_order_acq_rel);
    detail::tl2_run(u_, ctx.rs_, ctx.ws_, ctx.lock_scratch_, ctx.stats, ExecPath::kStm,
                    ctx.cm_, ctx.trace_, body);
    phase_.word.fetch_sub(1, std::memory_order_acq_rel);
  }

  TmUniverse<H>& u_;
  Config cfg_;
  AbortInjector injector_;
  TmCell phase_;  ///< count of transactions currently executing in software
};

}  // namespace rhtm
