#pragma once

// Per-thread transaction statistics, the execution-path / abort-cause
// taxonomies shared by every protocol, the calibrated abort injector, and
// the cycle counter used by the breakdown instrumentation.

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "core/rng.h"

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace rhtm {

/// Cycle counter for the breakdown instrumentation. On x86 this is rdtsc;
/// elsewhere it falls back to a nanosecond clock read (same units per run,
/// which is all the percentage breakdown needs).
inline std::uint64_t rdtsc() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#endif
}

/// Which path finally committed a transaction (or was attempted).
enum class ExecPath : unsigned {
  kHtm,          ///< plain hardware transaction (HtmOnly / StandardHyTM / hybrids' HW mode)
  kRh1Fast,      ///< RH1 fast path: uninstrumented body in one hardware transaction
  kRh1Slow,      ///< RH1 slow path: software body + reduced hardware commit
  kRh2Slow,      ///< RH2 slow path: visible reads + write-set-only hardware commit
  kRh2SlowSlow,  ///< all-software fallback commit (stripe locks, no hardware)
  kStm,          ///< pure STM path (TL2 / NOrec software / phased software mode)
  kCount
};

/// Snake-case path names, used as metric keys in the JSON bench reports.
[[nodiscard]] inline const char* to_string(ExecPath p) {
  switch (p) {
    case ExecPath::kHtm: return "htm";
    case ExecPath::kRh1Fast: return "rh1_fast";
    case ExecPath::kRh1Slow: return "rh1_slow";
    case ExecPath::kRh2Slow: return "rh2_slow";
    case ExecPath::kRh2SlowSlow: return "rh2_slow_slow";
    case ExecPath::kStm: return "stm";
    case ExecPath::kCount: break;
  }
  return "?";
}

/// Why an attempt aborted.
enum class AbortCause : unsigned {
  kHtmConflict,    ///< hardware conflict (sim: commit validation failed)
  kHtmCapacity,    ///< hardware read/write budget exceeded
  kHtmExplicit,    ///< explicit abort from inside the hardware transaction
  kInjected,       ///< calibrated injection (emulated contention)
  kStmValidation,  ///< software read-set / snapshot validation failed
  kStmLocked,      ///< software path hit a locked stripe / commit lock
  kCount
};

/// Snake-case cause names, used as metric keys in the JSON bench reports.
[[nodiscard]] inline const char* to_string(AbortCause c) {
  switch (c) {
    case AbortCause::kHtmConflict: return "htm_conflict";
    case AbortCause::kHtmCapacity: return "htm_capacity";
    case AbortCause::kHtmExplicit: return "htm_explicit";
    case AbortCause::kInjected: return "injected";
    case AbortCause::kStmValidation: return "stm_validation";
    case AbortCause::kStmLocked: return "stm_locked";
    case AbortCause::kCount: break;
  }
  return "?";
}

/// Per-thread counters. Owned by a protocol ThreadCtx; merged by the driver.
struct TxStats {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t reads = 0;   ///< counted by TimedHandle (breakdown runs only)
  std::uint64_t writes = 0;  ///< counted by TimedHandle (breakdown runs only)

  // Cycle accounting for run_breakdown(); only filled when `timing` is set.
  std::uint64_t read_cycles = 0;
  std::uint64_t write_cycles = 0;
  std::uint64_t tx_cycles = 0;  ///< cycles inside atomically(), all attempts
  bool timing = false;

  std::uint64_t commits_by_path[static_cast<std::size_t>(ExecPath::kCount)] = {};
  std::uint64_t attempts_by_path[static_cast<std::size_t>(ExecPath::kCount)] = {};
  std::uint64_t aborts_by_cause[static_cast<std::size_t>(AbortCause::kCount)] = {};

  void count_attempt(ExecPath p) { ++attempts_by_path[static_cast<std::size_t>(p)]; }
  void count_commit(ExecPath p) {
    ++commits;
    ++commits_by_path[static_cast<std::size_t>(p)];
  }
  void count_abort(AbortCause c) {
    ++aborts;
    ++aborts_by_cause[static_cast<std::size_t>(c)];
  }

  void merge(const TxStats& other) {
    commits += other.commits;
    aborts += other.aborts;
    reads += other.reads;
    writes += other.writes;
    read_cycles += other.read_cycles;
    write_cycles += other.write_cycles;
    tx_cycles += other.tx_cycles;
    for (std::size_t i = 0; i < static_cast<std::size_t>(ExecPath::kCount); ++i) {
      commits_by_path[i] += other.commits_by_path[i];
      attempts_by_path[i] += other.attempts_by_path[i];
    }
    for (std::size_t i = 0; i < static_cast<std::size_t>(AbortCause::kCount); ++i) {
      aborts_by_cause[i] += other.aborts_by_cause[i];
    }
  }
};

/// Calibrated abort injection (paper §3.1): hardware-mode series replay the
/// abort ratio measured from a TL2 run of the same configuration. Injecting
/// per-attempt with probability r reproduces an aborts/(aborts+commits)
/// ratio of r under retry.
class AbortInjector {
 public:
  constexpr AbortInjector() = default;
  constexpr explicit AbortInjector(std::uint32_t rate_bp) : rate_bp_(rate_bp) {}

  static AbortInjector from_ratio(double ratio) {
    if (ratio < 0.0) ratio = 0.0;
    if (ratio > 0.98) ratio = 0.98;  // leave commit probability for progress
    return AbortInjector(static_cast<std::uint32_t>(ratio * 10000.0 + 0.5));
  }

  [[nodiscard]] constexpr std::uint32_t rate_bp() const { return rate_bp_; }
  [[nodiscard]] bool fire(Xoshiro256& rng) const {
    return rate_bp_ != 0 && rng.chance_bp(rate_bp_);
  }

 private:
  std::uint32_t rate_bp_ = 0;
};

namespace detail {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

// Retry backoff moved to core/contention.h (ContentionManager::backoff_*,
// detail::exponential_spin); stats.h is pure counters + cpu_relax again.

/// Distinct seed for each protocol ThreadCtx RNG (deterministic sequence).
inline std::uint64_t next_ctx_seed() {
  static std::atomic<std::uint64_t> counter{0x2545f4914f6cdd1dull};
  return counter.fetch_add(0x9e3779b97f4a7c15ull, std::memory_order_relaxed);
}

/// Times a section into stats.tx_cycles when breakdown timing is enabled.
template <class F>
inline void timed_section(TxStats& stats, F&& f) {
  if (!stats.timing) {
    f();
    return;
  }
  const std::uint64_t t0 = rdtsc();
  f();
  stats.tx_cycles += rdtsc() - t0;
}

}  // namespace detail

}  // namespace rhtm
