#pragma once

// Simulated persistent-memory domain for the durable commit variants
// (Coccimiglio, Brown & Ravi, "Persistent HyTM via Fast Path Fine-Grained
// Locking" — PAPERS.md). Three pieces, all in ONE region that survives a
// fork(), so the crash-recovery harness can kill a child process mid-commit
// and validate recovery from the parent:
//
//  * persist fences — pwb (write-back one modified element), pfence (order
//    preceding write-backs), psync (drain to the durability point). Counted
//    no-ops: on real NVM these are CLWB/SFENCE; here each call bumps a
//    counter in the region header, so benches report fences-per-commit and
//    the zero-overhead contract of non-durable mode is testable. The pwb
//    counter models one write-back per *logged element* (a 16-byte
//    addr/value pair or record header, each within one cache line), not
//    physical 64-byte-line dedup.
//
//  * redo log — the only crash-atomic structure. Every durable commit
//    appends one data record (txid + the write-set's absolute addr/value
//    pairs), persists it, then appends a commit marker. Recovery replays
//    exactly the marked transactions, in marker order; unmarked records are
//    discarded. Appends serialize on a spinlock in the header and publish
//    the new head only after the record is fully written, so a crash at any
//    kill point leaves a scannable log (a mid-append record is beyond the
//    published head). Marker append order is consistent with transaction
//    serialization because every durable protocol path holds its conflict
//    locks (stripe locks / the NOrec sequence lock) across the marker.
//
//  * durable image — the simulated NVM data space: an open-addressed
//    cell-address -> value table the apply phase writes back into (one pwb
//    per element). In-memory TmCells are the DRAM tier; the image is what
//    survives a crash. Recovery = replay marked log records into the image.
//
// Commit protocol (log-then-fence-then-apply), one kill point per phase:
//
//     kill(path.before_log)
//     append data record, pwb per element
//     kill(path.after_log)
//     pfence; append commit marker, pwb; pfence
//     kill(path.after_mark)          <- the durability point
//     ... in-memory publication (protocol-specific) ...
//     image store + pwb per element  <- kill(path.mid_apply) halfway
//     psync
//     kill(path.after_apply)
//
// Kill points are named "<path>.<phase>"; the path names and phase names
// below are the single source the crash harness sweeps. All kill points sit
// in software sections (post-_xend on the hardware paths), where a real
// crash could actually observe the state.
//
// The region is mmap'd MAP_SHARED | MAP_ANONYMOUS: a forked child's
// persists are visible to the parent, which is how tests/crash_harness.h
// validates recovery after killing the child. Durable mode requires a
// substrate with real commit atomicity (SubstrateTraits<H>::kAtomic):
// the durable hardware commits stamp their write stripes *locked* inside
// the transaction, and a substrate that cannot roll stores back (HtmEmul)
// would abandon those locks on any abort.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <vector>

#if defined(_WIN32)
#include <new>
#else
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "core/cell.h"
#include "core/trace.h"

namespace rhtm {

struct PmemConfig {
  std::size_t log_words = std::size_t{1} << 20;    ///< 8 MiB redo-log region
  std::size_t image_slots = std::size_t{1} << 16;  ///< durable-image table (power of 2)
};

namespace pmem {

/// Exit code a killed child reports; the harness distinguishes "died at the
/// armed kill point" from "completed" (0) and "failed some other way".
inline constexpr int kKillExitCode = 42;

// Process-global fence tallies across every PersistentDomain — the
// leak detector: non-durable workloads must leave all three untouched
// (tests/durable_mode_test.cpp).
inline std::atomic<std::uint64_t> g_total_pwb{0};
inline std::atomic<std::uint64_t> g_total_pfence{0};
inline std::atomic<std::uint64_t> g_total_psync{0};

/// The durable commit paths. Each name prefixes that path's kill points and
/// tags its log records' provenance in test output. The RH2 slow-slow
/// escalation commits through tl2_software_commit, so it fires the "tl2"
/// points — there is no separate slow-slow path name.
inline constexpr const char* kPathTl2 = "tl2";            ///< TL2 / slow-slow software commit
inline constexpr const char* kPathRh1Fast = "rh1_fast";   ///< RH1 fast path, post-_xend
inline constexpr const char* kPathRh1 = "rh1";            ///< RH1 reduced hardware commit
inline constexpr const char* kPathRh2 = "rh2";            ///< RH2 write-set hardware commit
inline constexpr const char* kPathNorecHw = "norec_hw";   ///< HybridNorec hardware commit
inline constexpr const char* kPathNorecSw = "norec_sw";   ///< HybridNorec value-log replay

inline constexpr const char* kPaths[] = {kPathTl2,  kPathRh1Fast,  kPathRh1,
                                         kPathRh2,  kPathNorecHw,  kPathNorecSw};

/// Kill-point phases, in commit order. Index >= kFirstDurablePhase means the
/// commit marker was persisted before the crash: recovery MUST replay the
/// transaction. Earlier phases mean it must be discarded.
inline constexpr const char* kPhases[] = {"before_log", "after_log", "after_mark",
                                          "mid_apply", "after_apply"};
inline constexpr std::size_t kFirstDurablePhase = 2;  ///< index of "after_mark"

// ------------------------------------------------------------ kill switch --
// One armed kill point per process ("path.phase" + hit count). kill_point()
// is two loads on the disarmed path; when the armed name matches, the n-th
// hit terminates the process immediately (no atexit, no flushing) — the
// simulated power failure.
inline std::atomic<const char*> g_kill_name{nullptr};
inline std::atomic<int> g_kill_countdown{0};

inline void arm_kill(const char* name, int nth_hit = 1) {
  g_kill_countdown.store(nth_hit, std::memory_order_relaxed);
  g_kill_name.store(name, std::memory_order_release);
}
inline void disarm_kill() { g_kill_name.store(nullptr, std::memory_order_release); }

inline void kill_point(const char* path, const char* phase) {
  const char* armed = g_kill_name.load(std::memory_order_acquire);
  if (armed == nullptr) return;
  const std::size_t plen = std::strlen(path);
  if (std::strncmp(armed, path, plen) != 0 || armed[plen] != '.' ||
      std::strcmp(armed + plen + 1, phase) != 0) {
    return;
  }
  if (g_kill_countdown.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Flight-recorder dump before the simulated power failure: _exit skips
    // every destructor, so this hook is the trace's only way out.
    trace::anomaly(armed);
#if defined(_WIN32)
    std::_Exit(kKillExitCode);
#else
    _exit(kKillExitCode);
#endif
  }
}

/// A write captured inside a hardware fast path for post-commit persistence
/// (the fast path has no WriteSet; this is its redo capture).
struct CapturedWrite {
  TmCell* cell;
  TmWord value;
};

}  // namespace pmem

/// Snapshot of a domain's fence counters (see PersistentDomain).
struct FenceCounts {
  std::uint64_t pwb = 0;
  std::uint64_t pfence = 0;
  std::uint64_t psync = 0;
  [[nodiscard]] std::uint64_t total() const { return pwb + pfence + psync; }
};

class PersistentDomain {
  // Log record words: header = (tag << 56) | entry-count, then txid, then
  // entry-count * (addr, value) pairs. Marker = header + txid only.
  static constexpr std::uint64_t kDataTag = 0xD1;
  static constexpr std::uint64_t kMarkTag = 0xC2;
  static constexpr std::uint64_t kTagShift = 56;
  static constexpr std::uint64_t kCountMask = (std::uint64_t{1} << kTagShift) - 1;

  struct Header {
    std::atomic<std::uint64_t> pwb{0};
    std::atomic<std::uint64_t> pfence{0};
    std::atomic<std::uint64_t> psync{0};
    std::atomic<std::uint64_t> log_head{0};  ///< published words; scan stops here
    std::atomic<std::uint64_t> next_txid{1};
    std::atomic<std::uint32_t> log_lock{0};  ///< append spinlock (never taken by recovery)
    std::atomic<std::uint32_t> log_overflow{0};
  };

  struct ImageSlot {
    std::atomic<std::uint64_t> addr{0};  ///< 0 = empty
    std::atomic<TmWord> value{0};
  };

 public:
  explicit PersistentDomain(const PmemConfig& cfg = {})
      : cfg_(cfg),
        bytes_(sizeof(Header) + cfg.image_slots * sizeof(ImageSlot) +
               cfg.log_words * sizeof(std::uint64_t)) {
#if defined(_WIN32)
    base_ = ::operator new(bytes_);
    std::memset(base_, 0, bytes_);
#else
    base_ = mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (base_ == MAP_FAILED) {
      std::fprintf(stderr, "pmem: mmap of %zu bytes failed\n", bytes_);
      std::abort();
    }
#endif
    new (base_) Header();
    image_ = reinterpret_cast<ImageSlot*>(static_cast<char*>(base_) + sizeof(Header));
    for (std::size_t i = 0; i < cfg_.image_slots; ++i) new (image_ + i) ImageSlot();
    log_ = reinterpret_cast<std::uint64_t*>(image_ + cfg_.image_slots);
  }

  PersistentDomain(const PersistentDomain&) = delete;
  PersistentDomain& operator=(const PersistentDomain&) = delete;

  ~PersistentDomain() {
#if defined(_WIN32)
    ::operator delete(base_);
#else
    munmap(base_, bytes_);
#endif
  }

  // ------------------------------------------------------- persist fences --
  void pwb(const void* /*addr*/) {
    header().pwb.fetch_add(1, std::memory_order_relaxed);
    pmem::g_total_pwb.fetch_add(1, std::memory_order_relaxed);
  }
  void pfence() {
    header().pfence.fetch_add(1, std::memory_order_relaxed);
    pmem::g_total_pfence.fetch_add(1, std::memory_order_relaxed);
  }
  void psync() {
    header().psync.fetch_add(1, std::memory_order_relaxed);
    pmem::g_total_psync.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] FenceCounts fence_counts() const {
    const Header& h = header();
    return {h.pwb.load(std::memory_order_relaxed), h.pfence.load(std::memory_order_relaxed),
            h.psync.load(std::memory_order_relaxed)};
  }

  // -------------------------------------------- the durable commit phases --
  /// Phase 1: append the data record (one pwb per element). `entries`
  /// elements expose `.cell` and `.value`. Returns the transaction id the
  /// marker and the recovery records carry.
  template <class Entries>
  std::uint64_t durable_log(const Entries& entries, const char* path) {
    pmem::kill_point(path, "before_log");
    std::size_t n = 0;
    for (const auto& e : entries) {
      (void)e;
      ++n;
    }
    const std::uint64_t txid =
        header().next_txid.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t* rec = reserve_and_lock(2 + 2 * n);
    if (rec != nullptr) {
      rec[0] = (kDataTag << kTagShift) | static_cast<std::uint64_t>(n);
      rec[1] = txid;
      std::size_t i = 2;
      for (const auto& e : entries) {
        rec[i] = reinterpret_cast<std::uintptr_t>(e.cell);
        rec[i + 1] = e.value;
        i += 2;
      }
      publish_and_unlock(rec, 2 + 2 * n);
      pwb(rec);  // record header element
      for (const auto& e : entries) pwb(e.cell);  // one write-back per logged pair
    }
    pmem::kill_point(path, "after_log");
    return txid;
  }

  /// Phase 2: persist the commit marker — the durability point. Everything
  /// logged before is fenced ahead of the marker, the marker ahead of the
  /// apply.
  void durable_mark(std::uint64_t txid, const char* path) {
    pfence();
    std::uint64_t* rec = reserve_and_lock(2);
    if (rec != nullptr) {
      rec[0] = kMarkTag << kTagShift;
      rec[1] = txid;
      publish_and_unlock(rec, 2);
      pwb(rec);
    }
    pfence();
    pmem::kill_point(path, "after_mark");
  }

  /// Phase 3: write the new values back into the durable image (one pwb per
  /// element) and drain. A crash mid-apply is repaired by recovery replaying
  /// the marked record.
  template <class Entries>
  void durable_apply(const Entries& entries, const char* path) {
    std::size_t n = 0;
    for (const auto& e : entries) {
      (void)e;
      ++n;
    }
    std::size_t applied = 0;
    for (const auto& e : entries) {
      if (applied == n / 2) pmem::kill_point(path, "mid_apply");
      image_store(reinterpret_cast<std::uintptr_t>(e.cell), e.value);
      pwb(e.cell);
      ++applied;
    }
    psync();
    pmem::kill_point(path, "after_apply");
  }

  // --------------------------------------------------------------- image --
  [[nodiscard]] bool image_lookup(const void* addr, TmWord* out) const {
    const std::uint64_t key = reinterpret_cast<std::uintptr_t>(addr);
    const std::size_t mask = cfg_.image_slots - 1;
    std::size_t i = static_cast<std::size_t>(key * 0x9e3779b97f4a7c15ull >> 32) & mask;
    for (std::size_t probes = 0; probes < cfg_.image_slots; ++probes) {
      const std::uint64_t a = image_[i].addr.load(std::memory_order_acquire);
      if (a == 0) return false;
      if (a == key) {
        *out = image_[i].value.load(std::memory_order_acquire);
        return true;
      }
      i = (i + 1) & mask;
    }
    return false;
  }

  /// Visits every (addr, value) pair in the durable image.
  template <class Visitor>
  void for_each_image(Visitor&& visit) const {
    for (std::size_t i = 0; i < cfg_.image_slots; ++i) {
      const std::uint64_t a = image_[i].addr.load(std::memory_order_acquire);
      if (a != 0) visit(a, image_[i].value.load(std::memory_order_acquire));
    }
  }

  // ------------------------------------------------------------ recovery --
  struct RecoveredEntry {
    std::uint64_t addr;
    TmWord value;
  };
  /// One durably committed transaction, `entries` in log order. The vector
  /// recover_log() returns is sorted by marker position — the serialization
  /// order recovery must replay in.
  struct RecoveredTxn {
    std::uint64_t txid;
    std::uint64_t marker_pos;
    std::vector<RecoveredEntry> entries;
  };
  struct RecoveryStats {
    std::size_t committed = 0;  ///< marked transactions (replayed)
    std::size_t discarded = 0;  ///< logged but unmarked (dropped)
    std::size_t entries_applied = 0;
  };

  /// Scans the published log: committed transactions (data record + marker)
  /// sorted by marker order, plus the discard count. Read-only; safe after a
  /// crash (never touches the append lock).
  [[nodiscard]] std::vector<RecoveredTxn> recover_log(std::size_t* discarded = nullptr) const {
    struct Pending {
      std::uint64_t txid;
      std::uint64_t marker_pos = 0;
      bool marked = false;
      std::vector<RecoveredEntry> entries;
    };
    std::vector<Pending> seen;
    const std::uint64_t head = header().log_head.load(std::memory_order_acquire);
    std::uint64_t pos = 0;
    while (pos + 2 <= head) {
      const std::uint64_t word0 = log_[pos];
      const std::uint64_t tag = word0 >> kTagShift;
      const std::uint64_t n = word0 & kCountMask;
      if (tag == kDataTag) {
        if (pos + 2 + 2 * n > head) break;  // truncated tail (crash mid-publish)
        Pending p;
        p.txid = log_[pos + 1];
        p.entries.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
          p.entries.push_back({log_[pos + 2 + 2 * i], log_[pos + 3 + 2 * i]});
        }
        seen.push_back(std::move(p));
        pos += 2 + 2 * n;
      } else if (tag == kMarkTag) {
        const std::uint64_t txid = log_[pos + 1];
        for (Pending& p : seen) {
          if (p.txid == txid) {
            p.marked = true;
            p.marker_pos = pos;
            break;
          }
        }
        pos += 2;
      } else {
        break;  // unparseable word: nothing after it is reachable
      }
    }
    std::vector<RecoveredTxn> committed;
    std::size_t dropped = 0;
    for (Pending& p : seen) {
      if (p.marked) {
        committed.push_back({p.txid, p.marker_pos, std::move(p.entries)});
      } else {
        ++dropped;
      }
    }
    std::sort(committed.begin(), committed.end(),
              [](const RecoveredTxn& a, const RecoveredTxn& b) {
                return a.marker_pos < b.marker_pos;
              });
    if (discarded != nullptr) *discarded = dropped;
    return committed;
  }

  /// Full recovery: replay every marked transaction into the durable image
  /// in marker order (idempotent redo — repairs a crash mid-apply). Fence
  /// counters are NOT bumped: recovery is not a commit.
  RecoveryStats recover() {
    std::size_t discarded = 0;
    const std::vector<RecoveredTxn> committed = recover_log(&discarded);
    RecoveryStats stats;
    stats.committed = committed.size();
    stats.discarded = discarded;
    for (const RecoveredTxn& t : committed) {
      for (const RecoveredEntry& e : t.entries) {
        image_store(e.addr, e.value);
        ++stats.entries_applied;
      }
    }
    return stats;
  }

  [[nodiscard]] bool log_overflowed() const {
    return header().log_overflow.load(std::memory_order_relaxed) != 0;
  }

 private:
  [[nodiscard]] Header& header() { return *static_cast<Header*>(base_); }
  [[nodiscard]] const Header& header() const { return *static_cast<const Header*>(base_); }

  /// Takes the append lock and returns the record's slot, or nullptr when
  /// the log is full (overflow is sticky and visible; the simulation does
  /// not checkpoint). The head is only published in publish_and_unlock(),
  /// after the record is fully written — a process death mid-append (some
  /// OTHER thread hit its kill point) leaves the partial record beyond the
  /// published head, invisible to recovery.
  [[nodiscard]] std::uint64_t* reserve_and_lock(std::size_t words) {
    Header& h = header();
    while (h.log_lock.exchange(1, std::memory_order_acquire) != 0) {
    }
    const std::uint64_t head = h.log_head.load(std::memory_order_relaxed);
    if (head + words > cfg_.log_words) {
      const std::uint64_t was = h.log_overflow.exchange(1, std::memory_order_relaxed);
      h.log_lock.store(0, std::memory_order_release);
      if (was == 0) trace::anomaly("redo_log_overflow");  // first transition only
      return nullptr;
    }
    return log_ + head;
  }

  void publish_and_unlock(std::uint64_t* rec, std::size_t words) {
    Header& h = header();
    h.log_head.store(static_cast<std::uint64_t>(rec - log_) + words,
                     std::memory_order_release);
    h.log_lock.store(0, std::memory_order_release);
  }

  void image_store(std::uint64_t key, TmWord value) {
    const std::size_t mask = cfg_.image_slots - 1;
    std::size_t i = static_cast<std::size_t>(key * 0x9e3779b97f4a7c15ull >> 32) & mask;
    for (std::size_t probes = 0; probes < cfg_.image_slots; ++probes) {
      std::uint64_t a = image_[i].addr.load(std::memory_order_acquire);
      if (a == key) {
        image_[i].value.store(value, std::memory_order_release);
        return;
      }
      if (a == 0 &&
          image_[i].addr.compare_exchange_strong(a, key, std::memory_order_acq_rel)) {
        image_[i].value.store(value, std::memory_order_release);
        return;
      }
      if (a == key) {  // lost the CAS to ourselves-by-key: another thread claimed it
        image_[i].value.store(value, std::memory_order_release);
        return;
      }
      i = (i + 1) & mask;
    }
    std::fprintf(stderr, "pmem: durable image full (%zu slots)\n", cfg_.image_slots);
    std::abort();
  }

  PmemConfig cfg_;
  std::size_t bytes_;
  void* base_;
  ImageSlot* image_;
  std::uint64_t* log_;
};

}  // namespace rhtm
