#pragma once

// HtmEmul — the emulated best-effort HTM substrate (the paper's §3
// methodology, written before commodity RTM existed): transactional loads
// and stores compile to plain memory accesses plus a register-counter
// capacity check. There is NO conflict detection and NO rollback; the
// figure benches model contention by injecting aborts at the ratio measured
// from a TL2 run of the same configuration. See docs/ARCHITECTURE.md for
// exactly where this deviates from real RTM.

#include <utility>

#include "core/htm_common.h"

namespace rhtm {

class HtmEmul {
 public:
  HtmEmul() = default;
  explicit HtmEmul(const HtmConfig& cfg) : cfg_(cfg) {}

  [[nodiscard]] const HtmConfig& config() const { return cfg_; }

  class Tx {
   public:
    explicit Tx(HtmEmul& htm) : htm_(htm) {}

    /// Plain-access transactional load (one mov + a counter bump).
    TmWord load(const TmCell& c) {
      if (++reads_ > htm_.cfg_.max_read_set) throw detail::HtmAbort{HtmStatus::kCapacity};
      return c.word.load(std::memory_order_acquire);
    }

    /// Plain-access transactional store: applied immediately, NOT rolled
    /// back on abort (the emulation's documented infidelity).
    void store(TmCell& c, TmWord v) {
      if (++writes_ > htm_.cfg_.max_write_set) throw detail::HtmAbort{HtmStatus::kCapacity};
      c.word.store(v, std::memory_order_release);
    }

    [[noreturn]] void abort_explicit() { throw detail::HtmAbort{HtmStatus::kExplicit}; }

    /// Mark this attempt as injected-doomed: the body still runs (wasted
    /// work, like a real conflict abort) but commit reports kInjected.
    void poison() { poisoned_ = true; }

   private:
    friend class HtmEmul;
    void reset() {
      reads_ = 0;
      writes_ = 0;
      poisoned_ = false;
    }

    HtmEmul& htm_;
    std::size_t reads_ = 0;
    std::size_t writes_ = 0;
    bool poisoned_ = false;
  };

  template <class Body>
  HtmOutcome execute(Tx& tx, Body&& body) {
    tx.reset();
    try {
      std::forward<Body>(body)(tx);
    } catch (const detail::HtmAbort& a) {
      return HtmOutcome{a.status};
    }
    if (tx.poisoned_) return HtmOutcome{HtmStatus::kInjected};
    return HtmOutcome{HtmStatus::kCommitted};
  }

  [[nodiscard]] TmWord nontx_load(const TmCell& c) const {
    return c.word.load(std::memory_order_acquire);
  }
  void nontx_store(TmCell& c, TmWord v) { c.word.store(v, std::memory_order_release); }

  template <class Entries>
  void nontx_publish(const Entries& entries) {
    for (const auto& e : entries) {
      e.cell->word.store(e.value, std::memory_order_release);
    }
  }

  /// The emulated substrate has no publication atomicity to protect (its
  /// hardware commits are not atomic either); readers never need to retry.
  [[nodiscard]] static constexpr TmWord publication_epoch() { return 0; }

 private:
  HtmConfig cfg_;
};

template <>
struct SubstrateTraits<HtmEmul> {
  static constexpr SubstrateKind kKind = SubstrateKind::kEmul;
  static constexpr const char* kName = to_string(kKind);
  /// No conflict detection, no rollback: concurrent executions are a
  /// modelling device (aborts are injected), not serializable histories.
  static constexpr bool kAtomic = false;
};

}  // namespace rhtm
